"""Batch throughput: ``query_many`` vs repeated ``query`` on the PPI dataset.

The columnar PMI + reusable planner refactor is about workload economics:
the structural filter, pruner and verifier are built once per database, the
feature-vs-relaxed-query containment relations are computed once per query
instead of once per candidate, and pruning decisions for a candidate set are
one vectorized array pass.  This micro-benchmark measures the end-to-end
effect as queries/second over the synthetic PPI workload, for the one-shot
API (``query`` repeated, planner still shared) versus the batch API
(``query_many``), and checks the two return identical answers.
"""

from __future__ import annotations

from repro.core import SearchConfig, VerificationConfig, aggregate_statistics
from repro.datasets import generate_query_workload
from repro.utils.timer import Timer

from benchmarks.conftest import BENCH_SEED, print_table

PROBABILITY_THRESHOLD = 0.4
DISTANCE_THRESHOLD = 1
QUERY_SIZE = 4
NUM_QUERIES = 8

BATCH_SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=200)
)


def run_throughput_comparison(engine, queries) -> dict:
    sequential_timer = Timer()
    with sequential_timer:
        sequential_results = [
            engine.query(
                query,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                config=BATCH_SEARCH_CONFIG,
                rng=BENCH_SEED,
            )
            for query in queries
        ]
    batch_timer = Timer()
    with batch_timer:
        batch_results = engine.query_many(
            queries,
            PROBABILITY_THRESHOLD,
            DISTANCE_THRESHOLD,
            config=BATCH_SEARCH_CONFIG,
            rng=BENCH_SEED,
        )
    return {
        "num_queries": len(queries),
        "sequential_seconds": sequential_timer.elapsed,
        "batch_seconds": batch_timer.elapsed,
        "sequential_qps": len(queries) / max(sequential_timer.elapsed, 1e-9),
        "batch_qps": len(queries) / max(batch_timer.elapsed, 1e-9),
        "sequential_results": sequential_results,
        "batch_results": batch_results,
    }


def test_batch_throughput(benchmark, bench_engine, bench_database):
    workload = generate_query_workload(
        bench_database.graphs,
        query_size=QUERY_SIZE,
        num_queries=NUM_QUERIES,
        organisms=bench_database.organisms,
        rng=BENCH_SEED,
    )
    queries = [record.query for record in workload]
    report = benchmark.pedantic(
        run_throughput_comparison, args=(bench_engine, queries), rounds=1, iterations=1
    )
    totals = aggregate_statistics(report["batch_results"])
    print_table(
        "Batch throughput: query vs query_many (queries/second)",
        ["API", "queries", "seconds", "queries/s"],
        [
            [
                "query (loop)",
                report["num_queries"],
                f"{report['sequential_seconds']:.3f}",
                f"{report['sequential_qps']:.2f}",
            ],
            [
                "query_many",
                report["num_queries"],
                f"{report['batch_seconds']:.3f}",
                f"{report['batch_qps']:.2f}",
            ],
        ],
    )
    print(
        f"batch totals: verified={totals['verified']} "
        f"pruned={totals['pruned_by_upper_bound']} "
        f"accepted={totals['accepted_by_lower_bound']} "
        f"mean s/query={totals['mean_seconds_per_query']}"
    )
    # the two APIs must agree exactly — answers, order and decision stage
    for sequential, batch in zip(report["sequential_results"], report["batch_results"]):
        assert [
            (a.graph_id, a.probability, a.decided_by) for a in sequential.answers
        ] == [(a.graph_id, a.probability, a.decided_by) for a in batch.answers]
    assert totals["num_queries"] == report["num_queries"]
