"""Durability overhead and recovery cost of the log-structured catalog.

Three questions, one benchmark:

1. **What does the WAL cost?**  The same mutation stream runs against an
   in-memory catalog and a durable one; every durable mutation pays one
   checksummed, fsync'd log record before it applies.
2. **What does recovery cost as the log grows?**  At checkpoints along the
   stream the directory is reopened cold — snapshot load plus WAL replay —
   so the trajectory records recovery seconds as a function of log length.
3. **Is recovery correct?**  At the end, threshold answers from the
   recovered catalog are asserted byte-identical to a from-scratch build
   over the recovered database (the recovery invariant).

Run modes::

    python benchmarks/bench_catalog_durability.py            # full profile
    python benchmarks/bench_catalog_durability.py --smoke    # CI-friendly

Each run appends one trajectory point to ``BENCH_durability.json`` (``--out``
to redirect), so the durability-overhead history accumulates alongside the
code.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import GraphCatalog, QueryPlanner, SearchConfig, VerificationConfig
from repro.datasets import PPIDatasetConfig, generate_ppi_database, generate_query_workload
from repro.pmi import BoundConfig, FeatureSelectionConfig, ProbabilisticMatrixIndex
from repro.structural.feature_index import StructuralFeatureIndex
from repro.utils.atomic_io import atomic_write_text
from repro.utils.timer import Timer

try:
    from benchmarks.conftest import BENCH_SEED, print_table
except ModuleNotFoundError:  # direct script run: repo root not on sys.path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import BENCH_SEED, print_table

PROBABILITY_THRESHOLD = 0.3
DISTANCE_THRESHOLD = 1

FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.15, gamma=0.1, max_vertices=3, max_features=12
)
BOUND_CONFIG = BoundConfig(num_samples=120)
SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=200)
)

FULL = {"base_graphs": 18, "mutations": 24, "checkpoints": 6}
SMOKE = {"base_graphs": 10, "mutations": 10, "checkpoints": 3}


def _dataset(num_graphs: int, seed: int):
    return generate_ppi_database(
        PPIDatasetConfig(
            num_graphs=num_graphs,
            num_families=3,
            vertices_per_graph=10,
            edges_per_graph=13,
            motif_vertices=3,
            motif_edges=3,
            mean_edge_probability=0.55,
            probability_spread=0.2,
        ),
        rng=seed,
    )


def _mutation_stream(num_base: int, num_mutations: int, arrivals):
    """A deterministic mixed add/remove/update stream (adds dominate, so
    the pool of live ids never drains)."""
    rng = np.random.default_rng(BENCH_SEED)
    live = list(range(num_base))
    next_id = num_base
    stream = []
    for index in range(num_mutations):
        kind = ("add", "add", "remove", "update")[index % 4]
        if kind == "add":
            stream.append(("add", arrivals[index % len(arrivals)]))
            live.append(next_id)
            next_id += 1
        elif kind == "remove":
            victim = live.pop(int(rng.integers(len(live))))
            stream.append(("remove", victim))
        else:
            target = live[int(rng.integers(len(live)))]
            stream.append(("update", target, arrivals[index % len(arrivals)]))
    return stream


def _apply(catalog: GraphCatalog, op) -> None:
    if op[0] == "add":
        catalog.add_graph(op[1])
    elif op[0] == "remove":
        catalog.remove_graph(op[1])
    else:
        catalog.update_graph(op[1], op[2])


def _rebuild_planner(catalog: GraphCatalog) -> QueryPlanner:
    """The from-scratch build recovery must agree with."""
    items = catalog.live_items()
    graphs = [graph for _, graph in items]
    ids = [external_id for external_id, _ in items]
    pmi = ProbabilisticMatrixIndex(
        feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
    ).build(graphs, features=catalog.features, rng=catalog.build_root, graph_ids=ids)
    structural = StructuralFeatureIndex(
        embedding_limit=FEATURE_CONFIG.embedding_limit
    ).build([graph.skeleton for graph in graphs], catalog.features)
    return QueryPlanner(
        graphs, pmi, structural, graph_ids=np.asarray(ids, dtype=np.int64)
    )


def run_durability_benchmark(profile: dict) -> dict:
    base = _dataset(profile["base_graphs"], BENCH_SEED)
    arrivals = _dataset(profile["mutations"], BENCH_SEED + 1).graphs
    query = generate_query_workload(
        base.graphs, query_size=4, num_queries=1, rng=BENCH_SEED
    ).queries()[0]
    stream = _mutation_stream(len(base.graphs), profile["mutations"], arrivals)
    directory = Path(tempfile.mkdtemp(prefix="bench_durability_")) / "catalog"

    build_kwargs = dict(
        feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=BENCH_SEED
    )
    memory_catalog = GraphCatalog.build(base.graphs, **build_kwargs)
    persist_timer = Timer()
    with persist_timer:
        durable_catalog = GraphCatalog.build(
            base.graphs, directory=directory, **build_kwargs
        )

    # 1. the same stream against both catalogs: the delta is the WAL cost
    memory_timer = Timer()
    with memory_timer:
        for op in stream:
            _apply(memory_catalog, op)
    memory_catalog.close()

    # 2. interleave checkpoints: cold-reopen the directory as the log grows
    every = max(1, len(stream) // profile["checkpoints"])
    recovery_rows = []
    durable_seconds = 0.0
    for index, op in enumerate(stream):
        timer = Timer()
        with timer:
            _apply(durable_catalog, op)
        durable_seconds += timer.elapsed
        if (index + 1) % every == 0 or index == len(stream) - 1:
            open_timer = Timer()
            with open_timer:
                reopened = GraphCatalog.open(directory)
            recovery_rows.append(
                [reopened.wal_records, reopened.num_live, f"{open_timer.elapsed:.3f}"]
            )
            reopened.close()

    # 3. the recovery invariant: recovered answers == from-scratch rebuild
    recovered = GraphCatalog.open(directory)
    recovered_result = recovered.query(
        query,
        PROBABILITY_THRESHOLD,
        DISTANCE_THRESHOLD,
        config=SEARCH_CONFIG,
        rng=BENCH_SEED,
    )
    rebuilt_result = _rebuild_planner(recovered).execute(
        query,
        PROBABILITY_THRESHOLD,
        DISTANCE_THRESHOLD,
        config=SEARCH_CONFIG,
        rng=BENCH_SEED,
    )
    parity = [(a.graph_id, a.probability) for a in recovered_result.answers] == [
        (a.graph_id, a.probability) for a in rebuilt_result.answers
    ]
    recovered.close()
    durable_catalog.close()

    print_table(
        "recovery cost vs log length (cold open = snapshot + WAL replay)",
        ["wal_records", "live", "open_seconds"],
        recovery_rows,
    )
    wal_overhead = durable_seconds / memory_timer.elapsed if memory_timer.elapsed else 1.0
    report = {
        "num_mutations": len(stream),
        "persist_seconds": round(persist_timer.elapsed, 4),
        "memory_mutations_per_second": round(len(stream) / memory_timer.elapsed, 1),
        "durable_mutations_per_second": round(len(stream) / durable_seconds, 1),
        "wal_overhead_factor": round(wal_overhead, 2),
        "final_recovery_seconds": float(recovery_rows[-1][2]),
        "recovery_trajectory": [
            {"wal_records": row[0], "open_seconds": float(row[2])}
            for row in recovery_rows
        ],
        "recovery_parity": parity,
    }
    print("\nsummary:", json.dumps(report, indent=2))
    assert parity, "recovered answers diverged from the from-scratch rebuild"
    return report


def append_trajectory_point(path: Path, point: dict) -> None:
    """Append one run to the JSON trajectory (a list of run records)."""
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(point)
    atomic_write_text(path, json.dumps(history, indent=2) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small dataset, fewer checkpoints (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_durability.json"),
        help="trajectory file to append this run's point to",
    )
    args = parser.parse_args()
    report = run_durability_benchmark(SMOKE if args.smoke else FULL)
    point = {
        "bench": "catalog_durability",
        "mode": "smoke" if args.smoke else "full",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        **report,
    }
    append_trajectory_point(args.out, point)
    print(f"trajectory point appended to {args.out}")


def test_catalog_durability_benchmark(benchmark):
    benchmark.pedantic(
        lambda: run_durability_benchmark(SMOKE), rounds=1, iterations=1
    )


if __name__ == "__main__":
    main()
