"""Mutation cost of the catalog layer vs full index rebuilds.

The point of the delta/tombstone design: absorbing a mutation costs one
PMI row (for adds/updates) or one mask bit (for removes), while the naive
alternative — rebuild the whole index — pays the full SIP-bound computation
for every graph on *every* mutation.  This benchmark applies a mixed
add/remove/update stream to a `GraphCatalog`, timing each mutation and the
queries in between, against the wall time of equivalent from-scratch
rebuilds; it asserts answer parity with the rebuild at the end (the
catalog's core guarantee) and a sane speedup on the mutation path.

Run directly (``python benchmarks/bench_catalog_mutations.py``) or via
pytest to track the timings.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.core import GraphCatalog, QueryPlanner, SearchConfig, VerificationConfig
from repro.datasets import PPIDatasetConfig, generate_ppi_database, generate_query_workload
from repro.pmi import BoundConfig, FeatureSelectionConfig, ProbabilisticMatrixIndex
from repro.structural.feature_index import StructuralFeatureIndex
from repro.utils.timer import Timer

try:
    from benchmarks.conftest import BENCH_SEED, print_table
except ModuleNotFoundError:  # direct script run: repo root not on sys.path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.conftest import BENCH_SEED, print_table

BASE_GRAPHS = 18
ARRIVALS = 6
PROBABILITY_THRESHOLD = 0.3
DISTANCE_THRESHOLD = 1

CATALOG_FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.15, gamma=0.1, max_vertices=3, max_features=12
)
CATALOG_BOUND_CONFIG = BoundConfig(num_samples=120)
CATALOG_SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=200)
)


def _dataset(num_graphs: int, seed: int):
    return generate_ppi_database(
        PPIDatasetConfig(
            num_graphs=num_graphs,
            num_families=3,
            vertices_per_graph=10,
            edges_per_graph=13,
            motif_vertices=3,
            motif_edges=3,
            mean_edge_probability=0.55,
            probability_spread=0.2,
        ),
        rng=seed,
    )


def _rebuild_planner(catalog: GraphCatalog) -> QueryPlanner:
    """The from-scratch build the catalog replaces (and must agree with)."""
    items = catalog.live_items()
    graphs = [graph for _, graph in items]
    ids = [external_id for external_id, _ in items]
    pmi = ProbabilisticMatrixIndex(
        feature_config=CATALOG_FEATURE_CONFIG, bound_config=CATALOG_BOUND_CONFIG
    ).build(graphs, features=catalog.features, rng=catalog.build_root, graph_ids=ids)
    structural = StructuralFeatureIndex(
        embedding_limit=CATALOG_FEATURE_CONFIG.embedding_limit
    ).build([graph.skeleton for graph in graphs], catalog.features)
    return QueryPlanner(
        graphs, pmi, structural, graph_ids=np.asarray(ids, dtype=np.int64)
    )


def run_mutation_benchmark() -> dict:
    base = _dataset(BASE_GRAPHS, BENCH_SEED)
    arrivals = _dataset(ARRIVALS, BENCH_SEED + 1).graphs
    query = generate_query_workload(
        base.graphs, query_size=4, num_queries=1, rng=BENCH_SEED
    ).queries()[0]

    build_timer = Timer()
    with build_timer:
        catalog = GraphCatalog.build(
            base.graphs,
            feature_config=CATALOG_FEATURE_CONFIG,
            bound_config=CATALOG_BOUND_CONFIG,
            rng=BENCH_SEED,
        )

    # a mixed mutation stream: arrivals, a churned removal, an in-place update
    mutations: list[tuple] = [("add", graph) for graph in arrivals[:4]]
    mutations += [("remove", 3), ("update", 7, arrivals[4]), ("add", arrivals[5])]

    rows = []
    mutation_seconds = 0.0
    rebuild_seconds = 0.0
    for mutation in mutations:
        timer = Timer()
        with timer:
            if mutation[0] == "add":
                catalog.add_graph(mutation[1])
            elif mutation[0] == "remove":
                catalog.remove_graph(mutation[1])
            else:
                catalog.update_graph(mutation[1], mutation[2])
        mutation_seconds += timer.elapsed
        rebuild_timer = Timer()
        with rebuild_timer:
            rebuilt = _rebuild_planner(catalog)
        rebuild_seconds += rebuild_timer.elapsed
        rows.append(
            [
                mutation[0],
                catalog.num_live,
                catalog.delta_rows,
                f"{timer.elapsed * 1e3:.1f}",
                f"{rebuild_timer.elapsed * 1e3:.1f}",
            ]
        )

    query_timer = Timer()
    with query_timer:
        catalog_result = catalog.query(
            query,
            PROBABILITY_THRESHOLD,
            DISTANCE_THRESHOLD,
            config=CATALOG_SEARCH_CONFIG,
            rng=BENCH_SEED,
        )
    rebuilt_result = rebuilt.execute(
        query,
        PROBABILITY_THRESHOLD,
        DISTANCE_THRESHOLD,
        config=CATALOG_SEARCH_CONFIG,
        rng=BENCH_SEED,
    )
    assert [(a.graph_id, a.probability) for a in catalog_result.answers] == [
        (a.graph_id, a.probability) for a in rebuilt_result.answers
    ], "catalog answers must match the from-scratch rebuild"

    compact_timer = Timer()
    with compact_timer:
        catalog.compact()

    print_table(
        "catalog mutations vs from-scratch rebuilds",
        ["op", "live", "delta_rows", "mutate_ms", "rebuild_ms"],
        rows,
    )
    speedup = rebuild_seconds / mutation_seconds if mutation_seconds else float("inf")
    summary = {
        "base_build_seconds": round(build_timer.elapsed, 4),
        "mutation_seconds_total": round(mutation_seconds, 4),
        "rebuild_seconds_total": round(rebuild_seconds, 4),
        "mutation_speedup": round(speedup, 1),
        "compact_seconds": round(compact_timer.elapsed, 4),
        "query_seconds": round(query_timer.elapsed, 4),
        "answers": len(catalog_result.answers),
    }
    print("\nsummary:", summary)
    # absorbing a mutation must beat rebuilding the whole index decisively;
    # 2x is an extremely loose floor (typical is >10x) to keep CI stable
    assert speedup > 2.0, f"mutation path only {speedup:.1f}x faster than rebuilds"
    catalog.close()
    return summary


def test_catalog_mutation_benchmark(benchmark):
    benchmark.pedantic(run_mutation_benchmark, rounds=1, iterations=1)


if __name__ == "__main__":
    run_mutation_benchmark()
