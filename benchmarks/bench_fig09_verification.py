"""Figure 9: verification cost and quality versus query size.

* Figure 9(a): average verification time per candidate, Exact
  (inclusion-exclusion, Equation 21) versus the SMP sampler (Algorithm 5).
* Figure 9(b): precision and recall of the SMP-based answer set against the
  exact answer set.

The paper reports SMP staying below ~3 s per query while Exact grows
exponentially, and SMP precision/recall above 90%.  We reproduce the shape on
query sizes 3-6 (scaled from the paper's 50-250).
"""

from __future__ import annotations

from repro.core import VerificationConfig, Verifier, relax_query
from repro.datasets import generate_query_workload
from repro.utils.timer import Timer

from benchmarks.conftest import BENCH_SEED, print_table

QUERY_SIZES = [3, 4, 5, 6]
PROBABILITY_THRESHOLD = 0.25
DISTANCE_THRESHOLD = 1
QUERIES_PER_SIZE = 3
SMP_SAMPLES = 800


def run_verification_sweep(database) -> list[dict]:
    """Compute per-query-size timing and quality series."""
    rows = []
    for size in QUERY_SIZES:
        workload = generate_query_workload(
            database.graphs, query_size=size, num_queries=QUERIES_PER_SIZE, rng=BENCH_SEED + size
        )
        exact_verifier = Verifier(VerificationConfig(method="inclusion_exclusion"))
        smp_verifier = Verifier(
            VerificationConfig(method="sampling", num_samples=SMP_SAMPLES), rng=BENCH_SEED
        )
        exact_time = Timer()
        smp_time = Timer()
        true_positive = 0
        returned = 0
        relevant = 0
        for record in workload:
            relaxed = relax_query(record.query, DISTANCE_THRESHOLD)
            for graph in database.graphs:
                with exact_time:
                    exact_p = exact_verifier.subgraph_similarity_probability(
                        record.query, graph, DISTANCE_THRESHOLD, relaxed_queries=relaxed
                    )
                with smp_time:
                    smp_p = smp_verifier.subgraph_similarity_probability(
                        record.query, graph, DISTANCE_THRESHOLD, relaxed_queries=relaxed
                    )
                exact_answer = exact_p >= PROBABILITY_THRESHOLD
                smp_answer = smp_p >= PROBABILITY_THRESHOLD
                if exact_answer:
                    relevant += 1
                if smp_answer:
                    returned += 1
                if exact_answer and smp_answer:
                    true_positive += 1
        pairs = QUERIES_PER_SIZE * len(database.graphs)
        rows.append(
            {
                "query_size": size,
                "exact_seconds_per_pair": exact_time.elapsed / pairs,
                "smp_seconds_per_pair": smp_time.elapsed / pairs,
                "precision": (true_positive / returned) if returned else 1.0,
                "recall": (true_positive / relevant) if relevant else 1.0,
            }
        )
    return rows


def test_fig09_verification_time_and_quality(benchmark, bench_database):
    rows = benchmark.pedantic(
        run_verification_sweep, args=(bench_database,), rounds=1, iterations=1
    )
    print_table(
        "Figure 9(a): verification time per (query, graph) pair (seconds)",
        ["query size", "Exact", "SMP"],
        [
            [r["query_size"], f"{r['exact_seconds_per_pair']:.4f}", f"{r['smp_seconds_per_pair']:.4f}"]
            for r in rows
        ],
    )
    print_table(
        "Figure 9(b): SMP answer quality vs Exact",
        ["query size", "precision %", "recall %"],
        [
            [r["query_size"], f"{100 * r['precision']:.1f}", f"{100 * r['recall']:.1f}"]
            for r in rows
        ],
    )
    # paper shape: SMP stays cheap; quality stays high.  The scaled database
    # has only a handful of true answers per query, so a single threshold
    # flip moves precision/recall a lot — assert on the average instead of
    # per-size minima.
    mean_precision = sum(r["precision"] for r in rows) / len(rows)
    mean_recall = sum(r["recall"] for r in rows) / len(rows)
    assert mean_precision >= 0.6
    assert mean_recall >= 0.6
