"""Figure 10: candidate size and pruning time versus probability threshold.

Compares three filters for ε in {0.3 .. 0.7}:

* **Structure** — deterministic structural pruning only (threshold-agnostic,
  flat bars in the paper);
* **SSPBound** — probabilistic pruning with arbitrary feature pairing;
* **OPT-SSPBound** — probabilistic pruning with the tightest bounds
  (set cover + QP rounding).

The paper reports OPT-SSPBound candidate sets of ~15 graphs on average,
shrinking as ε grows, with sub-second pruning time slightly above SSPBound.
"""

from __future__ import annotations

from repro.core import PruningConfig, relax_query
from repro.core.pruning import ProbabilisticPruner, PruningDecision
from repro.structural import StructuralFilter
from repro.utils.timer import Timer

from benchmarks.conftest import BENCH_SEED, print_table

PROBABILITY_THRESHOLDS = [0.3, 0.4, 0.5, 0.6, 0.7]
DISTANCE_THRESHOLD = 1


def run_threshold_sweep(engine, workload) -> list[dict]:
    structural_filter = StructuralFilter(
        engine.structural_index, [graph.skeleton for graph in engine.graphs]
    )
    rows = []
    for epsilon in PROBABILITY_THRESHOLDS:
        structure_candidates = 0
        structure_time = Timer()
        results = {
            "SSPBound": {"candidates": 0, "timer": Timer(), "config": PruningConfig(False, False)},
            "OPT-SSPBound": {"candidates": 0, "timer": Timer(), "config": PruningConfig(True, True)},
        }
        for record in workload:
            relaxed = relax_query(record.query, DISTANCE_THRESHOLD)
            with structure_time:
                structural = structural_filter.filter(record.query, DISTANCE_THRESHOLD)
            structure_candidates += structural.candidate_count
            for _name, entry in results.items():
                pruner = ProbabilisticPruner(
                    engine.pmi.features, config=entry["config"], rng=BENCH_SEED
                )
                with entry["timer"]:
                    for graph_id in structural.candidate_ids:
                        bounds = pruner.compute_bounds(
                            relaxed, engine.pmi.bounds_for_graph(graph_id)
                        )
                        if pruner.decide(bounds, epsilon) is not PruningDecision.PRUNED:
                            entry["candidates"] += 1
        queries = len(workload)
        rows.append(
            {
                "epsilon": epsilon,
                "structure_candidates": structure_candidates / queries,
                "structure_seconds": structure_time.elapsed / queries,
                "sspbound_candidates": results["SSPBound"]["candidates"] / queries,
                "sspbound_seconds": results["SSPBound"]["timer"].elapsed / queries,
                "opt_candidates": results["OPT-SSPBound"]["candidates"] / queries,
                "opt_seconds": results["OPT-SSPBound"]["timer"].elapsed / queries,
            }
        )
    return rows


def test_fig10_candidate_size_and_pruning_time(benchmark, bench_engine, bench_workload):
    rows = benchmark.pedantic(
        run_threshold_sweep, args=(bench_engine, bench_workload), rounds=1, iterations=1
    )
    print_table(
        "Figure 10(a): average candidate size vs probability threshold",
        ["epsilon", "Structure", "SSPBound", "OPT-SSPBound"],
        [
            [r["epsilon"], f"{r['structure_candidates']:.1f}", f"{r['sspbound_candidates']:.1f}", f"{r['opt_candidates']:.1f}"]
            for r in rows
        ],
    )
    print_table(
        "Figure 10(b): average pruning time (seconds) vs probability threshold",
        ["epsilon", "Structure", "SSPBound", "OPT-SSPBound"],
        [
            [r["epsilon"], f"{r['structure_seconds']:.4f}", f"{r['sspbound_seconds']:.4f}", f"{r['opt_seconds']:.4f}"]
            for r in rows
        ],
    )
    # shape checks: structure is threshold-agnostic; probabilistic pruning
    # never yields more candidates than structure alone and shrinks with ε
    assert len({round(r["structure_candidates"], 6) for r in rows}) == 1
    for r in rows:
        assert r["opt_candidates"] <= r["structure_candidates"] + 1e-9
    assert rows[-1]["opt_candidates"] <= rows[0]["opt_candidates"] + 1e-9
