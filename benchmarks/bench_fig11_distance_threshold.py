"""Figure 11: candidate size and pruning time versus subgraph distance threshold.

Compares, for δ in {1, 2, 3} (paper: 2-6):

* **Structure** — deterministic structural pruning;
* **SIPBound** — probabilistic pruning fed by *plain* SIP bounds (one
  arbitrary embedding / cut per feature);
* **OPT-SIPBound** — probabilistic pruning fed by the *tightest* SIP bounds
  (maximum-weight-clique selection).

The paper reports all bars growing with δ (looser queries keep more graphs),
with both SIP variants far below Structure and OPT-SIPBound paying a little
extra pruning time for fewer candidates.
"""

from __future__ import annotations

from repro.core import PruningConfig, relax_query
from repro.core.pruning import ProbabilisticPruner, PruningDecision
from repro.pmi import BoundConfig, ProbabilisticMatrixIndex
from repro.structural import StructuralFilter
from repro.utils.timer import Timer

from benchmarks.conftest import BENCH_BOUND_CONFIG, BENCH_SEED, print_table

DISTANCE_THRESHOLDS = [1, 2, 3]
PROBABILITY_THRESHOLD = 0.5


def build_plain_index(engine) -> ProbabilisticMatrixIndex:
    """A second PMI whose cells hold the non-optimized SIP bounds."""
    plain = ProbabilisticMatrixIndex(
        feature_config=engine.pmi.feature_config,
        bound_config=BoundConfig(
            num_samples=BENCH_BOUND_CONFIG.num_samples,
            embedding_limit=BENCH_BOUND_CONFIG.embedding_limit,
            optimize=False,
        ),
    )
    plain.build(engine.graphs, features=engine.pmi.features, rng=BENCH_SEED)
    return plain


def run_distance_sweep(engine, workload) -> list[dict]:
    structural_filter = StructuralFilter(
        engine.structural_index, [graph.skeleton for graph in engine.graphs]
    )
    plain_index = build_plain_index(engine)
    indexes = {"SIPBound": plain_index, "OPT-SIPBound": engine.pmi}
    rows = []
    for delta in DISTANCE_THRESHOLDS:
        structure_candidates = 0
        structure_time = Timer()
        series = {name: {"candidates": 0, "timer": Timer()} for name in indexes}
        for record in workload:
            if delta >= record.query.num_edges:
                continue
            relaxed = relax_query(record.query, delta)
            with structure_time:
                structural = structural_filter.filter(record.query, delta)
            structure_candidates += structural.candidate_count
            for name, index in indexes.items():
                pruner = ProbabilisticPruner(
                    index.features, config=PruningConfig(True, True), rng=BENCH_SEED
                )
                with series[name]["timer"]:
                    for graph_id in structural.candidate_ids:
                        bounds = pruner.compute_bounds(relaxed, index.bounds_for_graph(graph_id))
                        decision = pruner.decide(bounds, PROBABILITY_THRESHOLD)
                        if decision is not PruningDecision.PRUNED:
                            series[name]["candidates"] += 1
        queries = len(workload)
        rows.append(
            {
                "delta": delta,
                "structure_candidates": structure_candidates / queries,
                "structure_seconds": structure_time.elapsed / queries,
                "sip_candidates": series["SIPBound"]["candidates"] / queries,
                "sip_seconds": series["SIPBound"]["timer"].elapsed / queries,
                "opt_candidates": series["OPT-SIPBound"]["candidates"] / queries,
                "opt_seconds": series["OPT-SIPBound"]["timer"].elapsed / queries,
            }
        )
    return rows


def test_fig11_candidate_size_and_time_vs_distance(benchmark, bench_engine, bench_workload):
    rows = benchmark.pedantic(
        run_distance_sweep, args=(bench_engine, bench_workload), rounds=1, iterations=1
    )
    print_table(
        "Figure 11(a): average candidate size vs subgraph distance threshold",
        ["delta", "Structure", "SIPBound", "OPT-SIPBound"],
        [
            [r["delta"], f"{r['structure_candidates']:.1f}", f"{r['sip_candidates']:.1f}", f"{r['opt_candidates']:.1f}"]
            for r in rows
        ],
    )
    print_table(
        "Figure 11(b): average pruning time (seconds) vs subgraph distance threshold",
        ["delta", "Structure", "SIPBound", "OPT-SIPBound"],
        [
            [r["delta"], f"{r['structure_seconds']:.4f}", f"{r['sip_seconds']:.4f}", f"{r['opt_seconds']:.4f}"]
            for r in rows
        ],
    )
    # shape checks: candidates never exceed structure, and grow with δ
    for r in rows:
        assert r["opt_candidates"] <= r["structure_candidates"] + 1e-9
        assert r["sip_candidates"] <= r["structure_candidates"] + 1e-9
    assert rows[0]["structure_candidates"] <= rows[-1]["structure_candidates"] + 1e-9
