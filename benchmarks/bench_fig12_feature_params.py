"""Figure 12: impact of the feature-generation parameters maxL, α, β, γ.

* 12(a) candidate size vs ``maxL`` (maximum feature size),
* 12(b) candidate size vs ``α`` (disjoint-embedding ratio),
* 12(c) index building time vs ``β`` (frequency threshold),
* 12(d) index size vs ``γ`` (discriminative threshold).

The paper's trends: larger maxL → looser bounds → more candidates; candidate
counts dip around α ≈ 0.1-0.15; larger β or γ → fewer features → cheaper,
smaller index.  We sweep scaled parameter grids and report the same metrics.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import PruningConfig, relax_query
from repro.core.pruning import ProbabilisticPruner, PruningDecision
from repro.pmi import BoundConfig, FeatureSelectionConfig, ProbabilisticMatrixIndex
from repro.structural import StructuralFeatureIndex, StructuralFilter

from benchmarks.conftest import BENCH_SEED, print_table

MAXL_VALUES = [2, 3, 4]
ALPHA_VALUES = [0.05, 0.15, 0.25]
BETA_VALUES = [0.1, 0.2, 0.3]
GAMMA_VALUES = [0.05, 0.15, 0.25]
PROBABILITY_THRESHOLD = 0.5
DISTANCE_THRESHOLD = 1

BASE_FEATURES = FeatureSelectionConfig(
    alpha=0.1, beta=0.15, gamma=0.1, max_vertices=3, max_features=16
)
BOUNDS = BoundConfig(num_samples=80)


def _candidate_count(database, index, workload) -> float:
    skeletons = [graph.skeleton for graph in database.graphs]
    structural = StructuralFeatureIndex().build(skeletons, index.features)
    structural_filter = StructuralFilter(structural, skeletons)
    pruner = ProbabilisticPruner(index.features, config=PruningConfig(True, True), rng=BENCH_SEED)
    total = 0
    for record in workload:
        relaxed = relax_query(record.query, DISTANCE_THRESHOLD)
        outcome = structural_filter.filter(record.query, DISTANCE_THRESHOLD)
        for graph_id in outcome.candidate_ids:
            bounds = pruner.compute_bounds(relaxed, index.bounds_for_graph(graph_id))
            if pruner.decide(bounds, PROBABILITY_THRESHOLD) is not PruningDecision.PRUNED:
                total += 1
    return total / len(workload)


def _build(database, feature_config) -> ProbabilisticMatrixIndex:
    index = ProbabilisticMatrixIndex(feature_config=feature_config, bound_config=BOUNDS)
    index.build(database.graphs, rng=BENCH_SEED)
    return index


def run_parameter_sweeps(database, workload) -> dict:
    results = {"maxL": [], "alpha": [], "beta": [], "gamma": []}
    for max_vertices in MAXL_VALUES:
        index = _build(database, replace(BASE_FEATURES, max_vertices=max_vertices))
        results["maxL"].append(
            {"value": max_vertices, "candidates": _candidate_count(database, index, workload)}
        )
    for alpha in ALPHA_VALUES:
        index = _build(database, replace(BASE_FEATURES, alpha=alpha))
        results["alpha"].append(
            {"value": alpha, "candidates": _candidate_count(database, index, workload)}
        )
    for beta in BETA_VALUES:
        index = _build(database, replace(BASE_FEATURES, beta=beta))
        results["beta"].append(
            {"value": beta, "build_seconds": index.build_seconds, "features": index.num_features}
        )
    for gamma in GAMMA_VALUES:
        index = _build(database, replace(BASE_FEATURES, gamma=gamma))
        results["gamma"].append(
            {"value": gamma, "index_kb": index.size_in_bytes() / 1024.0, "features": index.num_features}
        )
    return results


def test_fig12_feature_generation_parameters(benchmark, bench_database, bench_workload):
    results = benchmark.pedantic(
        run_parameter_sweeps, args=(bench_database, bench_workload), rounds=1, iterations=1
    )
    print_table(
        "Figure 12(a): candidate size vs maxL (max feature vertices)",
        ["maxL", "OPT-SSPBound candidates"],
        [[r["value"], f"{r['candidates']:.1f}"] for r in results["maxL"]],
    )
    print_table(
        "Figure 12(b): candidate size vs alpha",
        ["alpha", "OPT-SIPBound candidates"],
        [[r["value"], f"{r['candidates']:.1f}"] for r in results["alpha"]],
    )
    print_table(
        "Figure 12(c): index building time vs beta",
        ["beta", "build seconds", "features"],
        [[r["value"], f"{r['build_seconds']:.3f}", r["features"]] for r in results["beta"]],
    )
    print_table(
        "Figure 12(d): index size vs gamma",
        ["gamma", "index KB", "features"],
        [[r["value"], f"{r['index_kb']:.1f}", r["features"]] for r in results["gamma"]],
    )
    # shape checks: raising beta or gamma can only shrink the feature set
    betas = [r["features"] for r in results["beta"]]
    gammas = [r["features"] for r in results["gamma"]]
    assert betas == sorted(betas, reverse=True)
    assert gammas == sorted(gammas, reverse=True)
