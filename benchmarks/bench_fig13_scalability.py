"""Figure 13: total query processing time versus database size — PMI vs Exact.

The paper scales the database from 2K to 10K graphs and reports the full PMI
pipeline answering queries within ~10 seconds while the Exact scan grows
exponentially (beyond 1000 s at 6K graphs).  We scale the database from 8 to
32 synthetic PPI graphs and compare the same two systems: the indexed
filter-and-verify engine versus an index-free exact scan (with a sampling
fallback for graphs that are too large to enumerate exactly).
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines import ExactScanBaseline
from repro.baselines.exact_scan import ExactScanConfig
from repro.core import ProbabilisticGraphDatabase, SearchConfig, VerificationConfig
from repro.datasets import generate_ppi_database, generate_query_workload
from repro.utils.timer import Timer

from benchmarks.conftest import (
    BENCH_BOUND_CONFIG,
    BENCH_DATASET_CONFIG,
    BENCH_FEATURE_CONFIG,
    BENCH_SEED,
    print_table,
)

DATABASE_SIZES = [8, 16, 32]
PROBABILITY_THRESHOLD = 0.4
DISTANCE_THRESHOLD = 1
QUERY_SIZE = 3
NUM_QUERIES = 3

# Fewer vertex labels than the default benchmark dataset: queries then match
# many graphs structurally, which is what makes the index-free Exact scan pay
# the #P-complete verification cost on most of the database (the effect the
# paper's Figure 13 demonstrates at 2K-10K graphs).
SCALABILITY_DATASET = replace(BENCH_DATASET_CONFIG, num_vertex_labels=6)


def run_scalability_sweep() -> list[dict]:
    rows = []
    for size in DATABASE_SIZES:
        dataset = generate_ppi_database(
            replace(SCALABILITY_DATASET, num_graphs=size), rng=BENCH_SEED + size
        )
        workload = generate_query_workload(
            dataset.graphs, query_size=QUERY_SIZE, num_queries=NUM_QUERIES, rng=BENCH_SEED
        )
        engine = ProbabilisticGraphDatabase(dataset.graphs)
        engine.build_index(
            feature_config=BENCH_FEATURE_CONFIG, bound_config=BENCH_BOUND_CONFIG, rng=BENCH_SEED
        )
        scan = ExactScanBaseline(
            dataset.graphs,
            ExactScanConfig(
                method="inclusion_exclusion",
                verification=VerificationConfig(method="inclusion_exclusion", num_samples=400),
            ),
        )
        pmi_time = Timer()
        exact_time = Timer()
        pmi_verified = 0
        exact_verified = 0
        pmi_config = SearchConfig(
            verification=VerificationConfig(method="sampling", num_samples=250)
        )
        for record in workload:
            with pmi_time:
                pmi_result = engine.query(
                    record.query,
                    PROBABILITY_THRESHOLD,
                    DISTANCE_THRESHOLD,
                    config=pmi_config,
                    rng=BENCH_SEED,
                )
            with exact_time:
                exact_result = scan.query(
                    record.query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=BENCH_SEED
                )
            pmi_verified += pmi_result.statistics.verified
            exact_verified += exact_result.statistics.verified
        rows.append(
            {
                "database_size": size,
                "pmi_seconds": pmi_time.elapsed / NUM_QUERIES,
                "exact_seconds": exact_time.elapsed / NUM_QUERIES,
                "pmi_verified": pmi_verified / NUM_QUERIES,
                "exact_verified": exact_verified / NUM_QUERIES,
                "index_build_seconds": engine.pmi.build_seconds,
            }
        )
    return rows


def test_fig13_total_query_time(benchmark):
    rows = benchmark.pedantic(run_scalability_sweep, rounds=1, iterations=1)
    print_table(
        "Figure 13: total query processing time (seconds per query)",
        ["database size", "PMI (s)", "Exact (s)", "PMI verified", "Exact verified", "index build (s)"],
        [
            [
                r["database_size"],
                f"{r['pmi_seconds']:.3f}",
                f"{r['exact_seconds']:.3f}",
                f"{r['pmi_verified']:.1f}",
                f"{r['exact_verified']:.1f}",
                f"{r['index_build_seconds']:.2f}",
            ]
            for r in rows
        ],
    )
    # shape checks.  The Exact scan must pay the #P-complete verification on
    # every graph; the PMI pipeline verifies only the graphs its filters
    # could not decide.  (At this scale the per-graph verification cost is
    # tiny, so we assert on verified-graph counts — the quantity that drives
    # the paper's exponential-vs-flat curves — and report wall-clock times.)
    for r in rows:
        assert r["exact_verified"] == r["database_size"]
        assert r["pmi_verified"] < r["exact_verified"]
    # the verified-count gap must widen (at least not shrink) with database size
    first_gap = rows[0]["exact_verified"] - rows[0]["pmi_verified"]
    last_gap = rows[-1]["exact_verified"] - rows[-1]["pmi_verified"]
    assert last_gap >= first_gap
