"""Figure 14: answer quality under the correlated (COR) versus the
independent (IND) probability model.

The paper asks whether thresholded similarity search can recover the organism
a query was extracted from.  Ground truth: a query and a graph "belong
together" when they come from the same organism family.  A returned graph is
correct when it shares the query's family.  The paper reports the correlated
model holding precision/recall above ~85% while the independent model drops
below 60% at higher thresholds.

The synthetic database encodes organisms as generator families (each family
shares a structural motif), which plays the role of the STRING organism
labels here.
"""

from __future__ import annotations

from repro.baselines import database_to_independent
from repro.core import ProbabilisticGraphDatabase, SearchConfig, VerificationConfig
from repro.datasets import generate_query_workload

from benchmarks.conftest import (
    BENCH_BOUND_CONFIG,
    BENCH_FEATURE_CONFIG,
    BENCH_SEED,
    print_table,
)

PROBABILITY_THRESHOLDS = [0.3, 0.4, 0.5, 0.6, 0.7]
DISTANCE_THRESHOLD = 1
QUERY_SIZE = 4
NUM_QUERIES = 6


def _evaluate(engine, workload, organisms, epsilon) -> tuple[float, float]:
    """(precision, recall) of organism recovery at threshold ``epsilon``."""
    config = SearchConfig(verification=VerificationConfig(method="sampling", num_samples=300))
    true_positive = 0
    returned = 0
    relevant = 0
    for record in workload:
        family = record.organism
        family_members = {i for i, value in enumerate(organisms) if value == family}
        relevant += len(family_members)
        result = engine.query(
            record.query, epsilon, DISTANCE_THRESHOLD, config=config, rng=BENCH_SEED
        )
        answered = result.answer_ids()
        returned += len(answered)
        true_positive += len(answered & family_members)
    precision = true_positive / returned if returned else 1.0
    recall = true_positive / relevant if relevant else 0.0
    return precision, recall


def run_quality_comparison(database) -> list[dict]:
    workload = generate_query_workload(
        database.graphs,
        query_size=QUERY_SIZE,
        num_queries=NUM_QUERIES,
        organisms=database.organisms,
        rng=BENCH_SEED,
    )
    correlated_engine = ProbabilisticGraphDatabase(database.graphs)
    correlated_engine.build_index(
        feature_config=BENCH_FEATURE_CONFIG, bound_config=BENCH_BOUND_CONFIG, rng=BENCH_SEED
    )
    independent_engine = ProbabilisticGraphDatabase(database_to_independent(database.graphs))
    independent_engine.build_index(
        feature_config=BENCH_FEATURE_CONFIG, bound_config=BENCH_BOUND_CONFIG, rng=BENCH_SEED
    )
    rows = []
    for epsilon in PROBABILITY_THRESHOLDS:
        cor_precision, cor_recall = _evaluate(
            correlated_engine, workload, database.organisms, epsilon
        )
        ind_precision, ind_recall = _evaluate(
            independent_engine, workload, database.organisms, epsilon
        )
        rows.append(
            {
                "epsilon": epsilon,
                "cor_precision": cor_precision,
                "cor_recall": cor_recall,
                "ind_precision": ind_precision,
                "ind_recall": ind_recall,
            }
        )
    return rows


def test_fig14_correlated_vs_independent_quality(benchmark, bench_database):
    rows = benchmark.pedantic(run_quality_comparison, args=(bench_database,), rounds=1, iterations=1)
    print_table(
        "Figure 14: organism-recovery quality, COR vs IND (%)",
        ["epsilon", "COR precision", "COR recall", "IND precision", "IND recall"],
        [
            [
                r["epsilon"],
                f"{100 * r['cor_precision']:.1f}",
                f"{100 * r['cor_recall']:.1f}",
                f"{100 * r['ind_precision']:.1f}",
                f"{100 * r['ind_recall']:.1f}",
            ]
            for r in rows
        ],
    )
    # shape check: at higher thresholds the correlated model should not recall
    # fewer same-family graphs than the independent model (the paper's gap)
    high = rows[-2:]
    assert sum(r["cor_recall"] for r in high) >= sum(r["ind_recall"] for r in high) - 1e-9
