"""Matching throughput: the vectorized generic-join engine vs recursive VF2.

After PR 5 vectorized verification, embedding enumeration became the dominant
hot path: every ``rq ⊆iso f`` / ``f ⊆iso gc`` test and every ``Ef``
enumeration (Section 4.1) ran the recursive Python backtracker once per
(pattern, graph) pair.  This benchmark isolates an index-build + match-bound
profile and runs it under both engines:

* structural feature-count index build (``cnt_g(f)`` for every pair),
* a feature-presence sweep (``f ⊆iso gc`` for every pair, `match_block`),
* per query: the Grafil query profile, the pruner's feature-vs-relaxed-query
  containment relations, and the verifier's relaxed-embedding event lists.

Feature mining runs once, untimed — its cost is dominated by canonical-form
hashing, which is engine-independent and would only dilute the comparison.

The engines must agree *byte for byte*: counts, profiles, containment sets
and embedding events are compared exactly (the canonical embedding order
makes this possible), so the speedup is measured on provably identical work.

Run as a script::

    python benchmarks/bench_matching.py            # full run, asserts >= 3x
    python benchmarks/bench_matching.py --smoke    # small, CI-friendly, no floor

Each run appends one trajectory point to ``BENCH_matching.json`` (``--out``
to relocate), so the perf history accumulates across commits.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

# allow `python benchmarks/bench_matching.py` from the repo root (CI) as
# well as pytest collection, where the repo root is already importable
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core.pruning import ProbabilisticPruner
from repro.core.relaxation import relax_query
from repro.core.verification import VerificationConfig, Verifier
from repro.datasets import PPIDatasetConfig, generate_ppi_database, generate_query_workload
from repro.isomorphism import match_block, using_engine
from repro.pmi.features import FeatureMiner, FeatureSelectionConfig
from repro.structural.feature_index import StructuralFeatureIndex
from repro.utils.atomic_io import atomic_write_text
from repro.utils.timer import Timer

from benchmarks.conftest import BENCH_SEED, print_table

DISTANCE_THRESHOLD = 1
QUERY_SIZE = 5
SPEEDUP_FLOOR = 3.0

FULL = {
    "dataset": PPIDatasetConfig(
        num_graphs=16,
        num_families=4,
        vertices_per_graph=72,
        edges_per_graph=160,
        motif_vertices=4,
        motif_edges=5,
        mean_edge_probability=0.55,
        probability_spread=0.2,
    ),
    "max_features": 32,
    "num_queries": 3,
    "repeats": 3,
}

SMOKE = {
    "dataset": PPIDatasetConfig(
        num_graphs=8,
        num_families=2,
        vertices_per_graph=36,
        edges_per_graph=72,
        motif_vertices=4,
        motif_edges=4,
        mean_edge_probability=0.55,
        probability_spread=0.2,
    ),
    "max_features": 16,
    "num_queries": 2,
    "repeats": 1,
}


def build_workload(profile: dict):
    dataset = generate_ppi_database(profile["dataset"], rng=BENCH_SEED)
    workload = generate_query_workload(
        dataset.graphs,
        query_size=QUERY_SIZE,
        num_queries=profile["num_queries"],
        organisms=dataset.organisms,
        rng=BENCH_SEED,
    )
    return dataset.graphs, workload.queries()


def matching_pass(graphs, skeletons, features, queries, relaxed_sets, verifier, pruner):
    """One full matching-bound pass; returns every matching-derived result."""
    index = StructuralFeatureIndex().build(skeletons, features)
    return {
        "counts": index.counts_matrix().tolist(),
        "presence": [match_block(feature.graph, skeletons) for feature in features],
        "profiles": [index.query_profile(query) for query in queries],
        "containment": [
            {
                feature_id: (sorted(c.sub_of), sorted(c.super_of))
                for feature_id, c in pruner.prepare(relaxed).items()
            }
            for relaxed in relaxed_sets
        ],
        "events": [
            verifier._embedding_events_block(relaxed, graphs)
            for relaxed in relaxed_sets
        ],
    }


def run_comparison(profile: dict) -> dict:
    graphs, queries = build_workload(profile)
    skeletons = [graph.skeleton for graph in graphs]

    # mine once, untimed: feature selection is dominated by canonical-form
    # hashing, which no matching engine touches
    with using_engine("generic_join"):
        features = FeatureMiner(
            FeatureSelectionConfig(max_features=profile["max_features"])
        ).mine(graphs)

    verifier = Verifier(VerificationConfig())
    pruner = ProbabilisticPruner(features)
    relaxed_sets = [
        relax_query(query, DISTANCE_THRESHOLD, verifier.relaxation) for query in queries
    ]

    def one_pass():
        return matching_pass(
            graphs, skeletons, features, queries, relaxed_sets, verifier, pruner
        )

    results: dict[str, dict] = {}
    seconds: dict[str, float] = {}
    for engine in ("generic_join", "vf2"):
        with using_engine(engine):
            one_pass()  # warm engine-side caches (edge tables, join plans)
            timer = Timer()
            with timer:
                for _ in range(profile["repeats"]):
                    results[engine] = one_pass()
            seconds[engine] = timer.elapsed / profile["repeats"]

    # the whole point of the canonical result order: both engines must
    # produce byte-identical counts, profiles, containment sets and events
    identical = results["generic_join"] == results["vf2"]
    num_pairs = len(features) * len(graphs)
    return {
        "num_graphs": len(graphs),
        "num_features": len(features),
        "num_queries": len(queries),
        "num_feature_graph_pairs": num_pairs,
        "repeats": profile["repeats"],
        "vf2_seconds": seconds["vf2"],
        "generic_join_seconds": seconds["generic_join"],
        "speedup": seconds["vf2"] / max(seconds["generic_join"], 1e-9),
        "vf2_pairs_per_second": num_pairs / max(seconds["vf2"], 1e-9),
        "generic_join_pairs_per_second": num_pairs / max(seconds["generic_join"], 1e-9),
        "results_identical": identical,
    }


def append_trajectory_point(path: Path, point: dict) -> None:
    """Append one run to the JSON trajectory (a list of run records)."""
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(point)
    atomic_write_text(path, json.dumps(history, indent=2) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small dataset, one repeat, no speedup floor (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_matching.json"),
        help="trajectory file to append this run's point to",
    )
    args = parser.parse_args()
    profile = SMOKE if args.smoke else FULL

    report = run_comparison(profile)
    print_table(
        "Matching throughput: recursive VF2 vs vectorized generic join "
        f"({report['num_features']} features x {report['num_graphs']} graphs, "
        f"{report['num_queries']} queries)",
        ["engine", "seconds/pass", "feature-graph pairs/s"],
        [
            [
                "vf2 (reference)",
                f"{report['vf2_seconds']:.3f}",
                f"{report['vf2_pairs_per_second']:.0f}",
            ],
            [
                "generic_join",
                f"{report['generic_join_seconds']:.3f}",
                f"{report['generic_join_pairs_per_second']:.0f}",
            ],
        ],
    )
    print(f"speedup: {report['speedup']:.2f}x  "
          f"(results byte-identical: {report['results_identical']})")

    point = {
        "bench": "matching",
        "mode": "smoke" if args.smoke else "full",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        **report,
    }
    append_trajectory_point(args.out, point)
    print(f"trajectory point appended to {args.out}")

    assert report["results_identical"], (
        "generic-join and VF2 produced different counts/profiles/containment/"
        "events; the engines are not equivalent on this workload"
    )
    if not args.smoke:
        assert report["speedup"] >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x matching speedup, "
            f"measured {report['speedup']:.2f}x"
        )


if __name__ == "__main__":
    main()
