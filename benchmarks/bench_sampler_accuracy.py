"""Ablation (extra, not a paper figure): SMP estimator error versus sample count.

The paper fixes the Monte-Carlo parameters (ξ, τ) and never reports how the
Karp-Luby verification accuracy depends on the sample budget; DESIGN.md lists
this as an ablation.  We compare the sampled SSP against the exact value on a
small graph for increasing sample counts and confirm the error shrinks.
"""

from __future__ import annotations

from repro.core import VerificationConfig, Verifier
from repro.datasets import extract_query

from benchmarks.conftest import BENCH_SEED, print_table

SAMPLE_COUNTS = [50, 200, 800, 3200]
DISTANCE_THRESHOLD = 1
TRIALS = 5


def run_accuracy_sweep(database) -> list[dict]:
    graph = database.graphs[0]
    query = extract_query(graph.skeleton, 4, rng=BENCH_SEED)
    exact = Verifier(VerificationConfig(method="inclusion_exclusion"))
    truth = exact.subgraph_similarity_probability(query, graph, DISTANCE_THRESHOLD)
    rows = []
    for count in SAMPLE_COUNTS:
        errors = []
        for trial in range(TRIALS):
            sampler = Verifier(
                VerificationConfig(method="sampling", num_samples=count),
                rng=BENCH_SEED + trial,
            )
            estimate = sampler.subgraph_similarity_probability(query, graph, DISTANCE_THRESHOLD)
            errors.append(abs(estimate - truth))
        rows.append(
            {
                "samples": count,
                "truth": truth,
                "mean_abs_error": sum(errors) / len(errors),
                "max_abs_error": max(errors),
            }
        )
    return rows


def test_sampler_accuracy_vs_budget(benchmark, bench_database):
    rows = benchmark.pedantic(run_accuracy_sweep, args=(bench_database,), rounds=1, iterations=1)
    print_table(
        "Ablation: SMP absolute error vs sample count",
        ["samples", "exact SSP", "mean |error|", "max |error|"],
        [
            [r["samples"], f"{r['truth']:.4f}", f"{r['mean_abs_error']:.4f}", f"{r['max_abs_error']:.4f}"]
            for r in rows
        ],
    )
    # the largest budget should be at least as accurate as the smallest
    assert rows[-1]["mean_abs_error"] <= rows[0]["mean_abs_error"] + 0.02
