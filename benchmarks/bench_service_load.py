"""Query-service load: micro-batching throughput, latency, mixed traffic.

A closed-loop load generator drives the always-on query service the way a
serving deployment would — N client coroutines, each firing its next
request the moment the previous answer lands — and measures what the
service layer adds and what micro-batching buys:

* **parity under load** — every seeded answer produced under concurrent
  traffic is compared byte-for-byte against a twin catalog queried
  sequentially (the service must never trade correctness for throughput);
* **batching throughput** — the same closed-loop workload through
  ``max_batch_size=1`` (every request its own backend call) vs the real
  micro-batching path, over a sharded pooled backend; the ratio is the
  price of ignoring coalescing.  The answer cache is disabled for both
  sides so the ratio measures batching, not memoization;
* **mixed traffic with mutation churn** — queries keep flowing while a
  mutator client adds/removes graphs through the service; afterwards a
  twin that received the same mutation sequence must still agree
  byte-for-byte (generation-keyed caching and the mutation barrier at
  work);
* **latency trajectory** — queue/execute/total percentiles from the
  service's own ``/stats`` plus client-observed p50/p95/p99 per phase,
  appended to ``BENCH_service.json``.

The >= 2x batched-vs-unbatched floor (full mode, 64 clients) only fires
when the hardware can express it; smoke runs record the ratio and always
check parity.

Run as a script::

    python benchmarks/bench_service_load.py            # full run
    python benchmarks/bench_service_load.py --smoke    # CI mode
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import random
import time
from pathlib import Path

import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core import GraphCatalog, SearchConfig, VerificationConfig
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.pmi import BoundConfig, FeatureSelectionConfig
from repro.service import QueryService, ServiceClient, ServiceConfig
from repro.utils.atomic_io import atomic_write_text

from benchmarks.conftest import print_table

PROBABILITY_THRESHOLD = 0.35
DISTANCE_THRESHOLD = 1
QUERY_SIZE = 3
BATCHED_SPEEDUP_FLOOR = 2.0

FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=12
)
BOUND_CONFIG = BoundConfig(num_samples=60)
SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=120)
)

FULL = {
    "dataset": PPIDatasetConfig(
        num_graphs=24,
        num_families=4,
        vertices_per_graph=12,
        edges_per_graph=16,
        motif_vertices=4,
        motif_edges=4,
        mean_edge_probability=0.55,
        probability_spread=0.2,
    ),
    "num_shards": 4,
    "max_workers": 4,
    "clients": 64,
    "requests": 256,
    "churn_requests": 48,
    "max_batch_size": 32,
}

SMOKE = {
    "dataset": PPIDatasetConfig(
        num_graphs=8,
        num_families=2,
        vertices_per_graph=8,
        edges_per_graph=10,
        motif_vertices=3,
        motif_edges=3,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    ),
    "num_shards": 2,
    "max_workers": 0,  # in-process shards: CI runners have few cores
    "clients": 8,
    "requests": 32,
    "churn_requests": 12,
    "max_batch_size": 8,
}

SEED = 20120902


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def answer_tuples(result):
    return [
        (a.graph_id, a.graph_name, a.probability, a.decided_by)
        for a in result.answers
    ]


def build_workload(database, count: int, seed: int):
    """Seeded mixed requests: every request carries a unique RNG seed so the
    answer cache (when enabled) cannot short-circuit the measurement."""
    decider = random.Random(seed)
    requests = []
    for index in range(count):
        query = extract_query(
            database.graphs[decider.randrange(len(database.graphs))].skeleton,
            QUERY_SIZE,
            rng=seed * 1000 + index,
        )
        rng_seed = seed * 100_000 + index
        if decider.random() < 0.6:
            requests.append(("query", query, PROBABILITY_THRESHOLD, rng_seed))
        else:
            requests.append(("query_top_k", query, decider.choice([1, 2, 4]), rng_seed))
    return requests


async def closed_loop(service, requests, clients: int):
    """Drive ``requests`` through ``clients`` concurrent closed-loop workers.

    Returns (elapsed_seconds, per-request latencies, responses aligned with
    the request list)."""
    pending = list(enumerate(requests))
    responses: list = [None] * len(requests)
    latencies: list[float] = []
    lock = asyncio.Lock()

    async def worker():
        client = ServiceClient(service)
        while True:
            async with lock:
                if not pending:
                    return
                index, (kind, query, param, seed) = pending.pop(0)
            begin = time.perf_counter()
            if kind == "query":
                result = await client.query(query, param, DISTANCE_THRESHOLD, rng=seed)
            else:
                result = await client.query_top_k(query, param, DISTANCE_THRESHOLD, rng=seed)
            latencies.append(time.perf_counter() - begin)
            responses[index] = result

    started = time.perf_counter()
    await asyncio.gather(*[worker() for _ in range(clients)])
    return time.perf_counter() - started, latencies, responses


def percentiles(samples: list[float]) -> dict:
    if not samples:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    ordered = sorted(samples)
    count = len(ordered)
    return {
        "p50": round(ordered[min(count - 1, int(0.50 * count))], 6),
        "p95": round(ordered[min(count - 1, int(0.95 * count))], 6),
        "p99": round(ordered[min(count - 1, int(0.99 * count))], 6),
    }


def verify_parity(requests, responses, twin, context: str) -> None:
    for index, ((kind, query, param, seed), actual) in enumerate(zip(requests, responses)):
        if kind == "query":
            expected = twin.query(
                query, param, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
            )
        else:
            expected = twin.query_top_k(
                query, param, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
            )
        assert answer_tuples(actual) == answer_tuples(expected), (
            f"{context}: request {index} ({kind}) diverged from the sequential twin"
        )


def build_catalog(profile: dict, database):
    kwargs = dict(feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=SEED)
    if profile["num_shards"] > 1:
        kwargs.update(num_shards=profile["num_shards"], max_workers=profile["max_workers"])
    return GraphCatalog.build(database.graphs, **kwargs)


async def run_throughput_phase(profile: dict, database, requests, twin) -> dict:
    """The batched-vs-unbatched comparison over identical closed-loop load.

    Both sides run with the answer cache off and the same sharded backend;
    only the coalescing limit differs.  Parity is asserted on the batched
    side (the interesting one) against the sequential twin."""
    measurements = {}
    for label, max_batch, window in (
        ("unbatched", 1, 0.0),
        ("batched", profile["max_batch_size"], 0.004),
    ):
        catalog = build_catalog(profile, database)
        config = ServiceConfig(
            batch_window=window,
            max_batch_size=max_batch,
            max_queue_depth=max(64, profile["clients"] * 2),
            cache_entries=0,  # measure batching, not memoization
            search_config=SEARCH_CONFIG,
        )
        try:
            async with QueryService(catalog, config) as service:
                # Warm the worker pool outside the timed region, the way a
                # long-lived deployment runs.
                warm = ServiceClient(service)
                await warm.query(
                    requests[0][1], PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=1
                )
                elapsed, latencies, responses = await closed_loop(
                    service, requests, profile["clients"]
                )
                stats = await warm.stats()
        finally:
            catalog.close()
        if label == "batched":
            verify_parity(requests, responses, twin, "throughput phase")
        measurements[label] = {
            "seconds": round(elapsed, 4),
            "qps": round(len(requests) / max(elapsed, 1e-9), 2),
            "latency": percentiles(latencies),
            "mean_batch_size": stats["batch"]["mean_size"],
            "max_batch_size": stats["batch"]["max_size"],
            "service_latency": stats["latency"],
        }
    measurements["speedup"] = round(
        measurements["batched"]["qps"] / max(measurements["unbatched"]["qps"], 1e-9), 3
    )
    return measurements


async def run_churn_phase(profile: dict, database, twin) -> dict:
    """Queries under concurrent mutation churn, with a post-churn parity check.

    The mutator client awaits each mutation before the next, so the final
    catalog state is deterministic; the twin replays the same sequence and
    must agree on fresh seeded queries once the storm has passed."""
    pool = generate_ppi_database(profile["dataset"], rng=SEED + 1).graphs[:4]
    catalog = build_catalog(profile, database)
    requests = build_workload(database, profile["churn_requests"], seed=SEED + 2)
    config = ServiceConfig(
        batch_window=0.004,
        max_batch_size=profile["max_batch_size"],
        max_queue_depth=max(64, profile["clients"] * 2),
        search_config=SEARCH_CONFIG,
    )
    mutation_log = []
    try:
        async with QueryService(catalog, config) as service:
            mutator = ServiceClient(service)

            async def churn():
                for cycle, graph in enumerate(pool):
                    added = await mutator.add_graph(graph)
                    mutation_log.append(("add", added["external_id"], graph))
                    if cycle % 2 == 1:
                        await mutator.remove_graph(added["external_id"])
                        mutation_log.append(("remove", added["external_id"], None))

            churn_task = asyncio.create_task(churn())
            elapsed, latencies, responses = await closed_loop(
                service, requests, max(2, profile["clients"] // 2)
            )
            await churn_task
            completed = sum(1 for response in responses if response is not None)

            # Replay the mutation sequence on the twin, then check parity on
            # fresh post-churn queries through the still-running service.
            for op, external_id, graph in mutation_log:
                if op == "add":
                    twin.add_graph(graph, external_id=external_id)
                else:
                    twin.remove_graph(external_id)
            post = build_workload(database, 4, seed=SEED + 3)
            probe = ServiceClient(service)
            post_responses = []
            for kind, query, param, seed in post:
                if kind == "query":
                    post_responses.append(
                        await probe.query(query, param, DISTANCE_THRESHOLD, rng=seed)
                    )
                else:
                    post_responses.append(
                        await probe.query_top_k(query, param, DISTANCE_THRESHOLD, rng=seed)
                    )
            verify_parity(post, post_responses, twin, "post-churn")
            stats = await probe.stats()
    finally:
        catalog.close()
    return {
        "seconds": round(elapsed, 4),
        "qps": round(len(requests) / max(elapsed, 1e-9), 2),
        "completed": completed,
        "mutations": len(mutation_log),
        "latency": percentiles(latencies),
        "cache": stats["cache"],
    }


async def run_benchmark(profile: dict) -> dict:
    database = generate_ppi_database(profile["dataset"], rng=SEED)
    requests = build_workload(database, profile["requests"], seed=SEED)
    twin = GraphCatalog.build(
        database.graphs, feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=SEED
    )
    churn_twin = GraphCatalog.build(
        database.graphs, feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=SEED
    )
    try:
        throughput = await run_throughput_phase(profile, database, requests, twin)
        churn = await run_churn_phase(profile, database, churn_twin)
    finally:
        twin.close()
        churn_twin.close()
    return {
        "num_graphs": len(database.graphs),
        "num_shards": profile["num_shards"],
        "max_workers": profile["max_workers"],
        "clients": profile["clients"],
        "requests": profile["requests"],
        "usable_cores": usable_cores(),
        "throughput": throughput,
        "churn": churn,
    }


def append_trajectory_point(path: Path, point: dict) -> None:
    """Append one run to the JSON trajectory (a list of run records)."""
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(point)
    atomic_write_text(path, json.dumps(history, indent=2) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small dataset, 8 clients, no speedup floor (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_service.json"),
        help="trajectory file to append this run's point to",
    )
    args = parser.parse_args()
    profile = SMOKE if args.smoke else FULL

    report = asyncio.run(run_benchmark(profile))
    throughput = report["throughput"]
    print_table(
        f"Service load: {report['clients']} closed-loop clients, "
        f"{report['requests']} mixed requests "
        f"(K={report['num_shards']}, W={report['max_workers']}, "
        f"{report['usable_cores']} usable cores)",
        ["mode", "seconds", "req/s", "p50 ms", "p95 ms", "p99 ms", "mean batch"],
        [
            [
                mode,
                throughput[mode]["seconds"],
                throughput[mode]["qps"],
                round(throughput[mode]["latency"]["p50"] * 1000, 1),
                round(throughput[mode]["latency"]["p95"] * 1000, 1),
                round(throughput[mode]["latency"]["p99"] * 1000, 1),
                throughput[mode]["mean_batch_size"],
            ]
            for mode in ("unbatched", "batched")
        ],
    )
    print(f"micro-batching speedup: {throughput['speedup']:.2f}x")
    churn = report["churn"]
    print_table(
        "Mixed traffic with mutation churn (post-churn parity verified)",
        ["requests", "mutations", "seconds", "req/s", "p95 ms", "cache invalidations"],
        [
            [
                churn["completed"],
                churn["mutations"],
                churn["seconds"],
                churn["qps"],
                round(churn["latency"]["p95"] * 1000, 1),
                churn["cache"]["invalidations"],
            ]
        ],
    )

    point = {
        "bench": "service",
        "mode": "smoke" if args.smoke else "full",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        **report,
    }
    append_trajectory_point(args.out, point)
    print(f"trajectory point appended to {args.out}")

    under_xdist = "PYTEST_XDIST_WORKER" in os.environ
    if not args.smoke and report["usable_cores"] >= profile["max_workers"] and not under_xdist:
        assert throughput["speedup"] >= BATCHED_SPEEDUP_FLOOR, (
            f"expected micro-batching >= {BATCHED_SPEEDUP_FLOOR}x over "
            f"batch-size-1 at {report['clients']} clients, measured "
            f"{throughput['speedup']:.2f}x"
        )


if __name__ == "__main__":
    main()
