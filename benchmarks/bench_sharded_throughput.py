"""Sharded throughput: ``query_many`` through a process pool vs one core.

The sharding layer targets the only axis PR 1 left on the table: all three
pipeline stages — structural filtering, PMI pruning, and the expensive
Karp–Luby verification — ran on a single core.  This benchmark partitions
the synthetic-PPI database into K shards, fans the same workload out over a
process pool, and reports queries/second against the sequential planner,
checking answer-for-answer parity along the way (the sharded executor must
be a pure speedup, never a different answer).

The speedup assertion (≥ 1.5× at 4 workers) only fires when the hardware
can express it: on boxes with fewer than 4 usable cores the benchmark still
runs, verifies parity, and prints the measured ratio for the record.
"""

from __future__ import annotations

import os

from repro.core import ProbabilisticGraphDatabase, SearchConfig, VerificationConfig
from repro.datasets import generate_query_workload
from repro.utils.timer import Timer

from benchmarks.conftest import (
    BENCH_BOUND_CONFIG,
    BENCH_FEATURE_CONFIG,
    BENCH_SEED,
    print_table,
)

PROBABILITY_THRESHOLD = 0.4
DISTANCE_THRESHOLD = 1
QUERY_SIZE = 4
NUM_QUERIES = 8
NUM_SHARDS = 4
NUM_WORKERS = 4
SPEEDUP_FLOOR = 1.5

SHARDED_SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=400)
)


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def run_sharded_comparison(bench_database, queries) -> dict:
    sequential_engine = ProbabilisticGraphDatabase(bench_database.graphs)
    sequential_engine.build_index(
        feature_config=BENCH_FEATURE_CONFIG,
        bound_config=BENCH_BOUND_CONFIG,
        rng=BENCH_SEED,
    )
    sharded_engine = ProbabilisticGraphDatabase(bench_database.graphs)
    sharded_engine.build_index(
        feature_config=BENCH_FEATURE_CONFIG,
        bound_config=BENCH_BOUND_CONFIG,
        rng=BENCH_SEED,
        num_shards=NUM_SHARDS,
        max_workers=NUM_WORKERS,
    )

    sequential_timer = Timer()
    with sequential_timer:
        sequential_results = sequential_engine.query_many(
            queries,
            PROBABILITY_THRESHOLD,
            DISTANCE_THRESHOLD,
            config=SHARDED_SEARCH_CONFIG,
            rng=BENCH_SEED,
        )

    # warm the pool (worker spawn + shard shipping) outside the timed region,
    # the way a serving deployment would run with long-lived workers
    sharded_engine.query_many(
        queries[:1],
        PROBABILITY_THRESHOLD,
        DISTANCE_THRESHOLD,
        config=SHARDED_SEARCH_CONFIG,
        rng=BENCH_SEED,
    )
    sharded_timer = Timer()
    with sharded_timer:
        sharded_results = sharded_engine.query_many(
            queries,
            PROBABILITY_THRESHOLD,
            DISTANCE_THRESHOLD,
            config=SHARDED_SEARCH_CONFIG,
            rng=BENCH_SEED,
        )
    sharded_engine.close()

    return {
        "num_queries": len(queries),
        "sequential_seconds": sequential_timer.elapsed,
        "sharded_seconds": sharded_timer.elapsed,
        "sequential_qps": len(queries) / max(sequential_timer.elapsed, 1e-9),
        "sharded_qps": len(queries) / max(sharded_timer.elapsed, 1e-9),
        "speedup": sequential_timer.elapsed / max(sharded_timer.elapsed, 1e-9),
        "sequential_results": sequential_results,
        "sharded_results": sharded_results,
    }


def test_sharded_throughput(benchmark, bench_database):
    workload = generate_query_workload(
        bench_database.graphs,
        query_size=QUERY_SIZE,
        num_queries=NUM_QUERIES,
        organisms=bench_database.organisms,
        rng=BENCH_SEED,
    )
    queries = [record.query for record in workload]
    report = benchmark.pedantic(
        run_sharded_comparison, args=(bench_database, queries), rounds=1, iterations=1
    )
    cores = usable_cores()
    print_table(
        f"Sharded throughput: sequential vs {NUM_SHARDS} shards x "
        f"{NUM_WORKERS} workers ({cores} usable cores)",
        ["executor", "queries", "seconds", "queries/s"],
        [
            [
                "sequential planner",
                report["num_queries"],
                f"{report['sequential_seconds']:.3f}",
                f"{report['sequential_qps']:.2f}",
            ],
            [
                f"sharded (K={NUM_SHARDS}, W={NUM_WORKERS})",
                report["num_queries"],
                f"{report['sharded_seconds']:.3f}",
                f"{report['sharded_qps']:.2f}",
            ],
        ],
    )
    print(f"speedup: {report['speedup']:.2f}x")

    # parity first: a sharded run that answers differently is wrong, not fast
    for sequential, sharded in zip(
        report["sequential_results"], report["sharded_results"]
    ):
        assert [
            (a.graph_id, a.probability, a.decided_by) for a in sequential.answers
        ] == [(a.graph_id, a.probability, a.decided_by) for a in sharded.answers]

    # benchmarks are never collected by a bare `pytest` run (bench_*.py), but
    # guard anyway: under xdist the pool shares its cores with other workers
    # and the measured ratio says nothing about the hardware
    under_xdist = "PYTEST_XDIST_WORKER" in os.environ
    if cores >= NUM_WORKERS and not under_xdist:
        assert report["speedup"] >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x at {NUM_WORKERS} workers on "
            f"{cores} cores, measured {report['speedup']:.2f}x"
        )
