"""Sharded fan-out: throughput, pool spin-up, and the zero-copy shard plane.

The sharding layer fans the three pipeline stages out over a process pool;
this benchmark measures what that costs and what it buys:

* **throughput** — ``query_many`` through K shards x W workers against the
  sequential planner, with answer-for-answer parity checked along the way
  (the sharded executor must be a pure speedup, never a different answer);
* **initializer payload** — what the pool initializer ships to each worker:
  O(1) :class:`ShardDescriptor` handles on the shared-memory plane vs the
  legacy pickled-shards payload that grows with the database;
* **pool spin-up** — wall-clock from no pool to every worker answering a
  probe, for both payload styles;
* **per-worker memory** — each worker's shard-attributable private bytes at
  spin-up (descriptors only; the dense arrays stay in the parent's shared
  segments) and the lazily materialized graph bytes after the workload.

The speedup assertion (>= 1.5x at 4 workers) only fires on a full run when
the hardware can express it: with fewer than 4 usable cores (or under
xdist) the benchmark still runs, verifies parity, and records the ratio.

Run as a script::

    python benchmarks/bench_sharded_throughput.py            # full run
    python benchmarks/bench_sharded_throughput.py --smoke    # CI mode

Each run appends one trajectory point to ``BENCH_sharding.json`` (``--out``
to relocate), so the perf history accumulates across commits.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import sys
import time
from pathlib import Path

# allow `python benchmarks/bench_sharded_throughput.py` from the repo root
# (CI) as well as pytest collection, where the root is already importable
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core import (
    ProbabilisticGraphDatabase,
    SearchConfig,
    ShardedPlanner,
    VerificationConfig,
)
from repro.datasets import PPIDatasetConfig, generate_ppi_database, generate_query_workload
from repro.utils.atomic_io import atomic_write_text
from repro.utils.timer import Timer

from benchmarks.conftest import (
    BENCH_BOUND_CONFIG,
    BENCH_DATASET_CONFIG,
    BENCH_FEATURE_CONFIG,
    BENCH_SEED,
    print_table,
)

PROBABILITY_THRESHOLD = 0.4
DISTANCE_THRESHOLD = 1
QUERY_SIZE = 4
NUM_SHARDS = 4
SPEEDUP_FLOOR = 1.5
# at spin-up a worker's shard-attributable private bytes are the pickled
# descriptors it received — they must stay a sliver of copying a shard
SPINUP_BYTES_CEILING_FRACTION = 0.2

SHARDED_SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=400)
)

FULL = {
    "dataset": BENCH_DATASET_CONFIG,
    "num_queries": 8,
    "num_workers": 4,
}

SMOKE = {
    "dataset": PPIDatasetConfig(
        num_graphs=12,
        num_families=2,
        vertices_per_graph=12,
        edges_per_graph=16,
        motif_vertices=4,
        motif_edges=4,
        mean_edge_probability=0.55,
        probability_spread=0.2,
    ),
    "num_queries": 4,
    "num_workers": 2,
}


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _worker_probe(delay: float) -> dict:
    """Runs inside a pool worker: memory and lazy-materialization counters.

    ``delay`` keeps each probe busy long enough that one lands on every
    worker instead of a single fast worker draining the whole batch.
    """
    time.sleep(delay)
    from repro.core import sharding

    materialized_bytes = 0
    materialized_graphs = 0
    for shard in sharding._WORKER_SHARDS.values():
        graphs = shard.graphs
        if hasattr(graphs, "materialized_bytes"):
            materialized_bytes += graphs.materialized_bytes()
            materialized_graphs += graphs.materialized_count()
    private_dirty_kb = None
    try:
        with open("/proc/self/smaps_rollup") as rollup:
            for line in rollup:
                if line.startswith("Private_Dirty:"):
                    private_dirty_kb = int(line.split()[1])
    except OSError:
        pass
    return {
        "pid": os.getpid(),
        "materialized_graph_bytes": materialized_bytes,
        "materialized_graphs": materialized_graphs,
        "private_dirty_kb": private_dirty_kb,
    }


def probe_workers(planner: ShardedPlanner, workers: int, delay: float = 0.25) -> list[dict]:
    """One probe result per live worker (deduplicated by pid)."""
    pool = planner._ensure_executor(workers)
    futures = [pool.submit(_worker_probe, delay) for _ in range(workers)]
    by_pid = {probe["pid"]: probe for probe in (f.result() for f in futures)}
    return list(by_pid.values())


def measure_spinup(database, workers: int, use_shared_memory: bool) -> dict:
    """Pool spin-up cost and the per-worker payload for one initializer style."""
    planner = ShardedPlanner.build(
        database.graphs,
        num_shards=NUM_SHARDS,
        feature_config=BENCH_FEATURE_CONFIG,
        bound_config=BENCH_BOUND_CONFIG,
        rng=BENCH_SEED,
        max_workers=workers,
    )
    planner.use_shared_memory = use_shared_memory
    try:
        payload_bytes = len(pickle.dumps(planner.initializer_payload()))
        spinup_timer = Timer()
        with spinup_timer:
            probes = probe_workers(planner, workers)
        shard_bytes = (
            planner.shard_plane.shard_bytes() if use_shared_memory else None
        )
    finally:
        planner.close()
    return {
        "payload_bytes": payload_bytes,
        "spinup_seconds": spinup_timer.elapsed,
        "workers_probed": len(probes),
        "shard_bytes": shard_bytes,
        "probes": probes,
    }


def run_sharded_comparison(database, queries, workers: int) -> dict:
    sequential_engine = ProbabilisticGraphDatabase(database.graphs)
    sequential_engine.build_index(
        feature_config=BENCH_FEATURE_CONFIG,
        bound_config=BENCH_BOUND_CONFIG,
        rng=BENCH_SEED,
    )
    sharded_engine = ProbabilisticGraphDatabase(database.graphs)
    sharded_engine.build_index(
        feature_config=BENCH_FEATURE_CONFIG,
        bound_config=BENCH_BOUND_CONFIG,
        rng=BENCH_SEED,
        num_shards=NUM_SHARDS,
        max_workers=workers,
    )

    sequential_timer = Timer()
    with sequential_timer:
        sequential_results = sequential_engine.query_many(
            queries,
            PROBABILITY_THRESHOLD,
            DISTANCE_THRESHOLD,
            config=SHARDED_SEARCH_CONFIG,
            rng=BENCH_SEED,
        )

    # warm the pool (worker spawn + segment attach) outside the timed region,
    # the way a serving deployment would run with long-lived workers
    sharded_engine.query_many(
        queries[:1],
        PROBABILITY_THRESHOLD,
        DISTANCE_THRESHOLD,
        config=SHARDED_SEARCH_CONFIG,
        rng=BENCH_SEED,
    )
    sharded_timer = Timer()
    with sharded_timer:
        sharded_results = sharded_engine.query_many(
            queries,
            PROBABILITY_THRESHOLD,
            DISTANCE_THRESHOLD,
            config=SHARDED_SEARCH_CONFIG,
            rng=BENCH_SEED,
        )
    # after the workload: how much private graph memory did lazy
    # materialization actually cost each worker?
    post_query_probes = probe_workers(sharded_engine.planner, workers)
    sharded_engine.close()

    # parity first: a sharded run that answers differently is wrong, not fast
    for sequential, sharded in zip(sequential_results, sharded_results):
        assert [
            (a.graph_id, a.probability, a.decided_by) for a in sequential.answers
        ] == [(a.graph_id, a.probability, a.decided_by) for a in sharded.answers]

    return {
        "num_queries": len(queries),
        "sequential_seconds": sequential_timer.elapsed,
        "sharded_seconds": sharded_timer.elapsed,
        "sequential_qps": len(queries) / max(sequential_timer.elapsed, 1e-9),
        "sharded_qps": len(queries) / max(sharded_timer.elapsed, 1e-9),
        "speedup": sequential_timer.elapsed / max(sharded_timer.elapsed, 1e-9),
        "post_query_probes": post_query_probes,
    }


def run_benchmark(profile: dict) -> dict:
    database = generate_ppi_database(profile["dataset"], rng=BENCH_SEED)
    workload = generate_query_workload(
        database.graphs,
        query_size=QUERY_SIZE,
        num_queries=profile["num_queries"],
        organisms=database.organisms,
        rng=BENCH_SEED,
    )
    queries = [record.query for record in workload]
    workers = profile["num_workers"]

    shm_spinup = measure_spinup(database, workers, use_shared_memory=True)
    legacy_spinup = measure_spinup(database, workers, use_shared_memory=False)
    throughput = run_sharded_comparison(database, queries, workers)

    one_shard_bytes = len(pickle.dumps(database.graphs)) // NUM_SHARDS
    return {
        "num_graphs": len(database.graphs),
        "num_shards": NUM_SHARDS,
        "num_workers": workers,
        "usable_cores": usable_cores(),
        **{k: v for k, v in throughput.items() if k != "post_query_probes"},
        "initializer_payload_bytes": shm_spinup["payload_bytes"],
        "legacy_payload_bytes": legacy_spinup["payload_bytes"],
        "payload_ratio": legacy_spinup["payload_bytes"]
        / max(shm_spinup["payload_bytes"], 1),
        "shard_plane_bytes": shm_spinup["shard_bytes"],
        "shm_spinup_seconds": shm_spinup["spinup_seconds"],
        "legacy_spinup_seconds": legacy_spinup["spinup_seconds"],
        "workers_probed": shm_spinup["workers_probed"],
        "spinup_worker_private_dirty_kb": [
            probe["private_dirty_kb"] for probe in shm_spinup["probes"]
        ],
        "post_query_materialized_graph_bytes": max(
            (
                probe["materialized_graph_bytes"]
                for probe in throughput["post_query_probes"]
            ),
            default=0,
        ),
        "post_query_worker_private_dirty_kb": [
            probe["private_dirty_kb"] for probe in throughput["post_query_probes"]
        ],
        "one_shard_copy_bytes": one_shard_bytes,
    }


def append_trajectory_point(path: Path, point: dict) -> None:
    """Append one run to the JSON trajectory (a list of run records)."""
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(point)
    atomic_write_text(path, json.dumps(history, indent=2) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small dataset, 2 workers, no speedup floor (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_sharding.json"),
        help="trajectory file to append this run's point to",
    )
    args = parser.parse_args()
    profile = SMOKE if args.smoke else FULL

    report = run_benchmark(profile)
    print_table(
        f"Sharded throughput: sequential vs {NUM_SHARDS} shards x "
        f"{report['num_workers']} workers ({report['usable_cores']} usable cores)",
        ["executor", "queries", "seconds", "queries/s"],
        [
            [
                "sequential planner",
                report["num_queries"],
                f"{report['sequential_seconds']:.3f}",
                f"{report['sequential_qps']:.2f}",
            ],
            [
                f"sharded (K={NUM_SHARDS}, W={report['num_workers']})",
                report["num_queries"],
                f"{report['sharded_seconds']:.3f}",
                f"{report['sharded_qps']:.2f}",
            ],
        ],
    )
    print(f"speedup: {report['speedup']:.2f}x")
    print_table(
        "Pool spin-up: shared-memory descriptors vs legacy pickled shards",
        ["initializer", "payload bytes", "spin-up seconds"],
        [
            [
                "shm descriptors",
                report["initializer_payload_bytes"],
                f"{report['shm_spinup_seconds']:.3f}",
            ],
            [
                "legacy shards",
                report["legacy_payload_bytes"],
                f"{report['legacy_spinup_seconds']:.3f}",
            ],
        ],
    )
    print(
        f"payload ratio: {report['payload_ratio']:.1f}x smaller; shard plane "
        f"{report['shard_plane_bytes']} B shared, worst worker materialized "
        f"{report['post_query_materialized_graph_bytes']} B of graphs lazily"
    )

    point = {
        "bench": "sharding",
        "mode": "smoke" if args.smoke else "full",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        **report,
    }
    append_trajectory_point(args.out, point)
    print(f"trajectory point appended to {args.out}")

    # the zero-copy contract holds at any scale, so it is asserted in smoke
    # runs too: descriptors must be far smaller than shipping the shards,
    # and an added worker must cost descriptors — not a shard copy
    assert report["initializer_payload_bytes"] < report["legacy_payload_bytes"] / 10, (
        f"descriptor payload {report['initializer_payload_bytes']} B is not "
        f"O(1)-small next to the legacy {report['legacy_payload_bytes']} B"
    )
    spinup_ceiling = SPINUP_BYTES_CEILING_FRACTION * report["one_shard_copy_bytes"]
    assert report["initializer_payload_bytes"] <= spinup_ceiling, (
        f"per-worker spin-up payload {report['initializer_payload_bytes']} B "
        f"exceeds {SPINUP_BYTES_CEILING_FRACTION:.0%} of one shard copy "
        f"({report['one_shard_copy_bytes']} B)"
    )
    under_xdist = "PYTEST_XDIST_WORKER" in os.environ
    if (
        not args.smoke
        and report["usable_cores"] >= report["num_workers"]
        and not under_xdist
    ):
        assert report["speedup"] >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x at {report['num_workers']} workers on "
            f"{report['usable_cores']} cores, measured {report['speedup']:.2f}x"
        )


if __name__ == "__main__":
    main()
