"""Top-k throughput: the tightening probability floor vs a threshold scan.

A user who wants "the k best matches" could run a permissive threshold
query (``ε → 0``, probabilistic pruning off so every structural candidate
is verified) and truncate the ranked answers.  ``query_top_k`` instead
verifies candidates in descending PMI upper-bound order and skips
everything whose upper bound falls below the running k-th best verified
probability — the same answers, strictly less verification work.  This
benchmark measures both on a synthetic PPI database, checks answer parity
against the truncated scan *and* the index-free exact-scan reference, and
reports wall time plus verified-candidate counts.

Unlike the other benchmarks this one builds its own database: the floor
only skips work when some candidates are *provably weaker* than the
running k-th best, so the database mixes a high-probability tier (the
graphs the answers come from) with a larger low-probability tier (same
skeleton families — they all pass the structural filter — but edge
probabilities far below the top answers' SSP, so their upper bounds fall
under the tightening floor).  Graphs stay small enough (≤ 20 uncertain
edges) for the exact SIP-bound method, whose tight ``usim`` columns are
what give the floor teeth.
"""

from __future__ import annotations

from repro.baselines.exact_scan import ExactScanBaseline, ExactScanConfig
from repro.core import ProbabilisticGraphDatabase, SearchConfig, VerificationConfig
from repro.datasets import PPIDatasetConfig, generate_ppi_database
from repro.pmi import BoundConfig, FeatureSelectionConfig
from repro.utils.timer import Timer

from benchmarks.conftest import BENCH_SEED, print_table

K = 2
DISTANCE_THRESHOLD = 1
# a threshold this small accepts anything with nonzero support: the scan
# verifies every candidate the structural filter passes
SCAN_EPSILON = 1e-9

HIGH_TIER_GRAPHS = 24
LOW_TIER_GRAPHS = 48
HIGH_TIER_EDGE_PROBABILITY = 0.9
LOW_TIER_EDGE_PROBABILITY = 0.15


def _tier_config(num_graphs: int, mean_edge_probability: float) -> PPIDatasetConfig:
    return PPIDatasetConfig(
        num_graphs=num_graphs,
        num_families=3,
        vertices_per_graph=8,
        edges_per_graph=9,
        motif_vertices=4,
        motif_edges=4,
        mean_edge_probability=mean_edge_probability,
        probability_spread=0.08,
    )


TOPK_FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.15, gamma=0.1, max_vertices=3, max_features=16
)
TOPK_BOUND_CONFIG = BoundConfig(method="exact")

# exact verification on purpose: the floor-skip rule compares the k-th best
# *verified* probability against usim, an upper bound on the *true* SSP, so
# the parity asserts below are unconditional only when verified values equal
# true values — with sampling they would rest on the seed keeping estimator
# noise below the tier gap
TOPK_SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="inclusion_exclusion")
)
# the scan must *verify* everything the structural filter passes — with
# probabilistic pruning on, a permissive ε accepts most graphs by their
# lsim lower bound without verification, which is a different (cheaper,
# less precise) answer list than a ranked top-k
SCAN_SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="inclusion_exclusion"),
    use_probabilistic_pruning=False,
)


def run_topk_comparison() -> dict:
    # same generator seed for both tiers: identical skeleton families (so
    # the structural filter passes both), divergent edge probabilities
    high = generate_ppi_database(
        _tier_config(HIGH_TIER_GRAPHS, HIGH_TIER_EDGE_PROBABILITY), rng=BENCH_SEED
    )
    low = generate_ppi_database(
        _tier_config(LOW_TIER_GRAPHS, LOW_TIER_EDGE_PROBABILITY), rng=BENCH_SEED
    )
    graphs = high.graphs + low.graphs
    # family motifs match every member of their family, in both tiers
    queries = list(high.family_motifs)
    engine = ProbabilisticGraphDatabase(graphs)
    engine.build_index(
        feature_config=TOPK_FEATURE_CONFIG,
        bound_config=TOPK_BOUND_CONFIG,
        rng=BENCH_SEED,
    )

    scan_timer = Timer()
    with scan_timer:
        scan_results = engine.query_many(
            queries,
            SCAN_EPSILON,
            DISTANCE_THRESHOLD,
            config=SCAN_SEARCH_CONFIG,
            rng=BENCH_SEED,
        )

    topk_timer = Timer()
    with topk_timer:
        topk_results = engine.query_top_k_many(
            queries,
            K,
            DISTANCE_THRESHOLD,
            config=TOPK_SEARCH_CONFIG,
            rng=BENCH_SEED,
        )

    reference = ExactScanBaseline(
        graphs,
        ExactScanConfig(
            method="inclusion_exclusion",
            verification=TOPK_SEARCH_CONFIG.verification,
        ),
    )
    reference_results = [
        reference.top_k(query, K, DISTANCE_THRESHOLD, rng=BENCH_SEED)
        for query in queries
    ]

    return {
        "num_queries": len(queries),
        "scan_seconds": scan_timer.elapsed,
        "topk_seconds": topk_timer.elapsed,
        "scan_verified": sum(r.statistics.verified for r in scan_results),
        "topk_verified": sum(r.statistics.verified for r in topk_results),
        "floor_skipped": sum(r.statistics.stages[-1].pruned for r in topk_results),
        "scan_results": scan_results,
        "topk_results": topk_results,
        "reference_results": reference_results,
    }


def test_topk_throughput(benchmark):
    report = benchmark.pedantic(run_topk_comparison, rounds=1, iterations=1)
    print_table(
        f"Top-{K} search vs threshold scan (ε={SCAN_EPSILON:g})",
        ["executor", "queries", "seconds", "verified candidates"],
        [
            [
                "threshold scan + truncate",
                report["num_queries"],
                f"{report['scan_seconds']:.3f}",
                report["scan_verified"],
            ],
            [
                f"query_top_k (k={K})",
                report["num_queries"],
                f"{report['topk_seconds']:.3f}",
                report["topk_verified"],
            ],
        ],
    )
    print(
        f"bound pruning + tightening floor skipped "
        f"{report['scan_verified'] - report['topk_verified']} verifications "
        f"({report['floor_skipped']} by the floor alone); "
        f"speedup {report['scan_seconds'] / max(report['topk_seconds'], 1e-9):.2f}x"
    )

    # parity first: top-k must be exactly the truncated permissive scan...
    for scan, topk in zip(report["scan_results"], report["topk_results"]):
        expected = [
            (a.graph_id, a.probability) for a in scan.answers[: len(topk.answers)]
        ]
        assert [(a.graph_id, a.probability) for a in topk.answers] == expected
    # ...and must agree with the index-free exact-scan reference
    for topk, reference in zip(report["topk_results"], report["reference_results"]):
        assert [(a.graph_id, a.probability) for a in topk.answers] == [
            (a.graph_id, a.probability) for a in reference.answers
        ]

    # the floor can only remove verification work, never add it
    assert report["topk_verified"] <= report["scan_verified"]
