"""Verification throughput: the vectorized batch kernel vs the scalar sampler.

The verification stage dominates query cost on any workload the filters
cannot decide, so this benchmark isolates it: one query, every database
graph as a candidate (what a verification-bound query looks like after the
cheap stages pass everything), identical per-graph rng streams, and the two
Karp-Luby implementations head to head:

* ``method="sampling_scalar"`` — the pre-kernel reference: one world at a
  time, Python dicts and ``Factor.condition`` per sample;
* ``method="sampling"`` — the batch kernel: events compiled to edge-index
  arrays, the whole ``S x E`` sample matrix drawn per candidate in one shot,
  coverage tested with one boolean matrix product.

Because both sides consume ``derive_rng(root, VERIFY_STREAM, graph_id)``
streams, the comparison is apples-to-apples work-wise; the estimates differ
(different canonical draw orders, same distribution) and the benchmark
cross-checks them statistically.  Determinism is asserted exactly: a second
batch pass must reproduce the first byte-for-byte.

Run as a script::

    python benchmarks/bench_verification.py            # full run, asserts >= 3x
    python benchmarks/bench_verification.py --smoke    # small, CI-friendly, no floor

Each run appends one trajectory point to ``BENCH_verification.json``
(``--out`` to relocate), so the perf history accumulates across commits.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

# allow `python benchmarks/bench_verification.py` from the repo root (CI) as
# well as pytest collection, where the repo root is already importable
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core import VerificationConfig, Verifier
from repro.core.relaxation import relax_query
from repro.datasets import PPIDatasetConfig, generate_ppi_database, generate_query_workload
from repro.utils.atomic_io import atomic_write_text
from repro.utils.rng import VERIFY_STREAM, derive_rng
from repro.utils.timer import Timer

from benchmarks.conftest import BENCH_SEED, print_table

DISTANCE_THRESHOLD = 1
QUERY_SIZE = 4
SPEEDUP_FLOOR = 3.0
ROOT = BENCH_SEED

FULL = {
    "dataset": PPIDatasetConfig(
        num_graphs=24,
        num_families=4,
        vertices_per_graph=16,
        edges_per_graph=22,
        motif_vertices=4,
        motif_edges=5,
        mean_edge_probability=0.55,
        probability_spread=0.2,
    ),
    "num_samples": 640,
    "repeats": 3,
}

SMOKE = {
    "dataset": PPIDatasetConfig(
        num_graphs=8,
        num_families=2,
        vertices_per_graph=12,
        edges_per_graph=16,
        motif_vertices=4,
        motif_edges=4,
        mean_edge_probability=0.55,
        probability_spread=0.2,
    ),
    "num_samples": 160,
    "repeats": 1,
}


def build_workload(profile: dict):
    dataset = generate_ppi_database(profile["dataset"], rng=BENCH_SEED)
    workload = generate_query_workload(
        dataset.graphs,
        query_size=QUERY_SIZE,
        num_queries=1,
        organisms=dataset.organisms,
        rng=BENCH_SEED,
    )
    return dataset.graphs, workload.queries()[0]


def verify_all(verifier: Verifier, method: str, query, graphs, relaxed) -> list[float]:
    """One verification-stage pass over every candidate, per-graph streams."""
    rngs = [
        derive_rng(ROOT, VERIFY_STREAM, graph_id) for graph_id in range(len(graphs))
    ]
    return verifier.verify_block(
        query,
        graphs,
        DISTANCE_THRESHOLD,
        relaxed_queries=relaxed,
        method=method,
        rngs=rngs,
    )


def run_comparison(profile: dict) -> dict:
    graphs, query = build_workload(profile)
    config = VerificationConfig(num_samples=profile["num_samples"])
    verifier = Verifier(config)
    relaxed = relax_query(query, DISTANCE_THRESHOLD, verifier.relaxation)

    # warm both paths (embedding search caches nothing, but the kernel
    # compiles each graph's factors once — include that cost in the timed
    # batch pass below by warming on a separate Verifier-free call ordering:
    # scalar first, then batch, then timed repeats of each)
    scalar_estimates = verify_all(verifier, "sampling_scalar", query, graphs, relaxed)
    batch_estimates = verify_all(verifier, "sampling", query, graphs, relaxed)

    scalar_timer = Timer()
    with scalar_timer:
        for _ in range(profile["repeats"]):
            scalar_repeat = verify_all(
                verifier, "sampling_scalar", query, graphs, relaxed
            )
    batch_timer = Timer()
    with batch_timer:
        for _ in range(profile["repeats"]):
            batch_repeat = verify_all(verifier, "sampling", query, graphs, relaxed)

    # determinism: same streams, same answers, byte for byte
    assert scalar_repeat == scalar_estimates, "scalar estimates are not reproducible"
    assert batch_repeat == batch_estimates, "batch estimates are not reproducible"
    # statistical sanity: both estimate the same per-graph SSP
    worst_gap = max(
        abs(scalar - batched)
        for scalar, batched in zip(scalar_estimates, batch_estimates)
    )
    scalar_seconds = scalar_timer.elapsed / profile["repeats"]
    batch_seconds = batch_timer.elapsed / profile["repeats"]
    return {
        "num_candidates": len(graphs),
        "num_samples": profile["num_samples"],
        "repeats": profile["repeats"],
        "scalar_seconds": scalar_seconds,
        "batch_seconds": batch_seconds,
        "speedup": scalar_seconds / max(batch_seconds, 1e-9),
        "scalar_candidates_per_second": len(graphs) / max(scalar_seconds, 1e-9),
        "batch_candidates_per_second": len(graphs) / max(batch_seconds, 1e-9),
        "worst_estimate_gap": worst_gap,
    }


def append_trajectory_point(path: Path, point: dict) -> None:
    """Append one run to the JSON trajectory (a list of run records)."""
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(point)
    atomic_write_text(path, json.dumps(history, indent=2) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small dataset, one repeat, no speedup floor (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_verification.json"),
        help="trajectory file to append this run's point to",
    )
    args = parser.parse_args()
    profile = SMOKE if args.smoke else FULL

    report = run_comparison(profile)
    print_table(
        "Verification throughput: scalar Karp-Luby vs batch kernel "
        f"({report['num_candidates']} candidates x {report['num_samples']} samples)",
        ["method", "seconds/pass", "candidates/s"],
        [
            [
                "sampling_scalar (reference)",
                f"{report['scalar_seconds']:.3f}",
                f"{report['scalar_candidates_per_second']:.1f}",
            ],
            [
                "sampling (batch kernel)",
                f"{report['batch_seconds']:.3f}",
                f"{report['batch_candidates_per_second']:.1f}",
            ],
        ],
    )
    print(f"speedup: {report['speedup']:.2f}x  "
          f"(worst scalar-vs-batch estimate gap {report['worst_estimate_gap']:.3f})")

    point = {
        "bench": "verification",
        "mode": "smoke" if args.smoke else "full",
        "unix_time": int(time.time()),
        "python": platform.python_version(),
        **report,
    }
    append_trajectory_point(args.out, point)
    print(f"trajectory point appended to {args.out}")

    tolerance = 0.2 if args.smoke else 0.1
    assert report["worst_estimate_gap"] <= tolerance, (
        f"scalar and batch estimates disagree by {report['worst_estimate_gap']:.3f} "
        f"(> {tolerance}); the kernel is computing a different quantity"
    )
    if not args.smoke:
        assert report["speedup"] >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x verification speedup, "
            f"measured {report['speedup']:.2f}x"
        )


if __name__ == "__main__":
    main()
