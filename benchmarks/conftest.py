"""Shared infrastructure for the benchmark harness.

Each ``bench_figXX_*.py`` module regenerates one exhibit of the paper's
evaluation section (Figures 9-14) on the scaled-down synthetic STRING/PPI
substitute, prints the same series the paper plots, and exposes the heavy
computation to ``pytest-benchmark`` so wall-clock numbers are tracked.

The dataset and index here are intentionally much smaller than the paper's
(5K graphs of ~385 vertices): EXPERIMENTS.md records the scaling and compares
the *shapes* of the curves, not absolute seconds.
"""

from __future__ import annotations

import sys

import pytest

# Benchmarks run as scripts (python benchmarks/bench_*.py) as often as under
# pytest; skip writing bytecode so ad-hoc runs don't litter benchmarks/ and
# examples/ with __pycache__ directories (they are .gitignore'd too, but the
# cleanest cache is the one never written — import-time cost here is noise
# next to the SIP-bound computations being measured).
sys.dont_write_bytecode = True

from repro.core import ProbabilisticGraphDatabase
from repro.datasets import PPIDatasetConfig, generate_ppi_database, generate_query_workload
from repro.pmi import BoundConfig, FeatureSelectionConfig

BENCH_SEED = 20120901

BENCH_DATASET_CONFIG = PPIDatasetConfig(
    num_graphs=24,
    num_families=4,
    vertices_per_graph=16,
    edges_per_graph=22,
    motif_vertices=4,
    motif_edges=5,
    mean_edge_probability=0.55,
    probability_spread=0.2,
)

BENCH_FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.15, gamma=0.1, max_vertices=3, max_features=16
)

BENCH_BOUND_CONFIG = BoundConfig(num_samples=120)


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print one figure's series as an aligned text table."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0)) for i in range(len(header))]
    print("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))


@pytest.fixture(scope="session")
def bench_database():
    """The synthetic PPI database shared by every figure."""
    return generate_ppi_database(BENCH_DATASET_CONFIG, rng=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_engine(bench_database):
    """A fully indexed search engine over the benchmark database."""
    engine = ProbabilisticGraphDatabase(bench_database.graphs)
    engine.build_index(
        feature_config=BENCH_FEATURE_CONFIG,
        bound_config=BENCH_BOUND_CONFIG,
        rng=BENCH_SEED,
    )
    return engine


@pytest.fixture(scope="session")
def bench_workload(bench_database):
    """The default query workload (paper default: size-150 queries; scaled to 5)."""
    return generate_query_workload(
        bench_database.graphs,
        query_size=5,
        num_queries=4,
        organisms=bench_database.organisms,
        rng=BENCH_SEED,
    )
