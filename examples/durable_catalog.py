"""Durable catalog walkthrough: write-ahead logging and crash recovery.

Run with:  python examples/durable_catalog.py

Demonstrates the storage lifecycle on top of the mutable catalog:

1. build a `GraphCatalog` straight into a directory (snapshot + WAL),
2. mutate it — every operation is fsync'd to the log *before* it applies,
3. simulate a crash by abandoning the object and tearing the log's final
   record, then `GraphCatalog.open` the directory: the torn tail is
   truncated, the intact prefix replays, and answers match a from-scratch
   build over the recovered database,
4. `compact()`: the storage rolls to a fresh generation (new snapshot,
   empty log) behind an atomic `CURRENT` swap — answers do not move.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import GraphCatalog, QueryPlanner, SearchConfig, VerificationConfig
from repro.core.wal import wal_filename
from repro.datasets import PPIDatasetConfig, generate_ppi_database, generate_query_workload
from repro.pmi import BoundConfig, FeatureSelectionConfig, ProbabilisticMatrixIndex
from repro.structural.feature_index import StructuralFeatureIndex

FEATURE_CONFIG = FeatureSelectionConfig(max_vertices=3, max_features=12)
BOUND_CONFIG = BoundConfig(num_samples=100)
SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=300)
)


def show(label: str, result) -> None:
    print(f"{label}: {[(a.graph_id, round(a.probability, 3)) for a in result.answers]}")


def rebuild(catalog: GraphCatalog) -> QueryPlanner:
    """A from-scratch dense build over the catalog's equivalent database."""
    items = catalog.live_items()
    graphs = [graph for _, graph in items]
    ids = [external_id for external_id, _ in items]
    pmi = ProbabilisticMatrixIndex(
        feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
    ).build(graphs, features=catalog.features, rng=catalog.build_root, graph_ids=ids)
    structural = StructuralFeatureIndex(
        embedding_limit=FEATURE_CONFIG.embedding_limit
    ).build([graph.skeleton for graph in graphs], catalog.features)
    return QueryPlanner(graphs, pmi, structural, graph_ids=np.asarray(ids, dtype=np.int64))


def main() -> None:
    dataset = generate_ppi_database(
        PPIDatasetConfig(num_graphs=10, vertices_per_graph=12, edges_per_graph=15), rng=3
    )
    arrivals = generate_ppi_database(
        PPIDatasetConfig(num_graphs=4, vertices_per_graph=12, edges_per_graph=15), rng=8
    )
    query = generate_query_workload(
        dataset.graphs, query_size=3, num_queries=1, rng=3
    ).queries()[0]
    directory = Path(tempfile.mkdtemp()) / "catalog"

    # 1. Build straight into a directory: snapshot generation 0 + an empty
    #    write-ahead log, committed by an atomic CURRENT pointer.
    catalog = GraphCatalog.build(
        dataset.graphs,
        feature_config=FEATURE_CONFIG,
        bound_config=BOUND_CONFIG,
        rng=11,
        num_shards=2,
        directory=directory,
    )
    print(f"built durable catalog at {directory}")
    print(f"  layout: {sorted(p.name for p in directory.iterdir())}")

    # 2. Mutate: each operation is one checksummed, fsync'd WAL record,
    #    written BEFORE the in-memory change applies.
    for graph in arrivals.graphs[:2]:
        catalog.add_graph(graph)
    catalog.remove_graph(1)
    catalog.update_graph(4, arrivals.graphs[2])
    print(f"  after 4 mutations: generation {catalog.generation}, "
          f"{catalog.wal_records} WAL records")

    # 3. Crash: abandon the live object (no close, nothing flushed beyond
    #    what the WAL already guaranteed) and tear the log's final record,
    #    as a kill -9 mid-append would.
    wal_path = directory / wal_filename(catalog.generation)
    # repro: allow[IO001] -- deliberately simulates the torn write a crash leaves
    with open(wal_path, "ab") as handle:
        handle.write(b'deadbeef {"op":"add","torn mid-')
    del catalog

    recovered = GraphCatalog.open(directory)
    print(f"\nrecovered: {recovered!r}")
    print(f"  {recovered.wal_records} WAL records replayed (torn tail truncated)")
    answers = recovered.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=5)
    show("recovered answers", answers)

    # ... and they are byte-identical to a from-scratch build over the
    # recovered database — the recovery invariant.
    reference = rebuild(recovered).execute(query, 0.2, 1, config=SEARCH_CONFIG, rng=5)
    identical = [(a.graph_id, a.probability) for a in answers.answers] == [
        (a.graph_id, a.probability) for a in reference.answers
    ]
    print(f"byte-identical to from-scratch rebuild: {identical}")
    assert identical

    # 4. Compact: folds deltas AND rolls the storage to generation 1 —
    #    fresh snapshot, empty log, old generation retired after the
    #    atomic CURRENT swap.  Answers cannot move.
    recovered.compact()
    print(f"\nafter compact: generation {recovered.generation}, "
          f"layout {sorted(p.name for p in directory.iterdir())}")
    compacted = recovered.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=5)
    assert [(a.graph_id, a.probability) for a in compacted.answers] == [
        (a.graph_id, a.probability) for a in answers.answers
    ]
    print("compaction rolled the storage, not the answers — as designed")
    recovered.close()


if __name__ == "__main__":
    main()
