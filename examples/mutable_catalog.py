"""Mutable catalog walkthrough: live mutations over an immutable base index.

Run with:  python examples/mutable_catalog.py

Demonstrates the full delta/tombstone/compaction lifecycle:

1. build a `GraphCatalog` over an initial database (2 shards),
2. add new graphs (routed to the smallest shard), remove and update others,
3. show that answers are byte-identical to a from-scratch rebuild of the
   equivalent database — the catalog's core guarantee,
4. compact: deltas fold into fresh base matrices, shards rebalance, and the
   answers (provably) do not move.
"""

from __future__ import annotations

import numpy as np

from repro import GraphCatalog, QueryPlanner, SearchConfig, VerificationConfig
from repro.datasets import PPIDatasetConfig, generate_ppi_database, generate_query_workload
from repro.pmi import BoundConfig, FeatureSelectionConfig, ProbabilisticMatrixIndex
from repro.structural.feature_index import StructuralFeatureIndex

FEATURE_CONFIG = FeatureSelectionConfig(max_vertices=3, max_features=12)
BOUND_CONFIG = BoundConfig(num_samples=100)
SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=300)
)


def show(label: str, result) -> None:
    print(f"{label}: {[(a.graph_id, round(a.probability, 3)) for a in result.answers]}")


def main() -> None:
    dataset = generate_ppi_database(
        PPIDatasetConfig(num_graphs=10, vertices_per_graph=12, edges_per_graph=15), rng=3
    )
    arrivals = generate_ppi_database(
        PPIDatasetConfig(num_graphs=4, vertices_per_graph=12, edges_per_graph=15), rng=8
    )
    query = generate_query_workload(
        dataset.graphs, query_size=3, num_queries=1, rng=3
    ).queries()[0]

    # 1. Build: external ids 0..9, two shards of five graphs each.
    catalog = GraphCatalog.build(
        dataset.graphs,
        feature_config=FEATURE_CONFIG,
        bound_config=BOUND_CONFIG,
        rng=11,
        num_shards=2,
    )
    print(f"built: {catalog!r}, shard sizes {catalog.shard_live_counts()}")
    show("initial answers", catalog.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=5))

    # 2. Mutate: arrivals route to the smallest shard; removals tombstone;
    #    updates keep their stable external id.
    added = [catalog.add_graph(graph) for graph in arrivals.graphs[:3]]
    catalog.remove_graph(1)
    catalog.update_graph(4, arrivals.graphs[3])
    print(f"\nafter mutations: {catalog!r}")
    print(f"  new external ids {added}, shard sizes {catalog.shard_live_counts()}")
    mutated = catalog.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=5)
    show("mutated answers", mutated)

    # 3. The guarantee: a from-scratch dense build over the equivalent
    #    database (same id -> graph mapping, same features, same root)
    #    answers byte-identically — probabilities, ranks, and counters.
    items = catalog.live_items()
    graphs = [graph for _, graph in items]
    ids = [external_id for external_id, _ in items]
    pmi = ProbabilisticMatrixIndex(
        feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
    ).build(graphs, features=catalog.features, rng=catalog.build_root, graph_ids=ids)
    structural = StructuralFeatureIndex(
        embedding_limit=FEATURE_CONFIG.embedding_limit
    ).build([graph.skeleton for graph in graphs], catalog.features)
    rebuilt = QueryPlanner(
        graphs, pmi, structural, graph_ids=np.asarray(ids, dtype=np.int64)
    ).execute(query, 0.2, 1, config=SEARCH_CONFIG, rng=5)
    identical = [(a.graph_id, a.probability) for a in mutated.answers] == [
        (a.graph_id, a.probability) for a in rebuilt.answers
    ]
    print(f"byte-identical to from-scratch rebuild: {identical}")
    assert identical

    # 4. Compact: deltas fold into fresh base matrices and shards rebalance;
    #    by the stable-id contract the answers cannot move.
    catalog.compact()
    print(f"\nafter compact: {catalog!r}, shard sizes {catalog.shard_live_counts()}")
    compacted = catalog.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=5)
    show("compacted answers", compacted)
    assert [(a.graph_id, a.probability) for a in compacted.answers] == [
        (a.graph_id, a.probability) for a in mutated.answers
    ]
    print("compaction changed storage, not answers — as designed")
    catalog.close()


if __name__ == "__main__":
    main()
