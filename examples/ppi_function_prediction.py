"""PPI scenario: find the organisms whose interaction networks probably
contain a functional module (the paper's motivating bioinformatics use case).

A "functional module" is a small labeled interaction pattern.  Because
interaction edges are uncertain and correlated, the question is probabilistic:
*which networks contain the module with probability at least ε, allowing δ
missing interactions?*  The example also contrasts the correlated model (COR)
with the classical independent-edge model (IND) to show how ignoring
correlations changes the answer set — the comparison behind Figure 14.

Run with:  python examples/ppi_function_prediction.py
"""

from __future__ import annotations

from repro import ProbabilisticGraphDatabase, SearchConfig, VerificationConfig
from repro.baselines import database_to_independent
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.pmi import BoundConfig, FeatureSelectionConfig

PROBABILITY_THRESHOLD = 0.35
DISTANCE_THRESHOLD = 1


def build_engine(graphs, seed):
    engine = ProbabilisticGraphDatabase(graphs)
    engine.build_index(
        feature_config=FeatureSelectionConfig(max_vertices=3, max_features=14),
        bound_config=BoundConfig(num_samples=100),
        rng=seed,
    )
    return engine


def main() -> None:
    dataset = generate_ppi_database(
        PPIDatasetConfig(
            num_graphs=16,
            num_families=4,
            vertices_per_graph=15,
            edges_per_graph=20,
            # confident interactions: keeps the module's similarity
            # probability comfortably above the query threshold in the
            # networks that do contain it
            mean_edge_probability=0.7,
        ),
        rng=11,
    )
    # The "functional module" query: a real sub-network extracted from one
    # organism of family 0 — does it also occur in the other family members?
    source_id = dataset.graphs_of_organism(0)[0]
    module = extract_query(dataset.graphs[source_id].skeleton, 4, rng=11)
    print(f"functional module: {module.num_vertices} proteins, {module.num_edges} interactions")
    print(f"extracted from graph {source_id} (organism family 0)\n")

    config = SearchConfig(verification=VerificationConfig(method="sampling", num_samples=600))

    correlated = build_engine(dataset.graphs, seed=11)
    cor_result = correlated.query(
        module, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=config, rng=11
    )

    independent = build_engine(database_to_independent(dataset.graphs), seed=11)
    ind_result = independent.query(
        module, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=config, rng=11
    )

    def describe(name, result):
        print(f"{name}: {len(result.answers)} networks probably contain the module")
        for answer in result.answers:
            family = dataset.organism_of(answer.graph_id)
            marker = "same family" if family == 0 else f"family {family}"
            print(f"  graph {answer.graph_id:3d}  SSP ≈ {answer.probability:.3f}  ({marker})")
        print()

    describe("correlated model (COR)", cor_result)
    describe("independent model (IND)", ind_result)

    cor_same_family = sum(
        1 for a in cor_result.answers if dataset.organism_of(a.graph_id) == 0
    )
    ind_same_family = sum(
        1 for a in ind_result.answers if dataset.organism_of(a.graph_id) == 0
    )
    print(f"same-family hits — COR: {cor_same_family}, IND: {ind_same_family}")
    print("(the correlated model is what the paper argues matches PPI biology)")


if __name__ == "__main__":
    main()
