"""Query-service walkthrough: an always-on server over a live catalog.

Run with:  python examples/query_service.py

Demonstrates the full serving lifecycle:

1. build a `GraphCatalog` and stand up a `QueryService` on it — an asyncio
   front end that coalesces concurrent requests into `query_many`
   micro-batches without changing a single answer byte,
2. fire concurrent seeded queries from many client coroutines (in-process
   and over the NDJSON TCP transport) and show they match sequential
   library-mode answers exactly,
3. repeat a seeded query to hit the answer cache, then mutate the catalog
   *through the service* and show the cache invalidates (the catalog's
   mutation generation is part of every cache key),
4. overload a tiny admission queue and miss a deadline to show the typed
   error codes clients can branch on,
5. drain gracefully: queued work completes, new work is refused.
"""

from __future__ import annotations

import asyncio

from repro import GraphCatalog, SearchConfig, VerificationConfig
from repro.datasets import PPIDatasetConfig, generate_ppi_database, generate_query_workload
from repro.exceptions import ServiceError
from repro.pmi import BoundConfig, FeatureSelectionConfig
from repro.service import QueryService, ServiceClient, ServiceConfig, TcpServiceClient

FEATURE_CONFIG = FeatureSelectionConfig(max_vertices=3, max_features=12)
BOUND_CONFIG = BoundConfig(num_samples=100)
SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=300)
)


def show(label: str, result) -> None:
    print(f"{label}: {[(a.graph_id, round(a.probability, 3)) for a in result.answers]}")


async def main() -> None:
    dataset = generate_ppi_database(
        PPIDatasetConfig(num_graphs=10, vertices_per_graph=12, edges_per_graph=15), rng=3
    )
    arrivals = generate_ppi_database(
        PPIDatasetConfig(num_graphs=2, vertices_per_graph=12, edges_per_graph=15), rng=8
    )
    queries = generate_query_workload(
        dataset.graphs, query_size=3, num_queries=3, rng=3
    ).queries()

    catalog = GraphCatalog.build(
        dataset.graphs, feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=3
    )
    # A twin queried sequentially in library mode: the parity reference.
    twin = GraphCatalog.build(
        dataset.graphs, feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=3
    )

    # 1. Stand the service up.  batch_window is how long the dispatcher
    # lingers to let concurrent requests coalesce into one backend call.
    config = ServiceConfig(batch_window=0.005, max_batch_size=16, search_config=SEARCH_CONFIG)
    async with QueryService(catalog, config) as service:
        client = ServiceClient(service)

        # 2. Concurrent seeded queries — answers are byte-identical to
        # sequential library-mode calls with the same seeds, no matter how
        # the dispatcher grouped them into micro-batches.
        results = await asyncio.gather(
            *[client.query(query, 0.4, 1, rng=100 + i) for i, query in enumerate(queries)]
        )
        for i, (query, result) in enumerate(zip(queries, results)):
            expected = twin.query(query, 0.4, 1, config=SEARCH_CONFIG, rng=100 + i)
            assert [(a.graph_id, a.probability) for a in result.answers] == [
                (a.graph_id, a.probability) for a in expected.answers
            ]
            show(f"query {i} (service == library)", result)
        stats = await client.stats()
        print(
            f"dispatcher formed {stats['counters']['batches']} micro-batches, "
            f"mean size {stats['batch']['mean_size']}"
        )

        # ... the same bytes flow over TCP (NDJSON, one frame per line).
        host, port = await service.serve_tcp()
        tcp = await TcpServiceClient().connect(host, port)
        over_the_wire = await tcp.query(queries[0], 0.4, 1, rng=100)
        assert [(a.graph_id, a.probability) for a in over_the_wire.answers] == [
            (a.graph_id, a.probability) for a in results[0].answers
        ]
        print(f"TCP client on port {port} got the identical answer bytes")
        await tcp.close()

        # 3. The answer cache: a repeated seeded request is a hit; routing a
        # mutation through the service bumps the catalog generation, which
        # both invalidates the cache and re-keys every future lookup.
        await client.query(queries[0], 0.4, 1, rng=100)
        print(f"repeat of query 0: cached={client.last_response['cached']}")
        added = await client.add_graph(arrivals.graphs[0])
        print(f"added graph -> external id {added['external_id']}, generation {added['generation']}")
        fresh = await client.query(queries[0], 0.4, 1, rng=100)
        print(f"after mutation: cached={client.last_response['cached']}")
        twin.add_graph(arrivals.graphs[0])
        expected = twin.query(queries[0], 0.4, 1, config=SEARCH_CONFIG, rng=100)
        assert [(a.graph_id, a.probability) for a in fresh.answers] == [
            (a.graph_id, a.probability) for a in expected.answers
        ]

        # 4. Typed failures: deadlines and admission control.
        try:
            await client.query(queries[1], 0.4, 1, rng=101, deadline=0.000001)
        except ServiceError as error:
            print(f"hopeless deadline -> {error.code}")
        health = await client.health()
        print(f"health: {health['status']}, {health['live_graphs']} live graphs")

    # 5. Leaving the `async with` drained the service: queued work finished,
    # and anything submitted now is refused with a typed code.
    try:
        await ServiceClient(service).query(queries[0], 0.4, 1, rng=100)
    except ServiceError as error:
        print(f"after drain -> {error.code}")

    catalog.close()
    twin.close()


if __name__ == "__main__":
    asyncio.run(main())
