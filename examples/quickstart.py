"""Quickstart: index a small probabilistic graph database, run a threshold
query, a top-k query, and a mutation through the catalog layer.

Run with:  python examples/quickstart.py

Every step is seeded, so the printed output is reproducible; the expected
values are documented in the comments next to each step and *asserted* at
the bottom of each step, so the CI run of this file fails if a documented
value ever drifts.
"""

from __future__ import annotations

from repro import GraphCatalog, ProbabilisticGraphDatabase, SearchConfig, VerificationConfig
from repro.datasets import PPIDatasetConfig, generate_ppi_database, generate_query_workload
from repro.pmi import BoundConfig, FeatureSelectionConfig


def main() -> None:
    # 1. Generate a small synthetic probabilistic graph database (a stand-in
    #    for the STRING protein-interaction data used in the paper).
    #    Expected: "database: 12 probabilistic graphs", average edge
    #    probability ~0.469.
    dataset = generate_ppi_database(
        PPIDatasetConfig(num_graphs=12, vertices_per_graph=14, edges_per_graph=18), rng=7
    )
    print(f"database: {len(dataset.graphs)} probabilistic graphs")
    average = sum(g.average_edge_probability() for g in dataset.graphs) / len(dataset.graphs)
    print(f"average edge probability: {average:.3f}")
    assert len(dataset.graphs) == 12 and round(average, 3) == 0.469

    # 2. Build the index: frequent/discriminative features + the PMI matrix of
    #    subgraph-isomorphism-probability bounds.
    #    Expected summary: database_size=12, num_features=16,
    #    non_empty_cells=62 (build_seconds/index_bytes vary by machine).
    engine = ProbabilisticGraphDatabase(dataset.graphs)
    engine.build_index(
        feature_config=FeatureSelectionConfig(max_vertices=3, max_features=16),
        bound_config=BoundConfig(num_samples=120),
        rng=7,
    )
    summary = engine.pmi.summary()
    print("index summary:", summary)
    assert summary["database_size"] == 12 and summary["num_features"] == 16
    assert summary["non_empty_cells"] == 62

    # 3. Extract a query workload and run a threshold query: return every
    #    graph whose probability of containing the query within distance 1
    #    is at least 0.3.
    #    Expected: 1 answer — graph 5 (ppi-0005) with SSP ≈ 0.552, decided by
    #    verification; the structural filter prunes 11 of 12 candidates.
    #    (The estimate is the batch verification kernel's: seeded runs are
    #    byte-reproducible, but the kernel's canonical draw order differs
    #    from the retired scalar sampler's, so the value moved when the
    #    kernel landed.)
    workload = generate_query_workload(dataset.graphs, query_size=3, num_queries=1, rng=7)
    query = workload.queries()[0]
    print(f"\nquery: {query.num_vertices} vertices, {query.num_edges} edges")

    config = SearchConfig(verification=VerificationConfig(method="sampling", num_samples=500))
    result = engine.query(
        query, probability_threshold=0.3, distance_threshold=1, config=config, rng=7
    )

    print(f"\nanswers ({len(result.answers)}):")
    for answer in result.answers:
        print(f"  graph {answer.graph_id:3d} ({answer.graph_name})  "
              f"SSP ≈ {answer.probability:.3f}  [{answer.decided_by}]")
    print("\npipeline statistics:")
    for key, value in result.statistics.as_dict().items():
        print(f"  {key}: {value}")
    assert [(a.graph_id, round(a.probability, 3)) for a in result.answers] == [(5, 0.552)]
    assert result.statistics.stages[0].pruned == 11  # structural filter, 12 examined

    # 4. The same engine answers top-k queries: the k most probable matches,
    #    best first (no threshold to guess).
    #    Expected: top-2 answers led by graph 5 with SSP ≈ 0.552.
    top = engine.query_top_k(query, k=2, distance_threshold=1, config=config, rng=7)
    print(f"\ntop-2 answers: {[(a.graph_id, round(a.probability, 3)) for a in top.answers]}")
    assert top.answers and top.answers[0].graph_id == 5
    assert round(top.answers[0].probability, 3) == 0.552

    # 5. Need mutations?  Adopt the built index as a mutable GraphCatalog:
    #    add/remove/update graphs without rebuilding, compact when convenient.
    #    Answers stay byte-identical to a from-scratch rebuild (see
    #    ARCHITECTURE.md, "The mutable catalog").
    #    Expected: live counts 12 -> 11 after the removal, and the removed
    #    graph id 5 disappears from the re-run answers.
    catalog = engine.to_catalog()
    catalog.remove_graph(5)
    print(f"\ncatalog after remove_graph(5): {catalog.num_live} live graphs")
    rerun = catalog.query(
        query, probability_threshold=0.3, distance_threshold=1, config=config, rng=7
    )
    print(f"re-run answers: {[(a.graph_id, round(a.probability, 3)) for a in rerun.answers]}")
    assert catalog.num_live == 11
    assert 5 not in {answer.graph_id for answer in rerun.answers}


if __name__ == "__main__":
    main()
