"""Quickstart: index a small probabilistic graph database and run a query.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ProbabilisticGraphDatabase, SearchConfig, VerificationConfig
from repro.datasets import PPIDatasetConfig, generate_ppi_database, generate_query_workload
from repro.pmi import BoundConfig, FeatureSelectionConfig


def main() -> None:
    # 1. Generate a small synthetic probabilistic graph database (a stand-in
    #    for the STRING protein-interaction data used in the paper).
    dataset = generate_ppi_database(
        PPIDatasetConfig(num_graphs=12, vertices_per_graph=14, edges_per_graph=18), rng=7
    )
    print(f"database: {len(dataset.graphs)} probabilistic graphs")
    print(f"average edge probability: "
          f"{sum(g.average_edge_probability() for g in dataset.graphs) / len(dataset.graphs):.3f}")

    # 2. Build the index: frequent/discriminative features + the PMI matrix of
    #    subgraph-isomorphism-probability bounds.
    engine = ProbabilisticGraphDatabase(dataset.graphs)
    engine.build_index(
        feature_config=FeatureSelectionConfig(max_vertices=3, max_features=16),
        bound_config=BoundConfig(num_samples=120),
        rng=7,
    )
    print("index summary:", engine.pmi.summary())

    # 3. Extract a query workload and run a threshold query: return every
    #    graph whose probability of containing the query within distance 1
    #    is at least 0.3.
    workload = generate_query_workload(dataset.graphs, query_size=3, num_queries=1, rng=7)
    query = workload.queries()[0]
    print(f"\nquery: {query.num_vertices} vertices, {query.num_edges} edges")

    result = engine.query(
        query,
        probability_threshold=0.3,
        distance_threshold=1,
        config=SearchConfig(verification=VerificationConfig(method="sampling", num_samples=500)),
        rng=7,
    )

    print(f"\nanswers ({len(result.answers)}):")
    for answer in result.answers:
        print(f"  graph {answer.graph_id:3d} ({answer.graph_name})  "
              f"SSP ≈ {answer.probability:.3f}  [{answer.decided_by}]")
    print("\npipeline statistics:")
    for key, value in result.statistics.as_dict().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
