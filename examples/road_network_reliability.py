"""Road-network scenario: which city districts probably support a routing
pattern despite uncertain congestion?

Edges of a probabilistic road network carry the probability that a segment is
passable; nearby segments are correlated because congestion propagates (the
paper's road-network motivation).  Each "district" is one probabilistic graph
in the database; the query is a small routing pattern (for example a detour
loop around a junction), and the engine returns the districts where the
pattern is available with probability at least ε even if δ segments are
blocked.

Run with:  python examples/road_network_reliability.py
"""

from __future__ import annotations

from repro import ProbabilisticGraphDatabase, SearchConfig, VerificationConfig
from repro.datasets import extract_query, generate_road_network
from repro.pmi import BoundConfig, FeatureSelectionConfig

NUM_DISTRICTS = 8
PROBABILITY_THRESHOLD = 0.30
DISTANCE_THRESHOLD = 1


def main() -> None:
    # Districts differ in size and congestion level; heavier congestion means
    # lower passability probabilities.
    districts = []
    for index in range(NUM_DISTRICTS):
        congestion = 0.15 + 0.08 * index
        district = generate_road_network(
            rows=4,
            columns=4,
            congestion_level=congestion,
            rng=100 + index,
            name=f"district-{index} (congestion {congestion:.2f})",
        )
        districts.append(district)
    print(f"database: {len(districts)} districts, "
          f"{districts[0].num_vertices} junctions each")

    engine = ProbabilisticGraphDatabase(districts)
    engine.build_index(
        feature_config=FeatureSelectionConfig(max_vertices=3, max_features=12),
        bound_config=BoundConfig(num_samples=100),
        rng=5,
    )

    # The routing pattern: a 4-segment sub-route taken from the least
    # congested district.
    pattern = extract_query(districts[0].skeleton, 4, rng=5)
    print(f"routing pattern: {pattern.num_edges} segments, "
          f"{pattern.num_vertices} junctions\n")

    result = engine.query(
        pattern,
        probability_threshold=PROBABILITY_THRESHOLD,
        distance_threshold=DISTANCE_THRESHOLD,
        config=SearchConfig(verification=VerificationConfig(method="sampling", num_samples=600)),
        rng=5,
    )

    reliable = {answer.graph_id for answer in result.answers}
    print(f"districts where the pattern is available with probability ≥ "
          f"{PROBABILITY_THRESHOLD} (allowing {DISTANCE_THRESHOLD} blocked segment):")
    for answer in result.answers:
        print(f"  {answer.graph_name}:  SSP ≈ {answer.probability:.3f}")
    print("\ndistricts below the reliability threshold:")
    for graph_id, district in enumerate(districts):
        if graph_id not in reliable:
            print(f"  {district.name}")
    print(f"\nfilter-and-verify statistics: {result.statistics.as_dict()}")


if __name__ == "__main__":
    main()
