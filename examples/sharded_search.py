"""Sharded multiprocess search: partition the database, fan queries out.

Builds the same synthetic PPI database twice — once behind the sequential
planner, once split into 4 shards with per-shard PMI slices — runs an
identical workload through both, and shows that the answers match exactly
while the sharded run uses every core the machine has.  Also demonstrates
the warm-start path: shard PMI slices are persisted (npz+JSON) on the first
build and loaded on the second.

Run with:  python examples/sharded_search.py
"""

from __future__ import annotations

import tempfile

from repro import ProbabilisticGraphDatabase, SearchConfig, VerificationConfig
from repro.datasets import PPIDatasetConfig, generate_ppi_database, generate_query_workload
from repro.pmi import BoundConfig, FeatureSelectionConfig
from repro.utils.timer import Timer

NUM_SHARDS = 4
SEED = 7


def main() -> None:
    dataset = generate_ppi_database(
        PPIDatasetConfig(num_graphs=16, vertices_per_graph=12, edges_per_graph=16), rng=SEED
    )
    feature_config = FeatureSelectionConfig(max_vertices=3, max_features=16)
    bound_config = BoundConfig(num_samples=120)
    workload = generate_query_workload(dataset.graphs, query_size=3, num_queries=6, rng=SEED)
    queries = workload.queries()
    search_config = SearchConfig(
        verification=VerificationConfig(method="sampling", num_samples=300)
    )

    # 1. Sequential baseline: one planner, one core.
    sequential = ProbabilisticGraphDatabase(dataset.graphs)
    sequential.build_index(
        feature_config=feature_config, bound_config=bound_config, rng=SEED
    )
    timer = Timer()
    with timer:
        sequential_results = sequential.query_many(
            queries, 0.3, 1, config=search_config, rng=SEED
        )
    print(f"sequential: {len(queries)} queries in {timer.elapsed:.3f}s")

    with tempfile.TemporaryDirectory() as cache_dir:
        # 2. Sharded: K contiguous shards, each with its own PMI slice,
        #    structural slice and planner; queries fan out over a process pool.
        build_timer = Timer()
        with build_timer:
            sharded = ProbabilisticGraphDatabase(dataset.graphs)
            sharded.build_index(
                feature_config=feature_config,
                bound_config=bound_config,
                rng=SEED,
                num_shards=NUM_SHARDS,
                shard_cache_dir=cache_dir,
            )
        print(f"sharded index build (cold, {NUM_SHARDS} shards): {build_timer.elapsed:.3f}s")

        timer = Timer()
        with timer:
            sharded_results = sharded.query_many(
                queries, 0.3, 1, config=search_config, rng=SEED
            )
        # Memory footprint: the dense shard arrays live ONCE in shared-memory
        # segments; each pool worker attaches read-only and was initialized
        # with ~2 KB of descriptors, so adding workers costs descriptors,
        # not database copies.  close() below unlinks every segment.
        plane = sharded.planner.shard_plane
        if plane is not None:
            import pickle

            payload = len(pickle.dumps(sharded.planner.initializer_payload()))
            print(
                f"shard plane: {plane.shard_bytes()} B shared across all "
                f"workers, {payload} B shipped per worker"
            )
        sharded.close()
        print(f"sharded:    {len(queries)} queries in {timer.elapsed:.3f}s")

        # 3. Determinism: the sharded executor returns byte-for-byte the
        #    sequential planner's answers — same ids, SSP estimates, order.
        agree = all(
            [(a.graph_id, a.probability) for a in sequential_result.answers]
            == [(a.graph_id, a.probability) for a in sharded_result.answers]
            for sequential_result, sharded_result in zip(sequential_results, sharded_results)
        )
        print(f"sharded answers identical to sequential: {agree}")

        # 4. Warm start: the shard slices were persisted above, so a rebuild
        #    loads them instead of recomputing any SIP bounds.
        warm_timer = Timer()
        with warm_timer:
            warm = ProbabilisticGraphDatabase(dataset.graphs)
            warm.build_index(
                feature_config=feature_config,
                bound_config=bound_config,
                rng=SEED,
                num_shards=NUM_SHARDS,
                shard_cache_dir=cache_dir,
            )
        print(f"sharded index build (warm cache):        {warm_timer.elapsed:.3f}s")

    for sequential_result, query in zip(sequential_results, queries):
        merged = sequential_result.statistics
        print(
            f"  query |E|={query.num_edges}: answers={len(sequential_result.answers)} "
            f"pruned={merged.pruned_by_upper_bound} verified={merged.verified}"
        )


if __name__ == "__main__":
    main()
