"""Social-network scenario: which communities probably carry an influence
pattern between an influencer and their audience?

Edges carry the probability that influence/trust actually propagates between
two users; ties within a community are correlated (the paper's social-network
motivation).  The database holds one probabilistic graph per community
snapshot; the query is a small influence pattern (influencer → members), and
the engine returns the snapshots where the pattern probably holds even if
δ ties are missing.

Run with:  python examples/social_influence_patterns.py
"""

from __future__ import annotations

from repro import LabeledGraph, ProbabilisticGraphDatabase, SearchConfig, VerificationConfig
from repro.datasets import generate_social_network
from repro.pmi import BoundConfig, FeatureSelectionConfig

NUM_SNAPSHOTS = 8
PROBABILITY_THRESHOLD = 0.30
DISTANCE_THRESHOLD = 1


def influence_pattern() -> LabeledGraph:
    """An influencer connected to two members, one of whom mentions the other."""
    pattern = LabeledGraph(name="influence-pattern")
    pattern.add_vertex(0, "influencer")
    pattern.add_vertex(1, "member")
    pattern.add_vertex(2, "member")
    pattern.add_edge(0, 1, "follows")
    pattern.add_edge(0, 2, "follows")
    pattern.add_edge(1, 2, "mentions")
    return pattern


def main() -> None:
    snapshots = []
    for index in range(NUM_SNAPSHOTS):
        trust = 0.35 + 0.06 * index
        snapshots.append(
            generate_social_network(
                num_communities=2,
                community_size=7,
                mean_trust=trust,
                rng=200 + index,
                name=f"snapshot-{index} (mean trust {trust:.2f})",
            )
        )
    print(f"database: {len(snapshots)} community snapshots")

    engine = ProbabilisticGraphDatabase(snapshots)
    engine.build_index(
        feature_config=FeatureSelectionConfig(max_vertices=3, max_features=12),
        bound_config=BoundConfig(num_samples=100),
        rng=9,
    )

    pattern = influence_pattern()
    print(f"influence pattern: {pattern.num_vertices} users, {pattern.num_edges} ties\n")

    result = engine.query(
        pattern,
        probability_threshold=PROBABILITY_THRESHOLD,
        distance_threshold=DISTANCE_THRESHOLD,
        config=SearchConfig(verification=VerificationConfig(method="sampling", num_samples=600)),
        rng=9,
    )

    print(f"snapshots where the pattern holds with probability ≥ {PROBABILITY_THRESHOLD} "
          f"(allowing {DISTANCE_THRESHOLD} missing tie):")
    if not result.answers:
        print("  (none — try lowering the threshold)")
    for answer in result.answers:
        print(f"  {answer.graph_name}:  SSP ≈ {answer.probability:.3f}")

    # higher-trust snapshots should dominate the answer set
    answered = [answer.graph_id for answer in result.answers]
    if answered:
        print(f"\naverage trust of matching snapshots: "
              f"{sum(snapshots[i].average_edge_probability() for i in answered) / len(answered):.3f}")
        others = [i for i in range(NUM_SNAPSHOTS) if i not in answered]
        if others:
            print(f"average trust of the remaining snapshots: "
                  f"{sum(snapshots[i].average_edge_probability() for i in others) / len(others):.3f}")
    print(f"\nfilter-and-verify statistics: {result.statistics.as_dict()}")


if __name__ == "__main__":
    main()
