"""Top-k subgraph similarity search with a dynamically tightening floor.

Instead of asking "which graphs match with probability ≥ ε?" (a T-PS
threshold query), ``query_top_k(q, k, δ)`` asks for the k *most probable*
matches: the pipeline seeds its probability floor from the PMI lower
bounds, verifies candidates in descending upper-bound order, and raises
the floor to the running k-th best verified probability — so late, weakly
bounded candidates are skipped without ever computing their SSP.

The script runs the same top-k workload three ways and shows all agree:

1. the sequential pipeline (`num_shards=1`),
2. a 4-shard engine (cross-shard replay merge — byte-identical answers),
3. the index-free exact-scan reference (verify everything, rank).

Run with:  python examples/topk_search.py
"""

from __future__ import annotations

from repro import ProbabilisticGraphDatabase, SearchConfig, VerificationConfig
from repro.baselines.exact_scan import ExactScanBaseline, ExactScanConfig
from repro.datasets import PPIDatasetConfig, generate_ppi_database, generate_query_workload
from repro.pmi import BoundConfig, FeatureSelectionConfig

K = 5
DISTANCE_THRESHOLD = 1
SEED = 7


def main() -> None:
    # small graphs keep the exact (inclusion-exclusion) verification cheap —
    # this example trades scale for float-for-float comparability
    dataset = generate_ppi_database(
        PPIDatasetConfig(
            num_graphs=16,
            vertices_per_graph=8,
            edges_per_graph=9,
            motif_vertices=3,
            motif_edges=3,
        ),
        rng=SEED,
    )
    feature_config = FeatureSelectionConfig(max_vertices=3, max_features=16)
    bound_config = BoundConfig(method="exact")
    workload = generate_query_workload(dataset.graphs, query_size=3, num_queries=3, rng=SEED)
    queries = workload.queries()
    # exact verification keeps the three executors comparable float-for-float
    search_config = SearchConfig(
        verification=VerificationConfig(method="inclusion_exclusion")
    )

    sequential = ProbabilisticGraphDatabase(dataset.graphs)
    sequential.build_index(
        feature_config=feature_config, bound_config=bound_config, rng=SEED
    )
    sharded = ProbabilisticGraphDatabase(dataset.graphs)
    sharded.build_index(
        feature_config=feature_config,
        bound_config=bound_config,
        rng=SEED,
        num_shards=4,
        max_workers=0,  # in-process: the merge invariant does not need a pool
    )
    reference = ExactScanBaseline(
        dataset.graphs,
        ExactScanConfig(
            method="inclusion_exclusion",
            verification=VerificationConfig(method="inclusion_exclusion"),
        ),
    )

    for index, query in enumerate(queries):
        top = sequential.query_top_k(
            query, K, DISTANCE_THRESHOLD, config=search_config, rng=SEED
        )
        merged = sharded.query_top_k(
            query, K, DISTANCE_THRESHOLD, config=search_config, rng=SEED
        )
        truth = reference.top_k(query, K, DISTANCE_THRESHOLD, rng=SEED)

        print(f"\nquery {index}: top-{K} matches")
        for rank, answer in enumerate(top.answers, start=1):
            print(
                f"  #{rank}  graph {answer.graph_id:>3} ({answer.graph_name})  "
                f"p = {answer.probability:.4f}"
            )
        assert [(a.graph_id, a.probability) for a in top.answers] == [
            (a.graph_id, a.probability) for a in merged.answers
        ], "sharded top-k diverged from sequential"
        assert [(a.graph_id, a.probability) for a in top.answers] == [
            (a.graph_id, a.probability) for a in truth.answers
        ], "pipeline top-k diverged from the exact-scan reference"
        floor_skipped = top.statistics.stages[-1].pruned
        print(
            f"  verified {top.statistics.verified}/{truth.statistics.verified} graphs "
            f"(filters pruned the rest; tightening floor skipped {floor_skipped})"
        )

    print("\nsequential == sharded == exact-scan reference for every query.")


if __name__ == "__main__":
    main()
