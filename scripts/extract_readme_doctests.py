"""Keep README code blocks honest: extract and execute every one of them.

Usage::

    PYTHONPATH=src python scripts/extract_readme_doctests.py [README.md] [out.txt]

Two kinds of fenced ``python`` blocks live in the README:

* **script blocks** (no ``>>>`` prompts) — executed here, in order, in one
  shared namespace (later blocks may reuse names from earlier ones, exactly
  as a reader pasting them into a session would);
* **doctest blocks** (``>>>`` prompts with expected output) — concatenated
  into ``out.txt`` (default ``readme_doctests.txt``) in ``doctest`` text
  format, so CI can run ``python -m doctest readme_doctests.txt`` and fail
  when a documented value drifts.

Exit status is non-zero if any script block raises or if no blocks were
found (an empty extraction almost certainly means the fence syntax changed
and the check went blind).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def extract_blocks(markdown: str) -> list[str]:
    return [match.group(1).strip("\n") for match in FENCE.finditer(markdown)]


def main(argv: list[str]) -> int:
    readme = Path(argv[1]) if len(argv) > 1 else Path("README.md")
    out = Path(argv[2]) if len(argv) > 2 else Path("readme_doctests.txt")
    blocks = extract_blocks(readme.read_text())
    if not blocks:
        print(f"error: no ```python blocks found in {readme}", file=sys.stderr)
        return 1

    script_blocks = [block for block in blocks if ">>>" not in block]
    doctest_blocks = [block for block in blocks if ">>>" in block]

    namespace: dict = {"__name__": "__readme__"}
    for index, block in enumerate(script_blocks):
        print(f"running README script block {index + 1}/{len(script_blocks)} ...")
        try:
            exec(compile(block, f"<README block {index + 1}>", "exec"), namespace)
        except Exception as error:  # deliberately broad: report which block broke
            print(f"error: README script block {index + 1} failed: {error!r}",
                  file=sys.stderr)
            return 1

    out.write_text(
        "README doctest blocks (auto-extracted; run: python -m doctest <this file>)\n\n"
        + "\n\n".join(doctest_blocks)
        + "\n"
    )
    print(
        f"ok: {len(script_blocks)} script block(s) executed, "
        f"{len(doctest_blocks)} doctest block(s) written to {out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
