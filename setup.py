"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can still be installed in editable mode on environments whose
setuptools/pip lack PEP 660 editable-wheel support (for example fully offline
machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
