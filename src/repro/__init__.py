"""repro — probabilistic subgraph similarity search with the PMI index.

A from-scratch Python reproduction of "Efficient Subgraph Similarity Search
on Large Probabilistic Graph Databases" (Yuan, Wang, Chen & Wang, VLDB 2012).

The public API mirrors the paper's pipeline:

* :class:`~repro.graphs.LabeledGraph` / :class:`~repro.graphs.ProbabilisticGraph`
  — the data model (Definitions 1–3);
* :class:`~repro.core.ProbabilisticGraphDatabase` — the filter-and-verify
  engine (structural pruning → PMI probabilistic pruning → verification);
* :class:`~repro.pmi.ProbabilisticMatrixIndex` — the PMI index with SIP
  bounds per (feature, graph) cell;
* :mod:`repro.datasets` — synthetic STRING/PPI, road and social network
  generators plus query workloads;
* :mod:`repro.baselines` — the Exact scan and independent-edge (IND) models.

Quickstart::

    from repro import ProbabilisticGraphDatabase, generate_ppi_database
    from repro.datasets import generate_query_workload

    data = generate_ppi_database(rng=7)
    db = ProbabilisticGraphDatabase(data.graphs).build_index(rng=7)
    workload = generate_query_workload(data.graphs, query_size=4,
                                        num_queries=5, rng=7)
    result = db.query(workload.queries()[0], probability_threshold=0.5,
                      distance_threshold=1)
"""

from repro.graphs import LabeledGraph, ProbabilisticGraph, NeighborEdgeFactor
from repro.graphs.possible_worlds import enumerate_possible_worlds
from repro.probability import JointProbabilityTable, Factor
from repro.isomorphism import (
    is_subgraph_isomorphic,
    find_embeddings,
    find_embeddings_block,
    match_block,
    get_default_engine,
    set_default_engine,
    using_engine,
    subgraph_distance,
    is_subgraph_similar,
)
from repro.pmi import (
    ProbabilisticMatrixIndex,
    PMIRow,
    BoundConfig,
    FeatureSelectionConfig,
    compute_sip_bounds,
)
from repro.core import (
    GraphCatalog,
    ProbabilisticGraphDatabase,
    QueryPlanner,
    ShardedPlanner,
    SearchConfig,
    Verifier,
    VerificationConfig,
    relax_query,
    RelaxationConfig,
    PruningConfig,
    QueryResult,
    QueryAnswer,
    aggregate_statistics,
)
from repro.baselines import ExactScanBaseline, to_independent_model
from repro.datasets import (
    generate_ppi_database,
    generate_query_workload,
    generate_road_network,
    generate_social_network,
)

__version__ = "1.0.0"

__all__ = [
    "LabeledGraph",
    "ProbabilisticGraph",
    "NeighborEdgeFactor",
    "enumerate_possible_worlds",
    "JointProbabilityTable",
    "Factor",
    "is_subgraph_isomorphic",
    "find_embeddings",
    "find_embeddings_block",
    "match_block",
    "get_default_engine",
    "set_default_engine",
    "using_engine",
    "subgraph_distance",
    "is_subgraph_similar",
    "ProbabilisticMatrixIndex",
    "PMIRow",
    "BoundConfig",
    "FeatureSelectionConfig",
    "compute_sip_bounds",
    "GraphCatalog",
    "ProbabilisticGraphDatabase",
    "QueryPlanner",
    "ShardedPlanner",
    "SearchConfig",
    "aggregate_statistics",
    "Verifier",
    "VerificationConfig",
    "relax_query",
    "RelaxationConfig",
    "PruningConfig",
    "QueryResult",
    "QueryAnswer",
    "ExactScanBaseline",
    "to_independent_model",
    "generate_ppi_database",
    "generate_query_workload",
    "generate_road_network",
    "generate_social_network",
    "__version__",
]
