"""Contract linter: the determinism/durability/concurrency contracts as code.

``python -m repro.analysis src benchmarks examples`` scans the tree with an
AST rule pack (DET0xx determinism, IO0xx durability, SHM0xx shared-memory
lifecycle, LOCK0xx lock discipline, EXC0xx exception taxonomy), honoring
per-line ``# repro: allow[RULE] -- reason`` suppressions and a grandfather
baseline.  See ARCHITECTURE.md "Contracts as lint rules" for the rule table
and rationale.
"""

from .baseline import load_baseline, save_baseline
from .config import DEFAULT_CONFIG, AnalysisConfig, LockContract
from .engine import Report, SourceFile, run_analysis
from .findings import Finding, sort_findings
from .reporters import render_json, render_text
from .rules import RULE_CLASSES, Rule, default_rules, rule_table

__all__ = [
    "AnalysisConfig",
    "DEFAULT_CONFIG",
    "Finding",
    "LockContract",
    "Report",
    "Rule",
    "RULE_CLASSES",
    "SourceFile",
    "default_rules",
    "load_baseline",
    "render_json",
    "render_text",
    "rule_table",
    "run_analysis",
    "save_baseline",
    "sort_findings",
]
