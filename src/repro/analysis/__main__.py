"""``python -m repro.analysis`` — the contract linter CLI.

Exit codes: 0 clean, 1 findings (or, with ``--strict``, stale baseline
entries / unused suppressions), 2 usage or internal error.
"""

from __future__ import annotations

import argparse
import sys

from repro.exceptions import AnalysisError
from repro.utils.atomic_io import atomic_write_text
from .baseline import load_baseline, save_baseline
from .engine import run_analysis
from .reporters import render_json, render_text
from .rules import rule_table

DEFAULT_PATHS = ["src", "benchmarks", "examples"]
DEFAULT_BASELINE = "contract_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static contract linter: enforces the repo's determinism (DET), "
            "durability (IO), shared-memory (SHM), locking (LOCK), and "
            "exception-taxonomy (EXC) invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="also write the JSON report to FILE (atomically); used by CI to "
        "upload contract_report.json",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE,
        help=f"baseline of grandfathered findings (default: {DEFAULT_BASELINE}; "
        "a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to contain exactly the current findings and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries and unused suppression comments",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule pack and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, (title, invariant) in sorted(rule_table().items()):
            print(f"{rule_id}  {title}")
            print(f"       {invariant}")
        return 0
    try:
        baseline = load_baseline(args.baseline)
        report = run_analysis(args.paths, baseline_fingerprints=frozenset(baseline))
        if args.write_baseline:
            save_baseline(args.baseline, report.findings + report.baselined)
            print(
                f"baseline {args.baseline}: "
                f"{len(report.findings) + len(report.baselined)} finding(s) recorded"
            )
            return 0
        if args.out:
            atomic_write_text(args.out, render_json(report))
        output = render_json(report) if args.format == "json" else render_text(report)
        sys.stdout.write(output)
        return 0 if report.clean(strict=args.strict) else 1
    except AnalysisError as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
