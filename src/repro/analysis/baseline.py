"""Baseline files: grandfathered findings that do not fail the build.

A baseline entry is a finding fingerprint (content-addressed — see
:mod:`repro.analysis.findings`) plus enough human-readable context to review
it.  The contract: the shipped ``contract_baseline.json`` stays **empty for
``src/``** — new core code fixes or inline-suppresses its findings — and the
baseline mechanism exists so a future rule tightening can land first and
burn down pre-existing findings incrementally, with ``--strict`` flagging
entries that no longer match anything (fixed code must shed its baseline
entry in the same change).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import AnalysisError
from repro.utils.atomic_io import atomic_write_text
from .findings import Finding, sort_findings

BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> dict[str, dict]:
    """``fingerprint -> context`` from a baseline file; {} when absent."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return {}
    try:
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"unreadable baseline {baseline_path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise AnalysisError(
            f"baseline {baseline_path} has unsupported version "
            f"{payload.get('version') if isinstance(payload, dict) else payload!r}"
        )
    entries = payload.get("findings", {})
    if not isinstance(entries, dict):
        raise AnalysisError(f"baseline {baseline_path} 'findings' must be an object")
    return entries


def save_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write ``findings`` as the new baseline (atomically, sorted)."""
    entries = {
        finding.fingerprint: {
            "rule": finding.rule,
            "path": finding.path,
            "symbol": finding.symbol,
            "message": finding.message,
            "snippet": finding.snippet,
        }
        for finding in sort_findings(findings)
    }
    payload = {"version": BASELINE_VERSION, "findings": entries}
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
