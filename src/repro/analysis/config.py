"""The repo-specific contract data the rules check against.

This module is the machine-readable half of the determinism / durability /
concurrency contracts documented in ARCHITECTURE.md ("Contracts as lint
rules").  Rules never hard-code module names or attribute lists; they read
them from an :class:`AnalysisConfig`, so the contract surface lives in one
reviewable place and fixture tests can substitute a synthetic config.

Module classification is by posix path *suffix* ("repro/utils/rng.py"
matches both ``src/repro/utils/rng.py`` scanned from the repo root and an
installed ``site-packages/repro/utils/rng.py``), and package scopes use a
directory suffix with a trailing slash sentinel handled by
:meth:`AnalysisConfig.in_scope`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LockContract:
    """One class's concurrency contract: which attributes the lock guards.

    ``__init__`` is exempt (construction happens-before any sharing), and a
    method may opt out per line with ``# repro: allow[LOCK001]`` when a
    documented benign race makes an unlocked read correct.
    """

    lock_attribute: str
    guarded_attributes: frozenset[str]


def _suffix_match(path: str, suffixes: frozenset[str] | tuple[str, ...]) -> bool:
    return any(path == s or path.endswith("/" + s) for s in suffixes)


@dataclass(frozen=True)
class AnalysisConfig:
    """Scopes and ownership tables for the shipped rule pack."""

    # DET001: the one module allowed to construct ambient / unseeded RNG
    # state — everything else must derive streams via utils/rng.py.
    rng_owner_modules: frozenset[str] = frozenset({"repro/utils/rng.py"})

    # IO001/IO002/IO003: the one module allowed to open files for writing,
    # rename over live paths, and fsync — the atomic tmp+fsync+replace
    # recipe every persisted artifact must go through.
    atomic_io_owner_modules: frozenset[str] = frozenset({"repro/utils/atomic_io.py"})

    # SHM001: the one module allowed to touch multiprocessing.shared_memory
    # directly; everyone else goes through its pid-guarded segment registry.
    shm_owner_modules: frozenset[str] = frozenset({"repro/utils/shm.py"})

    # DET002: packages whose code computes answers (so wall-clock time and
    # uuids must never feed seeds or ordering there).  Benchmarks stamp
    # trajectory points with time.time() by design, hence the src-only scope.
    query_path_packages: frozenset[str] = frozenset({"repro"})
    query_path_exempt_modules: frozenset[str] = frozenset({"repro/utils/timer.py"})

    # EXC001: packages that must raise the exceptions.py taxonomy.
    taxonomy_packages: frozenset[str] = frozenset({"repro"})

    # LOCK001: class name -> concurrency contract.  These are the two
    # classes the query service shares across threads (dispatcher backend
    # thread vs event loop vs user threads).
    lock_contracts: dict[str, LockContract] = field(
        default_factory=lambda: {
            "ShardedPlanner": LockContract(
                lock_attribute="_lock",
                guarded_attributes=frozenset(
                    {"_executor", "_executor_width", "_local_planners", "_plane"}
                ),
            ),
            "AnswerCache": LockContract(
                lock_attribute="_lock",
                guarded_attributes=frozenset({"_entries", "stats"}),
            ),
        }
    )

    def is_rng_owner(self, path: str) -> bool:
        return _suffix_match(path, self.rng_owner_modules)

    def is_atomic_io_owner(self, path: str) -> bool:
        return _suffix_match(path, self.atomic_io_owner_modules)

    def is_shm_owner(self, path: str) -> bool:
        return _suffix_match(path, self.shm_owner_modules)

    def on_query_path(self, path: str) -> bool:
        if _suffix_match(path, self.query_path_exempt_modules):
            return False
        return self._in_packages(path, self.query_path_packages)

    def in_taxonomy_scope(self, path: str) -> bool:
        return self._in_packages(path, self.taxonomy_packages)

    @staticmethod
    def _in_packages(path: str, packages: frozenset[str]) -> bool:
        parts = path.split("/")
        return any(package in parts[:-1] for package in packages)


DEFAULT_CONFIG = AnalysisConfig()
