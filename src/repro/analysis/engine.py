"""The analysis engine: file loading, AST preparation, rule execution.

The engine owns everything rule-independent:

* parsing each file once and annotating every node with its parent and its
  enclosing symbol (``Class.method`` chains), so rules can ask structural
  questions without re-walking the tree;
* resolving imports to qualified names (``np.random.default_rng`` →
  ``numpy.random.default_rng`` through any alias), so rules match *what a
  call means*, not what it is spelled as;
* a conservative local "set-ness" inference used by the unordered-iteration
  rule;
* per-line suppression comments ``# repro: allow[RULE1,RULE2] -- reason``
  (on the flagged line, or on a comment-only line directly above it), with
  unused suppressions surfaced so stale opt-outs cannot accumulate;
* running every registered rule and splitting raw findings into active /
  suppressed / baselined.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import AnalysisError
from .config import DEFAULT_CONFIG, AnalysisConfig
from .findings import Finding, sort_findings

SUPPRESSION_PATTERN = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")


@dataclass
class Suppression:
    """One ``# repro: allow[...]`` comment and the line range it covers."""

    path: str
    comment_line: int  # where the comment itself sits
    target_line: int  # the code line the suppression applies to
    rules: frozenset[str]  # rule ids, or {"*"}
    used: bool = False

    def matches(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


def _scan_suppressions(path: str, text: str) -> list[Suppression]:
    """Collect suppression comments via the tokenizer (never inside strings).

    A suppression on a code line covers that line; a suppression on a
    comment-only line covers the next line, so multi-line statements can be
    annotated above their first line.
    """
    suppressions: list[Suppression] = []
    code_lines: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return []
    for token in tokens:
        if token.type == tokenize.COMMENT:
            continue
        if token.type in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            continue
        for lineno in range(token.start[0], token.end[0] + 1):
            code_lines.add(lineno)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = SUPPRESSION_PATTERN.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if not rules:
            continue
        comment_line = token.start[0]
        target_line = comment_line if comment_line in code_lines else comment_line + 1
        suppressions.append(
            Suppression(
                path=path, comment_line=comment_line, target_line=target_line, rules=rules
            )
        )
    return suppressions


@dataclass
class ImportResolver:
    """Alias → qualified-name resolution for one module.

    ``import numpy as np`` makes ``np.random.default_rng`` resolve to
    ``numpy.random.default_rng``; ``from numpy.random import default_rng as
    rng_maker`` makes ``rng_maker`` resolve to ``numpy.random.default_rng``.
    Resolution is module-level only — good enough for the stdlib/numpy
    surfaces the rules care about, and conservative (an unresolvable name
    resolves to itself).
    """

    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def for_module(cls, tree: ast.Module) -> "ImportResolver":
        resolver = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    bound = name.asname or name.name.split(".")[0]
                    target = name.name if name.asname else name.name.split(".")[0]
                    resolver.aliases[bound] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for name in node.names:
                    if name.name == "*":
                        continue
                    bound = name.asname or name.name
                    resolver.aliases[bound] = f"{node.module}.{name.name}"
        return resolver

    def qualified_name(self, node: ast.expr) -> str | None:
        """The dotted qualified name of an expression, or None.

        Walks ``Attribute`` chains down to a ``Name`` root and substitutes
        the root's import alias, if any.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


_SET_PRODUCERS = {"set", "frozenset"}


def _is_set_expression(node: ast.expr, set_names: set[str]) -> bool:
    """Conservatively, does this expression evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in _SET_PRODUCERS:
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra preserves set-ness; require at least one known-set side
        return _is_set_expression(node.left, set_names) or _is_set_expression(
            node.right, set_names
        )
    return False


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in _SET_PRODUCERS
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.split("[")[0].strip() in _SET_PRODUCERS
    return False


def infer_set_names(scope: ast.AST) -> set[str]:
    """Names bound to set values anywhere in ``scope`` (one function body).

    Single-pass and flow-insensitive on purpose: a name counts as a set if
    *any* binding in the scope gives it one.  That over-approximates, but a
    rebinding from set to list inside one function is itself a readability
    hazard, and the suppression comment is the escape hatch.
    """
    names: set[str] = set()
    pending: list[ast.AST] = [scope]
    nodes: list[ast.AST] = []
    while pending:
        node = pending.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not scope:
            continue  # nested scopes run their own inference
        nodes.append(node)
        pending.extend(ast.iter_child_nodes(node))
    changed = True
    while changed:  # fixpoint: `b = a` after `a = set()` needs a second pass
        changed = False
        for node in nodes:
            bound: list[str] = []
            if isinstance(node, ast.Assign) and _is_set_expression(node.value, names):
                bound = [t.id for t in node.targets if isinstance(t, ast.Name)]
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _annotation_is_set(node.annotation) or (
                    node.value is not None and _is_set_expression(node.value, names)
                ):
                    bound = [node.target.id]
            elif isinstance(node, ast.arg) and _annotation_is_set(node.annotation):
                bound = [node.arg]
            for name in bound:
                if name not in names:
                    names.add(name)
                    changed = True
    return names


@dataclass
class SourceFile:
    """One parsed file plus the node annotations every rule shares."""

    path: str  # posix-style, as scanned
    text: str
    lines: list[str]
    tree: ast.Module
    resolver: ImportResolver
    suppressions: list[Suppression]

    @classmethod
    def load(cls, path: Path, display_path: str) -> "SourceFile":
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise AnalysisError(f"cannot read {display_path}: {exc}") from exc
        try:
            tree = ast.parse(text, filename=display_path)
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {display_path}: {exc}") from exc
        _annotate_parents_and_symbols(tree)
        return cls(
            path=display_path,
            text=text,
            lines=text.splitlines(),
            tree=tree,
            resolver=ImportResolver.for_module(tree),
            suppressions=_scan_suppressions(display_path, text),
        )

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def symbol_at(self, node: ast.AST) -> str:
        return getattr(node, "_repro_symbol", "")

    def parent(self, node: ast.AST) -> ast.AST | None:
        return getattr(node, "_repro_parent", None)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.path,
            line=line,
            column=column,
            message=message,
            symbol=self.symbol_at(node),
            snippet=self.snippet(line),
        )


def _annotate_parents_and_symbols(tree: ast.Module) -> None:
    """Attach ``_repro_parent`` and ``_repro_symbol`` to every node."""

    def visit(node: ast.AST, parent: ast.AST | None, symbol: str) -> None:
        node._repro_parent = parent
        node._repro_symbol = symbol
        child_symbol = symbol
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            child_symbol = f"{symbol}.{node.name}" if symbol else node.name
            node._repro_symbol = child_symbol
        for child in ast.iter_child_nodes(node):
            visit(child, node, child_symbol)

    visit(tree, None, "")


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: list[Finding]  # active: not suppressed, not baselined
    suppressed: list[Finding]
    baselined: list[Finding]
    unused_suppressions: list[Suppression]
    stale_baseline: list[str]  # fingerprints in the baseline nothing matched
    files_scanned: int

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def clean(self, strict: bool = False) -> bool:
        if self.findings:
            return False
        if strict and (self.stale_baseline or self.unused_suppressions):
            return False
        return True


def iter_python_files(paths: list[str]) -> list[tuple[Path, str]]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Sorted so scan (and therefore report) order never depends on filesystem
    enumeration order — the engine obeys its own DET004.
    """
    collected: dict[str, Path] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" in candidate.parts:
                    continue
                collected[candidate.as_posix()] = candidate
        elif path.is_file():
            collected[path.as_posix()] = path
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    return [(collected[key], key) for key in sorted(collected)]


def run_analysis(
    paths: list[str],
    config: AnalysisConfig = DEFAULT_CONFIG,
    baseline_fingerprints: frozenset[str] = frozenset(),
    rules: list | None = None,
) -> Report:
    """Scan ``paths`` with every registered rule and triage the findings."""
    from .rules import default_rules

    active_rules = default_rules(config) if rules is None else rules
    raw: list[Finding] = []
    all_suppressions: list[Suppression] = []
    files = iter_python_files(paths)
    for path, display in files:
        source = SourceFile.load(path, display)
        all_suppressions.extend(source.suppressions)
        for rule in active_rules:
            raw.extend(rule.check(source))

    suppression_index: dict[tuple[str, int], list[Suppression]] = {}
    for suppression in all_suppressions:
        suppression_index.setdefault(
            (suppression.path, suppression.target_line), []
        ).append(suppression)

    findings: list[Finding] = []
    suppressed: list[Finding] = []
    baselined: list[Finding] = []
    matched_fingerprints: set[str] = set()
    for finding in sort_findings(raw):
        covering = [
            s
            for s in suppression_index.get((finding.path, finding.line), [])
            if s.matches(finding.rule)
        ]
        if covering:
            for suppression in covering:
                suppression.used = True
            suppressed.append(finding)
        elif finding.fingerprint in baseline_fingerprints:
            matched_fingerprints.add(finding.fingerprint)
            baselined.append(finding)
        else:
            findings.append(finding)

    return Report(
        findings=findings,
        suppressed=suppressed,
        baselined=baselined,
        unused_suppressions=[s for s in all_suppressions if not s.used],
        stale_baseline=sorted(baseline_fingerprints - matched_fingerprints),
        files_scanned=len(files),
    )
