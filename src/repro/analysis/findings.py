"""Finding objects and their stable fingerprints.

A :class:`Finding` is one rule violation at one source location.  Its
``fingerprint`` deliberately hashes the *content* of the violation — rule id,
file path, enclosing symbol, and the normalized source line — rather than the
line number, so a baseline entry keeps matching when unrelated edits shift
the file around it, and stops matching the moment the offending line itself
changes (at which point the author must re-justify or fix it).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix-style path as scanned (relative to the invocation cwd)
    line: int  # 1-based
    column: int  # 0-based, as reported by the ast module
    message: str
    symbol: str = ""  # dotted enclosing class/function chain, "" at module level
    snippet: str = ""  # the stripped source line
    fingerprint: str = field(default="", compare=False)

    @staticmethod
    def compute_fingerprint(rule: str, path: str, symbol: str, snippet: str) -> str:
        payload = "\x1f".join((rule, path, symbol, " ".join(snippet.split())))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def __post_init__(self) -> None:
        if not self.fingerprint:
            object.__setattr__(
                self,
                "fingerprint",
                self.compute_fingerprint(self.rule, self.path, self.symbol, self.snippet),
            )

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column + 1}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "symbol": self.symbol,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            rule=payload["rule"],
            path=payload["path"],
            line=int(payload["line"]),
            column=int(payload["column"]),
            message=payload["message"],
            symbol=payload.get("symbol", ""),
            snippet=payload.get("snippet", ""),
            fingerprint=payload.get("fingerprint", ""),
        )


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Canonical report order: path, then line, then rule id.

    The report is itself an artifact (CI uploads it), so its ordering must be
    a pure function of the findings — never of scan or rule-registration
    order.
    """
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule))
