"""Text and JSON renderings of an analysis :class:`~repro.analysis.engine.Report`.

The text form is for humans at a terminal (grouped by file, one location per
line, with the rule's suppression syntax in the footer).  The JSON form is
the CI artifact: stable key order, counts per rule, and the full finding
list including suppressed/baselined entries so a report diff shows exactly
which opt-outs a change added.
"""

from __future__ import annotations

import json

from .engine import Report
from .rules import rule_table


def render_text(report: Report, verbose: bool = False) -> str:
    lines: list[str] = []
    current_path = None
    for finding in report.findings:
        if finding.path != current_path:
            if current_path is not None:
                lines.append("")
            lines.append(finding.path)
            current_path = finding.path
        symbol = f" [{finding.symbol}]" if finding.symbol else ""
        lines.append(f"  {finding.location()} {finding.rule}{symbol} {finding.message}")
        if finding.snippet:
            lines.append(f"      {finding.snippet}")
    if report.findings:
        lines.append("")
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_scanned} file(s) "
        f"({len(report.suppressed)} suppressed, {len(report.baselined)} baselined)"
    )
    lines.append(summary)
    for rule_id, count in report.counts_by_rule().items():
        lines.append(f"  {rule_id}: {count}")
    if report.unused_suppressions:
        lines.append("unused suppressions (stale opt-outs; strict mode fails on these):")
        for suppression in report.unused_suppressions:
            rules = ",".join(sorted(suppression.rules))
            lines.append(f"  {suppression.path}:{suppression.comment_line} allow[{rules}]")
    if report.stale_baseline:
        lines.append(
            f"{len(report.stale_baseline)} stale baseline fingerprint(s) "
            "(fixed findings must leave the baseline; strict mode fails on these)"
        )
    if report.findings:
        lines.append(
            "fix the finding, or annotate the line with `# repro: allow[RULE] -- reason`"
        )
    return "\n".join(lines) + "\n"


def render_json(report: Report) -> str:
    payload = {
        "version": 1,
        "tool": "repro.analysis",
        "summary": {
            "files_scanned": report.files_scanned,
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "unused_suppressions": len(report.unused_suppressions),
            "stale_baseline": len(report.stale_baseline),
            "by_rule": report.counts_by_rule(),
        },
        "rules": {
            rule_id: {"title": title, "invariant": invariant}
            for rule_id, (title, invariant) in sorted(rule_table().items())
        },
        "findings": [finding.as_dict() for finding in report.findings],
        "suppressed": [finding.as_dict() for finding in report.suppressed],
        "baselined": [finding.as_dict() for finding in report.baselined],
        "stale_baseline_fingerprints": report.stale_baseline,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
