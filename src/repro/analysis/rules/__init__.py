"""The shipped rule pack and its registry.

Rule ids are stable API: suppression comments and baseline entries reference
them, so a rule may be retired but its id never reused.
"""

from __future__ import annotations

from ..config import DEFAULT_CONFIG, AnalysisConfig
from .base import Rule
from .determinism import (
    AmbientRngRule,
    FilesystemOrderRule,
    UnorderedSetIterationRule,
    WallClockEntropyRule,
)
from .durability import CommitPrimitiveRule, RawPathWriteRule, RawWriteOpenRule
from .exception_taxonomy import BuiltinRaiseRule
from .locking import GuardedAttributeRule
from .shm_lifecycle import DirectSharedMemoryRule

RULE_CLASSES: tuple[type[Rule], ...] = (
    AmbientRngRule,
    WallClockEntropyRule,
    UnorderedSetIterationRule,
    FilesystemOrderRule,
    RawWriteOpenRule,
    RawPathWriteRule,
    CommitPrimitiveRule,
    DirectSharedMemoryRule,
    GuardedAttributeRule,
    BuiltinRaiseRule,
)


def default_rules(config: AnalysisConfig = DEFAULT_CONFIG) -> list[Rule]:
    return [rule_class(config) for rule_class in RULE_CLASSES]


def rule_table() -> dict[str, tuple[str, str]]:
    """``rule id -> (title, invariant)`` for reporters and docs."""
    return {cls.rule_id: (cls.title, cls.invariant) for cls in RULE_CLASSES}


__all__ = [
    "RULE_CLASSES",
    "Rule",
    "default_rules",
    "rule_table",
]
