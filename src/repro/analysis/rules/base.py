"""Rule base class.

A rule is a stateless object bound to an :class:`AnalysisConfig`; ``check``
receives one prepared :class:`~repro.analysis.engine.SourceFile` and returns
raw findings (the engine applies suppressions and the baseline afterwards).
Every rule carries its id, a one-line title, and the invariant it enforces —
the JSON report embeds all three so the artifact is self-describing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import AnalysisConfig
from ..engine import SourceFile
from ..findings import Finding


class Rule:
    rule_id: str = ""
    title: str = ""
    invariant: str = ""

    def __init__(self, config: AnalysisConfig) -> None:
        self.config = config

    def check(self, source: SourceFile) -> list[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def walk_calls(source: SourceFile) -> Iterator[ast.Call]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield node

    @staticmethod
    def call_is_argument_of(source: SourceFile, node: ast.AST, names: set[str]) -> bool:
        """True when ``node`` is directly an argument of a call to ``names``.

        Used to recognize order-erasing wrappers: iterating ``sorted(x)`` or
        reducing with ``sum(...)``/``min(...)`` makes the unordered source
        harmless.
        """
        parent = source.parent(node)
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
            return parent.func.id in names
        return False

    @staticmethod
    def enclosed_by_call(source: SourceFile, node: ast.AST, names: set[str]) -> bool:
        """True when any expression ancestor of ``node`` is a call to ``names``.

        Unlike :meth:`call_is_argument_of` this sees through intermediate
        expression nesting — ``sorted(p.name for p in d.glob(...))`` encloses
        the ``glob`` call two levels down.  The walk stops at the first
        statement ancestor.
        """
        current = source.parent(node)
        while current is not None and not isinstance(current, ast.stmt):
            if (
                isinstance(current, ast.Call)
                and isinstance(current.func, ast.Name)
                and current.func.id in names
            ):
                return True
            current = source.parent(current)
        return False
