"""DET0xx — determinism rules.

The system's core promise is that answers are byte-identical across
sequential, sharded, batched, mutated-catalog, and crash-recovered
execution.  That holds only if every stochastic draw comes from the
``utils/rng.py`` stream registry, nothing derives entropy from the clock,
and nothing lets ``PYTHONHASHSEED``-dependent set iteration order or
filesystem enumeration order leak into an ordered result.
"""

from __future__ import annotations

import ast

from ..engine import SourceFile, infer_set_names
from ..findings import Finding
from .base import Rule

# functions that consume the ambient module-level RNG state regardless of
# their arguments
_AMBIENT_RANDOM_FUNCTIONS = {
    "random.random",
    "random.randint",
    "random.randrange",
    "random.uniform",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
    "random.seed",
    "random.getrandbits",
    "random.gauss",
    "random.betavariate",
    "random.expovariate",
    "random.normalvariate",
}
# numpy's legacy global-state API: nondeterministic unless np.random.seed is
# called, and seeding the *global* state is itself a cross-module hazard
_NUMPY_GLOBAL_FUNCTIONS = {
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.randint",
    "numpy.random.random",
    "numpy.random.random_sample",
    "numpy.random.choice",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.uniform",
    "numpy.random.normal",
    "numpy.random.seed",
}
# constructors that are ambient only when called with no seed argument
_SEEDABLE_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.SeedSequence",
}


class AmbientRngRule(Rule):
    rule_id = "DET001"
    title = "ambient or unseeded RNG outside utils/rng.py"
    invariant = (
        "Every stochastic draw derives from the utils/rng.py stream registry "
        "(derive_rng(root, STREAM, stable id)); module-level RNG state and "
        "unseeded generator construction are forbidden elsewhere."
    )

    def check(self, source: SourceFile) -> list[Finding]:
        if self.config.is_rng_owner(source.path):
            return []
        findings: list[Finding] = []
        for call in self.walk_calls(source):
            name = source.resolver.qualified_name(call.func)
            if name is None:
                continue
            if name in _AMBIENT_RANDOM_FUNCTIONS or name in _NUMPY_GLOBAL_FUNCTIONS:
                findings.append(
                    source.finding(
                        self.rule_id,
                        call,
                        f"{name}() uses ambient global RNG state; derive a stream "
                        "via repro.utils.rng instead",
                    )
                )
            elif name in _SEEDABLE_CONSTRUCTORS and not call.args and not call.keywords:
                findings.append(
                    source.finding(
                        self.rule_id,
                        call,
                        f"{name}() constructed without a seed; pass an explicit "
                        "seed or a repro.utils.rng-derived stream",
                    )
                )
        return findings


_WALL_CLOCK_FUNCTIONS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
    "uuid.uuid1": "host/time-derived uuid",
    "uuid.uuid4": "random uuid",
}


class WallClockEntropyRule(Rule):
    rule_id = "DET002"
    title = "clock or uuid entropy on the query path"
    invariant = (
        "Answer-producing modules never read wall-clock time or generate "
        "uuids: any value that could feed a seed, a tie-break, or an id must "
        "be a pure function of (inputs, rng root).  Monotonic duration "
        "measurement (perf_counter/monotonic) stays allowed."
    )

    def check(self, source: SourceFile) -> list[Finding]:
        if not self.config.on_query_path(source.path):
            return []
        findings: list[Finding] = []
        for call in self.walk_calls(source):
            name = source.resolver.qualified_name(call.func)
            if name is None:
                continue
            kind = _WALL_CLOCK_FUNCTIONS.get(name)
            if kind is None and name.endswith(".now") and name.startswith("datetime."):
                kind = "wall-clock time"
            if kind is not None:
                findings.append(
                    source.finding(
                        self.rule_id,
                        call,
                        f"{name}() injects {kind} into a query-path module; "
                        "answers must be pure functions of (inputs, rng root)",
                    )
                )
        return findings


# reducers whose result does not depend on iteration order
_ORDER_ERASING = {
    "sorted",
    "sum",
    "min",
    "max",
    "len",
    "any",
    "all",
    "set",
    "frozenset",
    "Counter",
}
# accumulators that freeze iteration order into an ordered container
_ORDERED_ACCUMULATORS = {"append", "extend", "insert", "appendleft"}


class UnorderedSetIterationRule(Rule):
    rule_id = "DET003"
    title = "set iteration order leaking into ordered results"
    invariant = (
        "Iterating a set is PYTHONHASHSEED-dependent for str/tuple elements, "
        "so it differs across worker processes.  Set-typed values may only "
        "feed ordered accumulation (lists, generators, `next(iter(...))`, "
        "`set.pop()`) through an explicit sorted(...)."
    )

    def check(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        scopes: list[ast.AST] = [source.tree]
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            findings.extend(self._check_scope(source, scope))
        return findings

    def _scope_nodes(self, scope: ast.AST) -> list[ast.AST]:
        """Nodes belonging to ``scope`` but not to a nested function."""
        nodes: list[ast.AST] = []
        pending = list(ast.iter_child_nodes(scope))
        while pending:
            node = pending.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nodes.append(node)
            pending.extend(ast.iter_child_nodes(node))
        return nodes

    def _check_scope(self, source: SourceFile, scope: ast.AST) -> list[Finding]:
        from ..engine import _is_set_expression

        set_names = infer_set_names(scope)
        findings: list[Finding] = []
        for node in self._scope_nodes(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expression(node.iter, set_names) and self._orders(node.body):
                    findings.append(self._leak(source, node.iter, "for-loop"))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if self.call_is_argument_of(source, node, _ORDER_ERASING):
                    continue
                for comp in node.generators:
                    if _is_set_expression(comp.iter, set_names):
                        findings.append(self._leak(source, comp.iter, "comprehension"))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(source, node, set_names))
        return findings

    def _check_call(
        self, source: SourceFile, call: ast.Call, set_names: set[str]
    ) -> list[Finding]:
        from ..engine import _is_set_expression

        # next(iter(s)) picks a hash-order-dependent "first" element
        if (
            isinstance(call.func, ast.Name)
            and call.func.id == "iter"
            and call.args
            and _is_set_expression(call.args[0], set_names)
        ):
            parent = source.parent(call)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "next"
            ):
                return [self._leak(source, call, "next(iter(...))")]
        # s.pop() removes a hash-order-dependent element
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "pop"
            and not call.args
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in set_names
        ):
            return [self._leak(source, call, "set.pop()")]
        return []

    @staticmethod
    def _orders(body: list[ast.stmt]) -> bool:
        """Does the loop body feed an ordered accumulator or yield?"""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return True
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ORDERED_ACCUMULATORS
                ):
                    return True
        return False

    def _leak(self, source: SourceFile, node: ast.AST, construct: str) -> Finding:
        return source.finding(
            self.rule_id,
            node,
            f"{construct} consumes set iteration order, which is hash-seed "
            "dependent across processes; wrap the set in sorted(...) or keep "
            "an insertion-ordered structure",
        )


_FS_ITERATORS = {"iterdir", "glob", "rglob"}
_FS_FUNCTIONS = {"os.listdir", "os.scandir"}


class FilesystemOrderRule(Rule):
    rule_id = "DET004"
    title = "unsorted filesystem enumeration"
    invariant = (
        "Directory listing order is filesystem-dependent; every "
        "iterdir()/glob()/rglob()/os.listdir()/os.scandir() result is "
        "consumed through sorted(...) so on-disk layout never changes "
        "behavior."
    )

    def check(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for call in self.walk_calls(source):
            is_fs = False
            label = ""
            if isinstance(call.func, ast.Attribute) and call.func.attr in _FS_ITERATORS:
                is_fs, label = True, f".{call.func.attr}()"
            else:
                name = source.resolver.qualified_name(call.func)
                if name in _FS_FUNCTIONS:
                    is_fs, label = True, f"{name}()"
            if not is_fs:
                continue
            if self.enclosed_by_call(source, call, {"sorted"}):
                continue
            findings.append(
                source.finding(
                    self.rule_id,
                    call,
                    f"{label} enumerates the filesystem in platform-dependent "
                    "order; wrap the call in sorted(...)",
                )
            )
        return findings
