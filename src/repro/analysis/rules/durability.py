"""IO0xx — durability rules.

Crash-safety rests on one discipline (LogBase-style): every persisted
artifact is written tmp + flush + fsync + ``os.replace`` + dir-fsync, and
the only module that composes those primitives is ``utils/atomic_io.py``.
A raw ``open(path, "w")`` anywhere else can leave a torn file a recovery
path will later trust.  The write-ahead log's append-mode handle is the one
deliberate exception, carried as an inline suppression where it lives so
the justification sits next to the code.
"""

from __future__ import annotations

import ast

from ..engine import SourceFile
from ..findings import Finding
from .base import Rule

_OPEN_FUNCTIONS = {"open", "io.open", "os.fdopen"}
_WRITE_MODE_CHARS = set("wax+")
_PATH_WRITERS = {"write_text", "write_bytes"}
_COMMIT_PRIMITIVES = {
    "os.replace": "rename-over-live-path",
    "os.rename": "rename-over-live-path",
    "os.fsync": "fsync",
    "os.link": "hard-link commit",
}


def _mode_argument(call: ast.Call) -> ast.expr | None:
    if len(call.args) >= 2:
        return call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


def _is_write_mode(mode: ast.expr | None) -> bool | None:
    """True/False for a literal mode; None when the mode is dynamic."""
    if mode is None:
        return False  # bare open(path) reads
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS & set(mode.value))
    return None


class RawWriteOpenRule(Rule):
    rule_id = "IO001"
    title = "raw write-mode open() outside utils/atomic_io.py"
    invariant = (
        "Persisted artifacts are written only through utils/atomic_io.py "
        "(tmp + fsync + os.replace + dir-fsync); write/append-mode open() "
        "elsewhere can tear files across a crash."
    )

    def check(self, source: SourceFile) -> list[Finding]:
        if self.config.is_atomic_io_owner(source.path):
            return []
        findings: list[Finding] = []
        for call in self.walk_calls(source):
            name = source.resolver.qualified_name(call.func)
            if name not in _OPEN_FUNCTIONS:
                continue
            write_mode = _is_write_mode(_mode_argument(call))
            if write_mode is False:
                continue
            detail = (
                "opens a file in a write/append mode"
                if write_mode
                else "opens a file with a dynamic mode (cannot prove read-only)"
            )
            findings.append(
                source.finding(
                    self.rule_id,
                    call,
                    f"{name}() {detail}; route the write through "
                    "repro.utils.atomic_io so a crash cannot tear it",
                )
            )
        return findings


class RawPathWriteRule(Rule):
    rule_id = "IO002"
    title = "Path.write_text/write_bytes outside utils/atomic_io.py"
    invariant = (
        "Path.write_text()/write_bytes() truncate in place — a crash "
        "mid-write leaves a torn file; use atomic_write_text/atomic_write_bytes."
    )

    def check(self, source: SourceFile) -> list[Finding]:
        if self.config.is_atomic_io_owner(source.path):
            return []
        findings: list[Finding] = []
        for call in self.walk_calls(source):
            if isinstance(call.func, ast.Attribute) and call.func.attr in _PATH_WRITERS:
                findings.append(
                    source.finding(
                        self.rule_id,
                        call,
                        f".{call.func.attr}() truncates the target in place; use "
                        f"repro.utils.atomic_io.atomic_{call.func.attr} instead",
                    )
                )
        return findings


class CommitPrimitiveRule(Rule):
    rule_id = "IO003"
    title = "raw commit primitive outside utils/atomic_io.py"
    invariant = (
        "os.replace/os.rename/os.fsync are the atomic-commit building "
        "blocks; composing them ad hoc skips the fsync-before-rename and "
        "dir-fsync-after steps, so only utils/atomic_io.py may call them."
    )

    def check(self, source: SourceFile) -> list[Finding]:
        if self.config.is_atomic_io_owner(source.path):
            return []
        findings: list[Finding] = []
        for call in self.walk_calls(source):
            name = source.resolver.qualified_name(call.func)
            kind = _COMMIT_PRIMITIVES.get(name or "")
            if kind is None:
                continue
            findings.append(
                source.finding(
                    self.rule_id,
                    call,
                    f"{name}() is a raw {kind} primitive; use the "
                    "repro.utils.atomic_io helpers so the full "
                    "fsync/replace/dir-fsync sequence runs",
                )
            )
        return findings
