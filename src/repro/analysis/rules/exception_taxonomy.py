"""EXC0xx — exception-taxonomy rules.

Callers of the library catch :class:`repro.exceptions.ReproError` (or a
subsystem subclass) to distinguish "the library rejected this input/state"
from genuine bugs.  A bare ``raise ValueError`` in a core module silently
escapes that contract.  ``TypeError`` for argument-type misuse and
``NotImplementedError`` for abstract methods stay allowed — both are
idiomatic Python signaling a *programming* error at the call site, not a
library condition callers should handle.
"""

from __future__ import annotations

import ast

from ..engine import SourceFile
from ..findings import Finding
from .base import Rule

_FORBIDDEN = {
    "Exception",
    "BaseException",
    "ValueError",
    "RuntimeError",
    "KeyError",
    "IndexError",
    "ArithmeticError",
    "OSError",
    "IOError",
}


class BuiltinRaiseRule(Rule):
    rule_id = "EXC001"
    title = "builtin exception raised in a taxonomy-scoped module"
    invariant = (
        "Core modules raise repro.exceptions types (ReproError subclasses — "
        "ConfigurationError/StateError double as ValueError/RuntimeError for "
        "compatibility), never bare Exception/ValueError/RuntimeError, so "
        "callers can reliably catch ReproError."
    )

    def check(self, source: SourceFile) -> list[Finding]:
        if not self.config.in_taxonomy_scope(source.path):
            return []
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            if isinstance(target, ast.Name) and target.id in _FORBIDDEN:
                findings.append(
                    source.finding(
                        self.rule_id,
                        node,
                        f"raise {target.id}: core modules raise the "
                        "repro.exceptions taxonomy (e.g. ConfigurationError "
                        "for bad arguments, StateError for lifecycle misuse)",
                    )
                )
        return findings
