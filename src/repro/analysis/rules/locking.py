"""LOCK0xx — lock-discipline rules.

The classes the query service shares across threads declare, in
``analysis/config.py``, which attributes their lock guards.  This rule
checks the declaration mechanically: inside a guarded class, every
``self.<guarded>`` access must sit lexically inside a ``with self.<lock>:``
block.  ``__init__`` is exempt (construction happens-before publication),
and a documented benign race opts out per line with
``# repro: allow[LOCK001] -- reason``.
"""

from __future__ import annotations

import ast

from ..engine import SourceFile
from ..findings import Finding
from .base import Rule


def _with_acquires(node: ast.With, lock_attribute: str) -> bool:
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and expr.attr == lock_attribute
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return True
    return False


class GuardedAttributeRule(Rule):
    rule_id = "LOCK001"
    title = "guarded attribute touched outside its owning lock"
    invariant = (
        "Classes shared across threads (ShardedPlanner, AnswerCache) declare "
        "lock-guarded attributes; every read or write of a guarded attribute "
        "happens inside `with self._lock:` (construction in __init__ exempt)."
    )

    def check(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            contract = self.config.lock_contracts.get(node.name)
            if contract is None:
                continue
            findings.extend(self._check_class(source, node, contract))
        return findings

    def _check_class(self, source: SourceFile, cls: ast.ClassDef, contract) -> list[Finding]:
        findings: list[Finding] = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            findings.extend(self._check_method(source, method, contract))
        return findings

    def _check_method(self, source: SourceFile, method, contract) -> list[Finding]:
        findings: list[Finding] = []
        # every self.<guarded> attribute node, minus those under a lock With
        def visit(node: ast.AST, locked: bool) -> None:
            if isinstance(node, ast.With) and _with_acquires(node, contract.lock_attribute):
                for child in ast.iter_child_nodes(node):
                    visit(child, True)
                return
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in contract.guarded_attributes
                and not locked
            ):
                findings.append(
                    source.finding(
                        self.rule_id,
                        node,
                        f"self.{node.attr} is guarded by self."
                        f"{contract.lock_attribute} but accessed outside it "
                        f"in {method.name}()",
                    )
                )
            for child in ast.iter_child_nodes(node):
                visit(child, locked)

        visit(method, False)
        return findings
