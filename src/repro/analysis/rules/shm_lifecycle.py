"""SHM0xx — shared-memory lifecycle rules.

``utils/shm.py`` owns every ``multiprocessing.shared_memory`` segment: its
pid-guarded registry is what guarantees segments are unlinked exactly once
(by their creator), survive resource-tracker interference, and never outlive
the re-attach barrier of the hot-swap protocol.  A direct ``SharedMemory``
anywhere else reintroduces the leak/double-unlink classes that registry
exists to kill.
"""

from __future__ import annotations

import ast

from ..engine import SourceFile
from ..findings import Finding
from .base import Rule

_SHM_MODULE = "multiprocessing.shared_memory"


class DirectSharedMemoryRule(Rule):
    rule_id = "SHM001"
    title = "direct multiprocessing.shared_memory use outside utils/shm.py"
    invariant = (
        "Only utils/shm.py touches multiprocessing.shared_memory; everyone "
        "else creates/attaches/releases segments through its pid-guarded "
        "registry (create_segment/attach_segment/release_segment)."
    )

    def check(self, source: SourceFile) -> list[Finding]:
        if self.config.is_shm_owner(source.path):
            return []
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name.startswith(_SHM_MODULE):
                        findings.append(self._finding(source, node, name.name))
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith(_SHM_MODULE):
                    findings.append(self._finding(source, node, node.module))
                elif node.module == "multiprocessing":
                    for name in node.names:
                        if name.name == "shared_memory":
                            findings.append(self._finding(source, node, _SHM_MODULE))
            elif isinstance(node, ast.Attribute):
                qualified = source.resolver.qualified_name(node)
                if qualified and qualified.startswith(_SHM_MODULE + "."):
                    findings.append(self._finding(source, node, qualified))
        return findings

    def _finding(self, source: SourceFile, node: ast.AST, what: str) -> Finding:
        return source.finding(
            self.rule_id,
            node,
            f"{what} used directly; go through repro.utils.shm's segment "
            "registry so lifecycle (create/attach/unlink/atexit sweep) stays "
            "single-owner",
        )
