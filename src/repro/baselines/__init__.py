"""Baselines used in the paper's experiments: the Exact database scan and the
independent-edge probability model (IND)."""

from repro.baselines.exact_scan import ExactScanBaseline
from repro.baselines.independent_model import to_independent_model, database_to_independent

__all__ = ["ExactScanBaseline", "to_independent_model", "database_to_independent"]
