"""The ``Exact`` baseline: scan every probabilistic graph and compute its SSP
without any index (Section 6).

The paper's Exact baseline evaluates Equation 21 (inclusion–exclusion over
the relaxed-query embeddings) per graph; for very small graphs a literal
possible-world enumeration is also available.  Both are exponential — that is
the point of the comparison in Figure 13 — so the scan accepts per-graph caps
and falls back to sampling when a graph exceeds them (the fallback keeps the
benchmark harness runnable at every database size while preserving the
dominant exponential cost on the graphs that fit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import VERIFY_STREAM
from repro.core.planner import validate_top_k_query
from repro.core.relaxation import RelaxationConfig, relax_query
from repro.core.results import QueryAnswer, QueryResult
from repro.core.verification import VerificationConfig, Verifier
from repro.exceptions import VerificationError
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.utils.rng import RandomLike, derive_rng, ensure_rng, rng_root
from repro.utils.timer import Timer


@dataclass
class ExactScanConfig:
    """Caps and strategy for the exact scan."""

    method: str = "inclusion_exclusion"  # or "enumeration"
    relaxation: RelaxationConfig = field(default_factory=RelaxationConfig)
    verification: VerificationConfig = field(default_factory=VerificationConfig)
    fallback_to_sampling: bool = True


class ExactScanBaseline:
    """Answer T-PS queries by exhaustively verifying every graph."""

    def __init__(
        self, graphs: list[ProbabilisticGraph], config: ExactScanConfig | None = None
    ) -> None:
        self.graphs = list(graphs)
        self.config = config or ExactScanConfig()

    def query(
        self,
        query_graph: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        rng: RandomLike = None,
    ) -> QueryResult:
        """Scan the whole database, verifying each graph exactly."""
        generator = ensure_rng(rng)
        verifier = Verifier(
            config=self.config.verification,
            relaxation=self.config.relaxation,
            rng=generator,
        )
        relaxed = relax_query(query_graph, distance_threshold, self.config.relaxation)
        result = QueryResult()
        result.statistics.database_size = len(self.graphs)
        result.statistics.relaxed_query_count = len(relaxed)
        timer = Timer()
        with timer:
            for graph_id, graph in enumerate(self.graphs):
                result.statistics.verified += 1
                probability = self._verify(
                    verifier, query_graph, graph, distance_threshold, relaxed
                )
                if probability >= probability_threshold:
                    result.answers.append(
                        QueryAnswer(
                            graph_id=graph_id,
                            graph_name=graph.name,
                            probability=probability,
                            decided_by="verification",
                        )
                    )
        result.statistics.verification_seconds = timer.elapsed
        result.statistics.total_seconds = timer.elapsed
        result.statistics.answers = len(result.answers)
        return result

    def top_k(
        self,
        query_graph: LabeledGraph,
        k: int,
        distance_threshold: int,
        rng: RandomLike = None,
    ) -> QueryResult:
        """Reference top-k: verify *every* graph, rank by ``(-p, graph_id)``.

        The index-free ground truth the pipeline's ``query_top_k`` is tested
        against.  Each graph's verifier draws from the per-graph stream
        ``(root, VERIFY_STREAM, graph_id)`` — the planner's scheme — so under
        any verification method both sides compute the *same* per-graph
        probability and the comparison is exact, not approximate.  Graphs
        with zero probability are never answers, so fewer than ``k`` answers
        may return.
        """
        validate_top_k_query(query_graph, k, distance_threshold)
        root = rng_root(rng)
        verifier = Verifier(
            config=self.config.verification, relaxation=self.config.relaxation
        )
        relaxed = relax_query(query_graph, distance_threshold, self.config.relaxation)
        result = QueryResult()
        result.statistics.database_size = len(self.graphs)
        result.statistics.relaxed_query_count = len(relaxed)
        ranked: list[tuple[float, int, str | None]] = []
        timer = Timer()
        with timer:
            for graph_id, graph in enumerate(self.graphs):
                result.statistics.verified += 1
                verifier.rng = derive_rng(root, VERIFY_STREAM, graph_id)
                probability = self._verify(
                    verifier, query_graph, graph, distance_threshold, relaxed
                )
                if probability > 0.0:
                    ranked.append((probability, graph_id, graph.name))
            ranked.sort(key=lambda entry: (-entry[0], entry[1]))
            for probability, graph_id, name in ranked[:k]:
                result.answers.append(
                    QueryAnswer(
                        graph_id=graph_id,
                        graph_name=name,
                        probability=probability,
                        decided_by="verification",
                    )
                )
        result.statistics.verification_seconds = timer.elapsed
        result.statistics.total_seconds = timer.elapsed
        result.statistics.answers = len(result.answers)
        return result

    def _verify(
        self,
        verifier: Verifier,
        query_graph: LabeledGraph,
        graph: ProbabilisticGraph,
        distance_threshold: int,
        relaxed: list[LabeledGraph],
    ) -> float:
        try:
            return verifier.subgraph_similarity_probability(
                query_graph,
                graph,
                distance_threshold,
                relaxed_queries=relaxed,
                method=self.config.method,
            )
        except VerificationError:
            if not self.config.fallback_to_sampling:
                raise
            return verifier.subgraph_similarity_probability(
                query_graph,
                graph,
                distance_threshold,
                relaxed_queries=relaxed,
                method="sampling",
            )
