"""The independent-edge probability model (IND baseline of Figure 14).

The paper compares answer quality under the correlated model (COR, joint
probability tables over neighbor edge sets) against the classical independent
model (IND).  The conversion keeps every edge's *marginal* existence
probability but rebuilds the joint tables as products of independent
Bernoullis, discarding all correlation structure.
"""

from __future__ import annotations

from repro.graphs.probabilistic_graph import NeighborEdgeFactor, ProbabilisticGraph
from repro.probability.jpt import JointProbabilityTable


def to_independent_model(graph: ProbabilisticGraph) -> ProbabilisticGraph:
    """Return a copy of ``graph`` whose factors assume independent edges.

    Edge marginals are preserved; only the correlation structure inside each
    neighbor edge set is dropped.
    """
    factors = []
    for factor in graph.factors:
        marginals = {key: factor.jpt.edge_marginal(key) for key in factor.edges}
        independent = JointProbabilityTable.from_independent_marginals(marginals)
        factors.append(NeighborEdgeFactor(tuple(factor.edges), independent))
    return ProbabilisticGraph(graph.skeleton, factors, name=graph.name)


def database_to_independent(graphs: list[ProbabilisticGraph]) -> list[ProbabilisticGraph]:
    """Convert a whole database to the independent model."""
    return [to_independent_model(graph) for graph in graphs]
