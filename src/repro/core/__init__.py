"""Query-processing core: relaxation, tightest SSP bounds, pruning
conditions, verification, and the end-to-end search engine."""

from repro.core.relaxation import relax_query, RelaxationConfig
from repro.core.set_cover import greedy_weighted_set_cover, exhaustive_weighted_set_cover
from repro.core.quadratic_program import solve_lsim_rounding, QPResult
from repro.core.pruning import ProbabilisticPruner, PruningConfig, PruningDecision, SspBounds
from repro.core.verification import Verifier, VerificationConfig
from repro.core.results import QueryAnswer, QueryResult, QueryStatistics
from repro.core.search_engine import ProbabilisticGraphDatabase, SearchConfig

__all__ = [
    "QueryResult",
    "relax_query",
    "RelaxationConfig",
    "greedy_weighted_set_cover",
    "exhaustive_weighted_set_cover",
    "solve_lsim_rounding",
    "QPResult",
    "ProbabilisticPruner",
    "PruningConfig",
    "PruningDecision",
    "SspBounds",
    "Verifier",
    "VerificationConfig",
    "QueryAnswer",
    "QueryStatistics",
    "ProbabilisticGraphDatabase",
    "SearchConfig",
]
