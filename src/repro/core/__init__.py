"""Query-processing core: relaxation, tightest SSP bounds, pruning
conditions, verification, the reusable query planner, and the end-to-end
search engine."""

from repro.core.relaxation import relax_query, RelaxationConfig
from repro.core.set_cover import greedy_weighted_set_cover, exhaustive_weighted_set_cover
from repro.core.quadratic_program import solve_lsim_rounding, QPResult
from repro.core.pruning import (
    FeatureContainment,
    ProbabilisticPruner,
    PruningConfig,
    PruningDecision,
    SspBounds,
)
from repro.core.verification import Verifier, VerificationConfig
from repro.core.results import (
    QueryAnswer,
    QueryResult,
    QueryStatistics,
    StageStatistics,
    aggregate_statistics,
)
from repro.core.pipeline import (
    CandidateSet,
    PipelineContext,
    PipelineStage,
    PmiPruningStage,
    QueryPipeline,
    StructuralFilterStage,
    ThresholdState,
    TopKPartial,
    VerificationStage,
    build_default_pipeline,
    merge_top_k_partials,
    replay_top_k,
)
from repro.core.planner import (
    QueryPlan,
    QueryPlanner,
    validate_query,
    validate_top_k_query,
)
from repro.core.search_engine import ProbabilisticGraphDatabase, SearchConfig
from repro.core.sharding import (
    DatabaseShard,
    ShardDescriptor,
    ShardPlane,
    ShardSpec,
    ShardedPlanner,
    materialize_shard,
    merge_query_results,
    partition_ranges,
    publish_shard,
    route_to_smallest,
)
from repro.core.catalog import (
    GraphCatalog,
    SegmentedPmiView,
    SegmentedStructuralView,
)
from repro.core.wal import WriteAheadLog, wal_filename

__all__ = [
    "QueryResult",
    "relax_query",
    "RelaxationConfig",
    "greedy_weighted_set_cover",
    "exhaustive_weighted_set_cover",
    "solve_lsim_rounding",
    "QPResult",
    "FeatureContainment",
    "ProbabilisticPruner",
    "PruningConfig",
    "PruningDecision",
    "SspBounds",
    "Verifier",
    "VerificationConfig",
    "QueryAnswer",
    "QueryStatistics",
    "StageStatistics",
    "aggregate_statistics",
    "CandidateSet",
    "PipelineContext",
    "PipelineStage",
    "PmiPruningStage",
    "QueryPipeline",
    "StructuralFilterStage",
    "ThresholdState",
    "TopKPartial",
    "VerificationStage",
    "build_default_pipeline",
    "merge_top_k_partials",
    "replay_top_k",
    "QueryPlan",
    "QueryPlanner",
    "validate_query",
    "validate_top_k_query",
    "ProbabilisticGraphDatabase",
    "SearchConfig",
    "DatabaseShard",
    "ShardDescriptor",
    "ShardPlane",
    "ShardSpec",
    "ShardedPlanner",
    "materialize_shard",
    "publish_shard",
    "merge_query_results",
    "partition_ranges",
    "route_to_smallest",
    "GraphCatalog",
    "SegmentedPmiView",
    "SegmentedStructuralView",
    "WriteAheadLog",
    "wal_filename",
]
