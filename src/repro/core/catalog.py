"""The mutable graph-database layer: a catalog over immutable base indexes.

The PMI and structural indexes of the paper are built once over a static
database.  :class:`GraphCatalog` turns that snapshot into a *mutable*
database without ever rebuilding it wholesale, borrowing the standard
log-structured storage recipe (LogBase-style): the expensive base indexes
stay **immutable**, mutations land in a small **append-only delta segment**,
deletions become entries in a **tombstone mask**, and :meth:`compact`
periodically folds everything back into fresh dense base matrices.

Lifecycle of one shard's storage::

    rows:       [ base segment (immutable) | delta segment (append-only) ]
    tombstone:  [ F F T F ...              | F T ...                     ]
                       ^ remove_graph()        ^ update_graph() tombstones
                                                 the old row, re-adds under
                                                 the same external id

At query time the planner stages evaluate base *and* delta columns — the
structural deficit test runs one vectorized pass per segment, the PMI stage
reads zero-copy rows from whichever segment owns the candidate — and the
tombstone mask is applied before any stage runs, so dead rows cost nothing
beyond their (reclaimable-by-compaction) storage.

**Determinism contract.**  Every graph carries a *stable external id*,
assigned at :meth:`add_graph` time and preserved across
:meth:`update_graph` and :meth:`compact`.  All per-graph RNG streams (index
build, pruning, verification) and all orderings (answer sort, top-k visit
order, top-k tie-breaks) key on that id — never on a row position.  As a
consequence, threshold and top-k answers over a mutated catalog are
**byte-identical** — probabilities, ranks, and per-stage counters — to a
from-scratch build over the *equivalent database*: the same
``(external id → graph)`` mapping, the catalog's pinned feature set, and
the catalog's 64-bit build root, in **any** row order.  The same holds for
every shard count: sharded answers equal sequential answers (PR 2/3
invariants), so mutation, compaction, and resharding are all invisible in
query output.

**Sharding and placement.**  With ``num_shards > 1`` each shard owns its own
base/delta/tombstone triple.  ``add_graph`` routes the new graph to the
shard with the fewest live graphs (:func:`repro.core.sharding.route_to_smallest`);
``compact()`` rebalances by collecting all live graphs (ordered by external
id) and re-partitioning them contiguously with
:func:`repro.core.sharding.partition_ranges` — the same balanced-split rule
static builds use.  Queries fan out through the ordinary
:class:`~repro.core.sharding.ShardedPlanner`; mutations invalidate the
cached planner (and its worker pool), so read-heavy phases amortize the
rebuild while writes stay cheap.

That invalidation is also the shared-memory **hot-swap protocol**: a pooled
planner publishes each shard once into a shared-memory
:class:`~repro.core.sharding.ShardPlane` generation that workers attach
read-only.  Any mutation (and :meth:`compact`) closes the cached planner —
the pool shutdown inside :meth:`ShardedPlanner.close` joins every worker
*before* the segments unlink, so no attachment is ever torn down under a
running query — and the next query publishes a fresh generation from the
new store state and spins up workers that re-attach to it.  Old and new
generations never coexist for a reader, the swap is one atomic planner
replacement, and answers stay byte-identical throughout because workers map
the exact arrays the catalog computed (``active_shm_segments()`` exposes
the live generation for leak checks).

The feature set is **pinned** at catalog construction: delta rows are
indexed against the base features, and ``compact()`` deliberately does not
re-mine (that would change pruning behaviour and break the rebuild-parity
contract).  Re-mining is a full :meth:`GraphCatalog.build` — by design an
explicit, offline decision.

**Durability.**  A catalog becomes *durable* by attaching a directory
(:meth:`persist`, or ``directory=`` on :meth:`build` / :meth:`from_index`):
the current state is snapshotted — per shard, the graphs (JSON database),
the base PMI (npz + JSON), and the structural count matrix, all written
atomically — and from then on every ``add_graph`` / ``remove_graph`` /
``update_graph`` appends one checksummed, fsync'd record to the generation's
write-ahead log (:mod:`repro.core.wal`) *before* the in-memory mutation
applies.  :meth:`open` reverses the recipe: load the snapshot named by the
atomically swapped ``CURRENT`` pointer, truncate a torn final WAL record if
a crash left one, and replay the tail through the ordinary mutation paths —
the stable-external-id contract then makes the recovered catalog's answers
byte-identical to a from-scratch build over the surviving database.
``compact()`` rolls the generation: new snapshot, new empty log, one atomic
``CURRENT`` swap as the commit point, old generation retired afterwards
(unlink semantics keep already-open readers unharmed; a crash anywhere
before the swap leaves the previous generation fully authoritative).
"""

from __future__ import annotations

import contextlib
import json
import operator
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.planner import QueryPlanner, validate_query, validate_top_k_query
from repro.core.results import QueryResult
from repro.core.sharding import (
    DatabaseShard,
    ShardSpec,
    ShardedPlanner,
    partition_ranges,
    route_to_smallest,
)
from repro.core.wal import WriteAheadLog, wal_filename
from repro.exceptions import CatalogError, ConfigurationError, WalError
from repro.graphs.io import (
    load_database,
    probabilistic_graph_from_dict,
    probabilistic_graph_to_dict,
    save_database,
)
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.pmi.bounds import BoundConfig
from repro.pmi.features import FeatureMiner, FeatureSelectionConfig
from repro.pmi.index import PMIRow, ProbabilisticMatrixIndex
from repro.structural.feature_index import StructuralFeatureIndex
from repro.utils.atomic_io import (
    atomic_write_text,
    atomic_writer,
    discard_stale_tmp_files,
    fsync_directory,
)
from repro.utils.rng import RandomLike, rng_root

__all__ = ["GraphCatalog", "SegmentedPmiView", "SegmentedStructuralView"]

SNAPSHOT_FORMAT_VERSION = 1
CURRENT_FILENAME = "CURRENT"
_SNAPSHOT_META_FILENAME = "catalog.json"
_SHARD_GRAPHS_FILENAME = "graphs.json"
_SHARD_COUNTS_FILENAME = "structural_counts.npy"


def _generation_dirname(generation: int) -> str:
    return f"gen_{generation:08d}"


@dataclass
class _Durability:
    """A durable catalog's on-disk attachment: directory, generation, log."""

    directory: Path
    generation: int
    wal: WriteAheadLog


# ----------------------------------------------------------------------
# segmented (base + delta) index views
# ----------------------------------------------------------------------
class SegmentedPmiView:
    """Read-only PMI protocol over a base segment and a delta segment.

    Storage row ``r`` resolves to base row ``r`` when ``r < len(base)`` and
    to delta row ``r - len(base)`` otherwise; returned :class:`PMIRow` views
    stay zero-copy into whichever segment owns the row.  The feature columns
    are shared (the delta is always built against the base's pinned feature
    set), so pruning code cannot tell a segmented view from a dense index.
    """

    def __init__(
        self, base: ProbabilisticMatrixIndex, delta: ProbabilisticMatrixIndex
    ) -> None:
        self.base = base
        self.delta = delta

    @property
    def features(self):
        return self.base.features

    @property
    def num_graphs(self) -> int:
        return self.base.num_graphs + self.delta.num_graphs

    def row(self, graph_id: int) -> PMIRow:
        base_rows = self.base.num_graphs
        if graph_id < base_rows:
            segment_row = self.base.row(graph_id)
        else:
            segment_row = self.delta.row(graph_id - base_rows)
        return PMIRow(
            graph_id=graph_id,
            feature_ids=segment_row.feature_ids,
            lower=segment_row.lower,
            upper=segment_row.upper,
            present=segment_row.present,
        )

    def rows(self, graph_ids) -> list[PMIRow]:
        return [self.row(int(graph_id)) for graph_id in graph_ids]


class SegmentedStructuralView:
    """Structural-index protocol over a base segment and a delta segment.

    ``deficit_prunable_mask`` evaluates the vectorized Grafil test once per
    segment and concatenates — base columns and delta columns, exactly as the
    catalog stores them — leaving the caller (the pipeline's structural
    stage) to apply the tombstone mask via its ``active`` argument.
    """

    def __init__(
        self, base: StructuralFeatureIndex, delta: StructuralFeatureIndex
    ) -> None:
        self.base = base
        self.delta = delta

    @property
    def is_built(self) -> bool:
        return self.base.is_built and self.delta.is_built

    @property
    def features(self):
        return self.base.features

    @property
    def num_graphs(self) -> int:
        return self.base.num_graphs + self.delta.num_graphs

    def query_profile(self, query: LabeledGraph) -> dict[int, dict]:
        # depends only on the (shared) feature set, so the base answers it
        return self.base.query_profile(query)

    def deficit_prunable_mask(
        self, query_profile: dict[int, dict], distance_threshold: int
    ) -> np.ndarray:
        return np.concatenate(
            [
                self.base.deficit_prunable_mask(query_profile, distance_threshold),
                self.delta.deficit_prunable_mask(query_profile, distance_threshold),
            ]
        )


# ----------------------------------------------------------------------
# one shard's storage
# ----------------------------------------------------------------------
class _ShardStore:
    """Base segment + delta segment + tombstone mask for one shard."""

    def __init__(
        self,
        graphs: list[ProbabilisticGraph],
        external_ids,
        base_pmi: ProbabilisticMatrixIndex,
        base_structural: StructuralFeatureIndex,
    ) -> None:
        self.graphs = list(graphs)
        self.external_ids = np.asarray(external_ids, dtype=np.int64)
        self.tombstone = np.zeros(len(self.graphs), dtype=bool)
        self.base_pmi = base_pmi
        self.base_structural = base_structural
        self.delta_pmi = ProbabilisticMatrixIndex.empty(
            base_pmi.features,
            feature_config=base_pmi.feature_config,
            bound_config=base_pmi.bound_config,
        )
        self.delta_structural = StructuralFeatureIndex.from_counts(
            base_pmi.features,
            np.zeros((0, len(base_pmi.features)), dtype=np.int32),
            embedding_limit=base_pmi.feature_config.embedding_limit,
        )

    @property
    def storage_rows(self) -> int:
        return len(self.graphs)

    @property
    def delta_rows(self) -> int:
        return self.delta_pmi.num_graphs

    @property
    def live_count(self) -> int:
        return int(np.count_nonzero(~self.tombstone))

    def live_positions(self) -> np.ndarray:
        return np.flatnonzero(~self.tombstone)

    def append(self, graph: ProbabilisticGraph, external_id: int, root: int) -> int:
        """Index one new graph into the delta segment; returns its storage row."""
        self.delta_pmi.append([graph], [external_id], rng=root)
        self.delta_structural.append([graph.skeleton])
        self.graphs.append(graph)
        self.external_ids = np.append(self.external_ids, np.int64(external_id))
        self.tombstone = np.append(self.tombstone, False)
        return len(self.graphs) - 1

    def make_shard(self, shard_id: int) -> DatabaseShard:
        """A :class:`DatabaseShard` over this store's segmented live view."""
        return DatabaseShard(
            spec=ShardSpec(shard_id=shard_id, start=0, stop=self.live_count),
            graphs=self.graphs,
            pmi=SegmentedPmiView(self.base_pmi, self.delta_pmi),
            structural_index=SegmentedStructuralView(
                self.base_structural, self.delta_structural
            ),
            graph_ids=self.external_ids,
            active_mask=~self.tombstone,
        )

    def live_slice(self):
        """``(graphs, external_ids, pmi, counts)`` of the live rows, in
        storage order — the raw material of compaction and rebalancing."""
        positions = self.live_positions()
        base_rows = self.base_pmi.num_graphs
        base_pos = [int(p) for p in positions if p < base_rows]
        delta_pos = [int(p) - base_rows for p in positions if p >= base_rows]
        pmi = ProbabilisticMatrixIndex.concat_rows(
            [self.base_pmi.subset(base_pos), self.delta_pmi.subset(delta_pos)]
        )
        counts = np.vstack(
            [
                np.asarray(self.base_structural.counts_matrix())[base_pos],
                np.asarray(self.delta_structural.counts_matrix())[delta_pos],
            ]
        )
        graphs = [self.graphs[int(p)] for p in positions]
        ids = self.external_ids[positions]
        return graphs, ids, pmi, counts


# ----------------------------------------------------------------------
# the catalog
# ----------------------------------------------------------------------
class GraphCatalog:
    """A mutable, queryable probabilistic graph database.

    Construct with :meth:`build` (index from scratch) or via
    :meth:`repro.core.search_engine.ProbabilisticGraphDatabase.to_catalog`
    (adopt an already-built sequential index).  Query methods mirror the
    engine (``query`` / ``query_many`` / ``query_top_k`` /
    ``query_top_k_many``) and honour the same determinism contracts; see the
    module docstring for the mutation/compaction lifecycle.
    """

    def __init__(
        self,
        stores: list[_ShardStore],
        feature_config: FeatureSelectionConfig,
        bound_config: BoundConfig,
        root: int,
        num_shards: int,
        max_workers: int | None,
    ) -> None:
        if not stores:
            raise CatalogError("a catalog needs at least one shard store")
        self._stores = stores
        self._feature_config = feature_config
        self._bound_config = bound_config
        self._root = root
        self._num_shards = num_shards
        self._max_workers = max_workers
        self._durability: _Durability | None = None
        self._wal_suppressed = False
        self._planner_cache: QueryPlanner | ShardedPlanner | None = None
        self._mutation_generation = 0
        # external id -> (store index, storage row); covers live rows only
        self._live: dict[int, tuple[int, int]] = {}
        next_id = 0
        for store_index, store in enumerate(stores):
            for position in store.live_positions():
                external_id = int(store.external_ids[position])
                if external_id in self._live:
                    raise CatalogError(
                        f"external id {external_id} is live in two shards"
                    )
                self._live[external_id] = (store_index, int(position))
                next_id = max(next_id, external_id + 1)
        self._next_external_id = next_id

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graphs: list[ProbabilisticGraph],
        feature_config: FeatureSelectionConfig | None = None,
        bound_config: BoundConfig | None = None,
        rng: RandomLike = None,
        num_shards: int = 1,
        max_workers: int | None = None,
        directory: str | Path | None = None,
    ) -> "GraphCatalog":
        """Mine features once, build the base indexes, seed external ids 0..N-1.

        With the same ``rng`` (an int seed, for reproducibility) this base
        build is cell-for-cell identical to
        ``ProbabilisticGraphDatabase.build_index(rng=...)`` over the same
        graphs — the catalog only *adds* the mutation layer on top.  Passing
        a ``directory`` makes the catalog durable from birth (see
        :meth:`persist`).
        """
        if not graphs:
            raise CatalogError("the catalog needs at least one probabilistic graph")
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards!r}")
        feature_cfg = feature_config or FeatureSelectionConfig()
        bound_cfg = bound_config or BoundConfig()
        root = rng_root(rng)
        features = FeatureMiner(feature_cfg).mine(graphs)
        external_ids = np.arange(len(graphs), dtype=np.int64)
        specs = partition_ranges(len(graphs), num_shards)
        stores = []
        for spec in specs:
            slice_graphs = graphs[spec.start : spec.stop]
            slice_ids = external_ids[spec.start : spec.stop]
            base_pmi = ProbabilisticMatrixIndex(
                feature_config=feature_cfg, bound_config=bound_cfg
            ).build(slice_graphs, features=features, rng=root, graph_ids=slice_ids)
            base_structural = StructuralFeatureIndex(
                embedding_limit=feature_cfg.embedding_limit
            ).build([graph.skeleton for graph in slice_graphs], features)
            stores.append(
                _ShardStore(slice_graphs, slice_ids, base_pmi, base_structural)
            )
        catalog = cls(stores, feature_cfg, bound_cfg, root, num_shards, max_workers)
        if directory is not None:
            catalog.persist(directory)
        return catalog

    @classmethod
    def from_index(
        cls,
        graphs: list[ProbabilisticGraph],
        pmi: ProbabilisticMatrixIndex,
        structural_index: StructuralFeatureIndex,
        num_shards: int = 1,
        max_workers: int | None = None,
        directory: str | Path | None = None,
    ) -> "GraphCatalog":
        """Adopt an already-built (or loaded) sequential index as the base.

        External ids are the index's row positions ``0..N-1`` — exactly the
        stable ids the static build salted its RNG streams with, so adopted
        catalogs answer identically to the engine they came from.  The index
        must carry its ``build_root`` (recorded by every build since the
        catalog layer; older persisted payloads lack it) because delta
        appends must derive their streams from the same root.
        """
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards!r}")
        if pmi.database_size != len(graphs):
            raise CatalogError(
                f"base PMI covers {pmi.database_size} graphs, got {len(graphs)}"
            )
        if pmi.build_root is None:
            raise CatalogError(
                "the base index has no recorded build root (written by builds "
                "since the catalog layer); rebuild it or use GraphCatalog.build()"
            )
        external_ids = np.arange(len(graphs), dtype=np.int64)
        specs = partition_ranges(len(graphs), num_shards)
        stores = [
            _ShardStore(
                graphs[spec.start : spec.stop],
                external_ids[spec.start : spec.stop],
                pmi.subset(spec.global_ids()),
                structural_index.subset(spec.global_ids()),
            )
            for spec in specs
        ]
        catalog = cls(
            stores,
            pmi.feature_config,
            pmi.bound_config,
            pmi.build_root,
            num_shards,
            max_workers,
        )
        if directory is not None:
            catalog.persist(directory)
        return catalog

    # ------------------------------------------------------------------
    # durability (snapshot generations + write-ahead log)
    # ------------------------------------------------------------------
    def persist(self, directory: str | Path) -> "GraphCatalog":
        """Attach ``directory`` and make every future mutation durable.

        Compacts first (snapshots store compacted bases: deltas folded,
        tombstones reclaimed — by the stable-id contract this moves no
        answer), writes snapshot generation 0, starts ``wal_00000000.log``,
        and commits by atomically writing the ``CURRENT`` pointer.  From then
        on each mutation is WAL-logged and fsync'd *before* it applies in
        memory, so :meth:`open` can always recover the exact mutation history
        that completed.  Refuses a directory that already holds a durable
        catalog (use :meth:`open`) and a catalog that is already attached.
        """
        if self._durability is not None:
            raise CatalogError(
                "this catalog is already durable at "
                f"{str(self._durability.directory)!r}"
            )
        directory = Path(directory)
        if (directory / CURRENT_FILENAME).exists():
            raise CatalogError(
                f"{str(directory)!r} already holds a durable catalog; "
                "recover it with GraphCatalog.open()"
            )
        self.compact()
        directory.mkdir(parents=True, exist_ok=True)
        self._write_snapshot(directory, 0)
        wal = WriteAheadLog.create(directory / wal_filename(0), 0)
        self._write_current(directory, 0)
        self._durability = _Durability(directory=directory, generation=0, wal=wal)
        return self

    @classmethod
    def open(
        cls, directory: str | Path, max_workers: int | None = None
    ) -> "GraphCatalog":
        """Recover a durable catalog: snapshot + WAL-tail replay.

        Loads the generation named by ``CURRENT``, opens its write-ahead log
        (truncating a torn final record — the only damage a crash mid-append
        can cause), and replays the surviving mutation records through the
        ordinary ``add_graph``/``remove_graph``/``update_graph`` paths.
        Because every RNG stream and ordering keys on stable external ids,
        the recovered catalog's threshold, exact, and top-k answers are
        byte-identical to a from-scratch build over the surviving
        ``(id → graph)`` database — the crash-recovery invariant the test
        suite kills processes to check.  Debris of uncommitted generations
        and interrupted atomic writes is swept out afterwards.
        """
        directory = Path(directory)
        current_path = directory / CURRENT_FILENAME
        if not current_path.exists():
            raise CatalogError(
                f"no durable catalog at {str(directory)!r} (missing CURRENT); "
                "create one with persist() / build(directory=...)"
            )
        try:
            current = json.loads(current_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
            raise CatalogError(
                f"corrupt CURRENT pointer at {str(current_path)!r}: {error}"
            ) from error
        generation = current.get("generation")
        if current.get("type") != "graph_catalog_current" or not isinstance(
            generation, int
        ):
            raise CatalogError(
                f"malformed CURRENT pointer at {str(current_path)!r}: {current!r}"
            )
        catalog = cls._load_snapshot(directory, generation, max_workers)
        wal, records = WriteAheadLog.open(
            directory / wal_filename(generation), generation=generation
        )
        catalog._durability = _Durability(
            directory=directory, generation=generation, wal=wal
        )
        with catalog._wal_suppression():
            for record in records:
                catalog._apply_record(record)
        catalog._discard_retired(directory, generation)
        return catalog

    @property
    def is_durable(self) -> bool:
        """True when mutations are write-ahead logged to an attached directory."""
        return self._durability is not None

    @property
    def durable_directory(self) -> Path | None:
        """The attached directory, or None for an in-memory catalog."""
        return None if self._durability is None else self._durability.directory

    @property
    def generation(self) -> int | None:
        """The committed snapshot generation (bumped by :meth:`compact`)."""
        return None if self._durability is None else self._durability.generation

    @property
    def wal_records(self) -> int:
        """Mutation records in the active log (0 right after a compact)."""
        if self._durability is None:
            return 0
        return max(self._durability.wal.record_count - 1, 0)

    # -- snapshot writing ----------------------------------------------
    def _write_snapshot(self, directory: Path, generation: int) -> None:
        """Write this (compacted) catalog as snapshot ``generation``.

        Every file goes through the atomic tmp+fsync+rename helpers; the
        generation directory itself only becomes authoritative when the
        ``CURRENT`` pointer names it, so debris of a crash mid-snapshot is
        invisible to :meth:`open` (and removed by the next attempt: a
        generation is only ever written before its commit).
        """
        gen_dir = directory / _generation_dirname(generation)
        if gen_dir.exists():
            shutil.rmtree(gen_dir)
        for store_index, store in enumerate(self._stores):
            shard_dir = gen_dir / f"shard_{store_index:03d}"
            shard_dir.mkdir(parents=True, exist_ok=True)
            save_database(store.graphs, shard_dir / _SHARD_GRAPHS_FILENAME)
            store.base_pmi.save(shard_dir)
            with atomic_writer(shard_dir / _SHARD_COUNTS_FILENAME) as handle:
                np.save(
                    handle,
                    np.asarray(
                        store.base_structural.counts_matrix(), dtype=np.int32
                    ),
                )
            fsync_directory(shard_dir)
        meta = {
            "type": "graph_catalog_snapshot",
            "version": SNAPSHOT_FORMAT_VERSION,
            "build_root": int(self._root),
            "num_shards": int(self._num_shards),
            "next_external_id": int(self._next_external_id),
            "shards": [
                {"external_ids": [int(eid) for eid in store.external_ids]}
                for store in self._stores
            ],
        }
        atomic_write_text(gen_dir / _SNAPSHOT_META_FILENAME, json.dumps(meta))
        fsync_directory(gen_dir)
        fsync_directory(directory)

    @staticmethod
    def _write_current(directory: Path, generation: int) -> None:
        """Atomically point ``CURRENT`` at ``generation`` — the commit."""
        atomic_write_text(
            directory / CURRENT_FILENAME,
            json.dumps(
                {
                    "type": "graph_catalog_current",
                    "version": SNAPSHOT_FORMAT_VERSION,
                    "generation": int(generation),
                }
            ),
        )

    @classmethod
    def _load_snapshot(
        cls, directory: Path, generation: int, max_workers: int | None
    ) -> "GraphCatalog":
        """Reconstruct the catalog a snapshot generation stores."""
        gen_dir = directory / _generation_dirname(generation)
        meta_path = gen_dir / _SNAPSHOT_META_FILENAME
        if not meta_path.exists():
            raise CatalogError(
                f"snapshot generation {generation} at {str(gen_dir)!r} is "
                "missing its catalog.json; the durable directory is damaged"
            )
        try:
            meta = json.loads(meta_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
            raise CatalogError(
                f"corrupt snapshot metadata at {str(meta_path)!r}: {error}"
            ) from error
        if meta.get("type") != "graph_catalog_snapshot":
            raise CatalogError(
                f"not a catalog snapshot payload: {meta.get('type')!r}"
            )
        if meta.get("version") != SNAPSHOT_FORMAT_VERSION:
            raise CatalogError(
                f"unsupported catalog snapshot version {meta.get('version')!r}; "
                f"this build reads version {SNAPSHOT_FORMAT_VERSION}"
            )
        stores = []
        for store_index, shard_meta in enumerate(meta["shards"]):
            shard_dir = gen_dir / f"shard_{store_index:03d}"
            graphs = load_database(shard_dir / _SHARD_GRAPHS_FILENAME)
            pmi = ProbabilisticMatrixIndex.load(shard_dir)
            try:
                counts = np.load(shard_dir / _SHARD_COUNTS_FILENAME)
            except (OSError, ValueError, EOFError) as error:
                raise CatalogError(
                    "corrupt structural counts at "
                    f"{str(shard_dir / _SHARD_COUNTS_FILENAME)!r}: {error}"
                ) from error
            external_ids = [int(eid) for eid in shard_meta["external_ids"]]
            if (
                len(graphs) != len(external_ids)
                or pmi.num_graphs != len(graphs)
                or counts.shape[0] != len(graphs)
            ):
                raise CatalogError(
                    f"snapshot shard {store_index} at {str(shard_dir)!r} is "
                    "inconsistent: graphs, external ids, PMI rows and count "
                    "rows disagree"
                )
            structural = StructuralFeatureIndex.from_counts(
                pmi.features,
                counts,
                embedding_limit=pmi.feature_config.embedding_limit,
            )
            stores.append(_ShardStore(graphs, external_ids, pmi, structural))
        catalog = cls(
            stores,
            stores[0].base_pmi.feature_config,
            stores[0].base_pmi.bound_config,
            int(meta["build_root"]),
            int(meta["num_shards"]),
            max_workers,
        )
        catalog._next_external_id = max(
            catalog._next_external_id, int(meta["next_external_id"])
        )
        return catalog

    # -- logging and replay --------------------------------------------
    def _wal_active(self) -> bool:
        return self._durability is not None and not self._wal_suppressed

    @contextlib.contextmanager
    def _wal_suppression(self):
        """Context that applies mutations without logging them (replay, and
        the remove+add pair inside an already-logged ``update_graph``)."""
        previous = self._wal_suppressed
        self._wal_suppressed = True
        try:
            yield
        finally:
            self._wal_suppressed = previous

    def _apply_record(self, record: dict) -> None:
        """Re-apply one WAL mutation record through the normal paths."""
        op = record.get("op")
        if op == "add":
            self.add_graph(
                probabilistic_graph_from_dict(record["graph"]),
                external_id=record["external_id"],
            )
        elif op == "remove":
            self.remove_graph(record["external_id"])
        elif op == "update":
            self.update_graph(
                record["external_id"],
                probabilistic_graph_from_dict(record["graph"]),
            )
        else:
            raise WalError(f"unknown WAL operation {op!r} (lsn {record.get('lsn')})")

    def _roll_generation(self) -> None:
        """Snapshot the compacted state as a new generation and retire the old.

        Commit order is the whole story: (1) write snapshot ``g+1`` (atomic
        files, uncommitted), (2) create ``wal_{g+1}`` with its header,
        (3) atomically swap ``CURRENT`` — the single commit point — and only
        then (4) delete the old snapshot and log.  A crash anywhere before
        (3) leaves generation ``g`` with its full WAL authoritative (replay
        reproduces the pre-compact state, which answers identically); a crash
        after (3) leaves retired files for :meth:`open` to sweep.  Readers
        holding the old generation open keep working through (4) — POSIX
        unlink removes names, not open files — so compaction never blocks
        reads.
        """
        durability = self._durability
        new_generation = durability.generation + 1
        self._write_snapshot(durability.directory, new_generation)
        new_wal = WriteAheadLog.create(
            durability.directory / wal_filename(new_generation), new_generation
        )
        self._write_current(durability.directory, new_generation)
        old_generation = durability.generation
        durability.wal.close()
        durability.wal = new_wal
        durability.generation = new_generation
        self._discard_retired(durability.directory, new_generation)
        assert old_generation != new_generation

    @staticmethod
    def _discard_retired(directory: Path, keep_generation: int) -> None:
        """Best-effort sweep of retired/uncommitted generations, logs of other
        generations, and ``*.tmp`` debris of interrupted atomic writes."""
        discard_stale_tmp_files(directory)
        keep_dir = _generation_dirname(keep_generation)
        keep_wal = wal_filename(keep_generation)
        for path in sorted(directory.iterdir()):
            name = path.name
            if path.is_dir() and name.startswith("gen_") and name != keep_dir:
                shutil.rmtree(path, ignore_errors=True)
            elif (
                path.is_file()
                and name.startswith("wal_")
                and name.endswith(".log")
                and name != keep_wal
            ):
                try:
                    path.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def features(self):
        """The pinned feature set every segment indexes against."""
        return self._stores[0].base_pmi.features

    @property
    def build_root(self) -> int:
        """The 64-bit root all base and delta RNG streams derive from."""
        return self._root

    @property
    def num_live(self) -> int:
        return len(self._live)

    @property
    def mutation_generation(self) -> int:
        """A monotonic token naming the current live ``(id → graph)`` state.

        Bumped by every ``add_graph`` / ``remove_graph`` / ``update_graph``
        and by ``compact()`` (the shared-memory hot-swap included), never by
        queries or :meth:`close`.  Answers are pure functions of
        ``(mutation_generation, query, params, rng root)``, which is exactly
        what makes them cacheable: the query service keys its answer cache
        on this token, so a stale-generation answer can never be served
        after a mutation or hot-swap.  Compaction bumps it too even though
        answers are unchanged — a deliberately conservative choice (a spare
        cache miss is free; a stale hit would be a contract violation).
        """
        return self._mutation_generation

    @property
    def num_shards(self) -> int:
        return len(self._stores)

    @property
    def delta_rows(self) -> int:
        """Rows currently in delta segments (reset to 0 by :meth:`compact`)."""
        return sum(store.delta_rows for store in self._stores)

    @property
    def tombstone_count(self) -> int:
        """Dead rows awaiting reclamation by :meth:`compact`."""
        return sum(
            int(np.count_nonzero(store.tombstone)) for store in self._stores
        )

    def active_shm_segments(self) -> list[str]:
        """Shared-memory segment names of the cached planner's published
        generation — empty before the first pooled query and right after any
        mutation or :meth:`compact`, because each generation lives exactly
        as long as the planner that published it (the hot-swap protocol)."""
        plane = getattr(self._planner_cache, "shard_plane", None)
        return [] if plane is None else plane.segment_names()

    def shard_live_counts(self) -> list[int]:
        """Per-shard live graph counts (the routing rule's input)."""
        return [store.live_count for store in self._stores]

    def live_external_ids(self) -> list[int]:
        """Every live external id, ascending."""
        return sorted(self._live)

    def live_items(self) -> list[tuple[int, ProbabilisticGraph]]:
        """``(external_id, graph)`` pairs, ascending by id.

        This *is* the equivalent database of the parity contract: a
        from-scratch build over these pairs (same features, same root, ids
        as ``graph_ids``) answers every query byte-identically to the
        catalog.
        """
        return [
            (external_id, self._stores[store].graphs[position])
            for external_id, (store, position) in sorted(self._live.items())
        ]

    def get_graph(self, external_id: int) -> ProbabilisticGraph:
        """The live graph stored under ``external_id``."""
        store_index, position = self._locate(external_id)
        return self._stores[store_index].graphs[position]

    def __len__(self) -> int:
        return self.num_live

    def __repr__(self) -> str:
        return (
            f"GraphCatalog(live={self.num_live}, shards={self.num_shards}, "
            f"delta_rows={self.delta_rows}, tombstones={self.tombstone_count})"
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_graph(
        self, graph: ProbabilisticGraph, external_id: int | None = None
    ) -> int:
        """Index one new graph without touching the base; returns its id.

        The graph's PMI row is computed with
        ``derive_rng(build_root, BUILD_STREAM, external_id)`` — the stream a
        from-scratch build would use for that id — and appended to the delta
        segment of the shard with the fewest live graphs.  ``external_id``
        defaults to the next unused id; passing an id that is currently live
        raises :class:`CatalogError` (use :meth:`update_graph`), while
        re-using the id of a *removed* graph is allowed and gives the new
        graph that identity.
        """
        if external_id is None:
            external_id = self._next_external_id
        else:
            try:
                external_id = operator.index(external_id)
            except TypeError:
                raise CatalogError(
                    f"external_id must be an integer, got {external_id!r}"
                ) from None
            if external_id < 0:
                raise CatalogError(f"external_id must be >= 0, got {external_id!r}")
        if external_id in self._live:
            raise CatalogError(
                f"external id {external_id} is live; remove it first or use "
                "update_graph()"
            )
        if self._wal_active():
            self._durability.wal.append(
                {
                    "op": "add",
                    "external_id": int(external_id),
                    "graph": probabilistic_graph_to_dict(graph),
                }
            )
        store_index = route_to_smallest(self.shard_live_counts())
        position = self._stores[store_index].append(graph, external_id, self._root)
        self._live[external_id] = (store_index, position)
        self._next_external_id = max(self._next_external_id, external_id + 1)
        self._mutation_generation += 1
        self._invalidate()
        return external_id

    def remove_graph(self, external_id: int) -> None:
        """Tombstone the live row of ``external_id`` (storage reclaimed by
        :meth:`compact`); raises :class:`CatalogError` if the id is not live."""
        store_index, position = self._locate(external_id)
        if self._wal_active():
            self._durability.wal.append(
                {"op": "remove", "external_id": int(external_id)}
            )
        self._stores[store_index].tombstone[position] = True
        del self._live[external_id]
        self._mutation_generation += 1
        self._invalidate()

    def update_graph(self, external_id: int, graph: ProbabilisticGraph) -> None:
        """Replace the graph stored under a live ``external_id``.

        Implemented as tombstone + re-add under the same id: the old row
        dies, the new row lands in the (currently) smallest shard, and every
        RNG stream keyed by the id re-derives over the new content — so the
        update answers exactly as if the graph had always been this version.
        """
        self._locate(external_id)  # raises if not live
        if self._wal_active():
            # one atomic record: a torn tail can drop the whole update but
            # never leave the remove applied without the add
            self._durability.wal.append(
                {
                    "op": "update",
                    "external_id": int(external_id),
                    "graph": probabilistic_graph_to_dict(graph),
                }
            )
        with self._wal_suppression():
            self.remove_graph(external_id)
            self.add_graph(graph, external_id=external_id)

    def compact(self) -> "GraphCatalog":
        """Fold delta rows and reclaim tombstones into fresh base matrices.

        Live rows (ordered by external id) are re-partitioned into
        ``num_shards`` balanced contiguous shards — the rebalance step — with
        empty deltas and clear tombstone masks.  No SIP bound or embedding
        count is recomputed: compaction is pure row movement, so by the
        stable-id contract query answers are unchanged.  With every graph
        removed, the catalog compacts to one empty shard and keeps answering
        (with zero answers) until graphs are added again.
        """
        slices = [store.live_slice() for store in self._stores]
        graphs = [graph for part in slices for graph in part[0]]
        ids = np.concatenate([part[1] for part in slices])
        if len(graphs) == 0:
            empty_pmi = ProbabilisticMatrixIndex.empty(
                self.features,
                feature_config=self._feature_config,
                bound_config=self._bound_config,
            )
            empty_structural = StructuralFeatureIndex.from_counts(
                self.features,
                np.zeros((0, len(self.features)), dtype=np.int32),
                embedding_limit=self._feature_config.embedding_limit,
            )
            stores = [_ShardStore([], [], empty_pmi, empty_structural)]
        else:
            pmi = ProbabilisticMatrixIndex.concat_rows([part[2] for part in slices])
            counts = np.vstack([part[3] for part in slices])
            order = np.argsort(ids, kind="stable")
            pmi = pmi.subset([int(row) for row in order])
            counts = counts[order]
            ids = ids[order]
            graphs = [graphs[int(row)] for row in order]
            stores = []
            for spec in partition_ranges(len(graphs), self._num_shards):
                stores.append(
                    _ShardStore(
                        graphs[spec.start : spec.stop],
                        ids[spec.start : spec.stop],
                        pmi.subset(spec.global_ids()),
                        StructuralFeatureIndex.from_counts(
                            self.features,
                            counts[spec.start : spec.stop],
                            embedding_limit=self._feature_config.embedding_limit,
                        ),
                    )
                )
        self._mutation_generation += 1
        self._invalidate()
        self._stores = stores
        self._live = {
            int(store.external_ids[position]): (store_index, int(position))
            for store_index, store in enumerate(stores)
            for position in store.live_positions()
        }
        if self._durability is not None:
            self._roll_generation()
        return self

    # ------------------------------------------------------------------
    # querying (engine-compatible surface)
    # ------------------------------------------------------------------
    def query(
        self,
        query_graph: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        config=None,
        rng: RandomLike = None,
    ) -> QueryResult:
        """One T-PS query over the live graphs; answers carry external ids."""
        validate_query(query_graph, probability_threshold, distance_threshold)
        return self._planner().execute(
            query_graph, probability_threshold, distance_threshold, config, rng=rng
        )

    def query_many(
        self,
        query_graphs: list[LabeledGraph],
        probability_threshold: float,
        distance_threshold: int,
        config=None,
        rng: RandomLike = None,
        rngs: list[RandomLike] | None = None,
    ) -> list[QueryResult]:
        """A T-PS workload; identical answers to sequential :meth:`query` calls.

        ``rngs`` (mutually exclusive with ``rng``) supplies one RNG per query,
        so callers batching unrelated requests — the query service — keep each
        request's answers independent of batch composition.
        """
        for query_graph in query_graphs:
            validate_query(query_graph, probability_threshold, distance_threshold)
        return self._planner().execute_many(
            query_graphs,
            probability_threshold,
            distance_threshold,
            config,
            rng=rng,
            rngs=rngs,
        )

    def query_top_k(
        self,
        query_graph: LabeledGraph,
        k: int,
        distance_threshold: int,
        config=None,
        rng: RandomLike = None,
    ) -> QueryResult:
        """The k most probable live graphs, best first (ties → smaller id)."""
        validate_top_k_query(query_graph, k, distance_threshold)
        return self._planner().execute_top_k(
            query_graph, k, distance_threshold, config, rng=rng
        )

    def query_top_k_many(
        self,
        query_graphs: list[LabeledGraph],
        k: int,
        distance_threshold: int,
        config=None,
        rng: RandomLike = None,
        rngs: list[RandomLike] | None = None,
    ) -> list[QueryResult]:
        """A top-k workload; one result per query, in input order.

        ``rngs`` has the same per-query contract as :meth:`query_many`.
        """
        for query_graph in query_graphs:
            validate_top_k_query(query_graph, k, distance_threshold)
        return self._planner().execute_top_k_many(
            query_graphs, k, distance_threshold, config, rng=rng, rngs=rngs
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the cached planner, any sharded worker pool, and the WAL
        append handle (idempotent; the catalog stays usable and durable)."""
        self._invalidate()
        if self._durability is not None:
            self._durability.wal.close()

    def __enter__(self) -> "GraphCatalog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _locate(self, external_id: int) -> tuple[int, int]:
        location = self._live.get(external_id)
        if location is None:
            raise CatalogError(f"external id {external_id!r} is not live")
        return location

    def _planner(self) -> QueryPlanner | ShardedPlanner:
        """The current planner view; rebuilt lazily after any mutation."""
        if self._planner_cache is None:
            shards = [
                store.make_shard(store_index)
                for store_index, store in enumerate(self._stores)
            ]
            if len(shards) == 1:
                self._planner_cache = shards[0].make_planner()
            else:
                self._planner_cache = ShardedPlanner(
                    shards, max_workers=self._max_workers
                )
        return self._planner_cache

    def _invalidate(self) -> None:
        closer = getattr(self._planner_cache, "close", None)
        if closer is not None:
            closer()
        self._planner_cache = None
