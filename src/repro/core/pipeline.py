"""The staged candidate-pipeline engine behind every query mode.

The paper's query algorithm is a fixed cascade — structural similarity
filtering (Theorem 1), PMI probabilistic pruning (Theorems 3 & 4), exact
verification (Section 5) — and earlier revisions hard-wired that cascade
inside ``QueryPlanner.query()``.  This module turns the cascade into data:

* a :class:`CandidateSet` — a numpy boolean membership mask over the
  planner's graph slice plus per-graph ``usim``/``lsim`` bound columns —
  threaded through
* an ordered list of :class:`PipelineStage` objects
  (:class:`StructuralFilterStage`, :class:`PmiPruningStage`,
  :class:`VerificationStage`), each with a vectorized
  ``run(candidates, ctx, stage_stats)`` and per-stage
  :class:`~repro.core.results.StageStatistics`, driven by
* a :class:`QueryPipeline` built once per planner, with all per-query state
  in a :class:`PipelineContext`.

Two query modes share the stages through a mutable :class:`ThresholdState`:

* **threshold (T-PS)** — the probability floor is the fixed query ``ε``;
  stage behaviour (and answers) are identical to the pre-pipeline planner.
* **top_k** — the floor starts at the k-th largest PMI lower bound among
  the surviving candidates (at least k graphs have SSP above it, so nothing
  provably below can rank) and *tightens* as verified answers fill a
  k-sized heap; verification visits candidates in descending ``usim`` order
  so later candidates prune against the running k-th-best probability.

**Cross-shard top-k merge.**  A shard cannot see the global floor, so shard
executions run in *partial* mode: the floor stays at the shard-local seed
(never tightened by estimates), and the shard ships a :class:`TopKPartial` —
the ``(graph id, usim, lsim)`` table of every candidate its PMI stage
examined plus the verified estimate of every candidate above its local
seed.  :func:`merge_top_k_partials` then **replays** the sequential
verification loop over the concatenated tables: same global seed (the lsim
multiset is the same), same ``(-usim, graph_id)`` visit order, same
tightening, pulling each offered estimate from the shipped values.  Because
every estimate derives from ``(root, VERIFY_STREAM, global graph id)``
(:func:`repro.utils.rng.derive_rng` — the PR 2 scheme), a graph's estimate
is identical no matter which process verified it, and the shard-local seed
is never above the global seed (a k-th largest over a subset cannot exceed
the superset's), so every estimate the replay asks for was shipped.  The
replay therefore *is* the sequential loop: merged answers are byte-identical
to the sequential planner's for any shard count and any worker count, for
stochastic and exact verification alike.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.results import (
    QueryAnswer,
    QueryResult,
    QueryStatistics,
    StageStatistics,
)
from repro.utils.rng import PRUNE_STREAM, VERIFY_STREAM, derive_rng
from repro.utils.timer import Timer
from repro.exceptions import ConfigurationError, StateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.planner import QueryPlan, QueryPlanner

# PRUNE_STREAM / VERIFY_STREAM (re-exported from repro.utils.rng): every
# stochastic sub-task derives its generator as derive_rng(root, STAGE,
# stable_graph_id), where the stable id is the planner's global id for the
# graph (its row position in a static database, its external id in a mutable
# catalog).  The streams a graph consumes therefore depend only on (root,
# stage, stable id) — never on how many other candidates ran before it, which
# shard owns it, or how the database was mutated around it.  That is what
# lets sharded executors and mutated catalogs reproduce a from-scratch
# sequential run bit-for-bit.

THRESHOLD_MODE = "threshold"
TOP_K_MODE = "top_k"


class CandidateSet:
    """The explicit candidate state threaded through the pipeline stages.

    ``mask[i]`` is True while local graph ``i`` is still in play; ``usim`` /
    ``lsim`` carry the per-graph SSP bound columns once the PMI stage has
    filled them (``1.0`` / ``0.0`` — the vacuous bounds — before that, and
    for graphs whose bounds were never computed).  A catalog planner starts
    the mask at its live (non-tombstoned) rows instead of all-True, which is
    the only difference a mutated database makes to the stages — counters
    and answers then match a from-scratch build over the live rows exactly.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.mask = np.ones(size, dtype=bool)
        self.usim = np.ones(size, dtype=np.float64)
        self.lsim = np.zeros(size, dtype=np.float64)

    @property
    def active_count(self) -> int:
        return int(np.count_nonzero(self.mask))

    def active_ids(self) -> np.ndarray:
        """Active local graph ids, ascending."""
        return np.flatnonzero(self.mask)

    def keep_only(self, ids) -> None:
        """Narrow the active set to (a subset of) ``ids``."""
        keep = np.zeros(self.size, dtype=bool)
        keep[ids] = True
        self.mask &= keep

    def deactivate(self, ids) -> None:
        self.mask[ids] = False

    def record_bounds(self, ids, usim, lsim) -> None:
        """Fill the bound columns for ``ids`` (index-aligned arrays)."""
        self.usim[ids] = usim
        self.lsim[ids] = lsim


@dataclass
class ThresholdState:
    """The mutable probability floor the stages prune against.

    In threshold mode the floor is the query's fixed ``ε``.  In top-k mode
    it starts at 0, is seeded with the k-th largest PMI lower bound
    (:meth:`seed_floor`), and — when ``tighten`` is set — rises to the
    running k-th best verified probability as :meth:`offer` fills the heap.
    Shard-local (partial) executions keep ``tighten`` off: their floor must
    stay at the seed so the cross-shard replay can reconstruct the
    sequential skip pattern (see the module docstring).
    """

    mode: str = THRESHOLD_MODE
    floor: float = 0.0
    k: int | None = None
    tighten: bool = False
    _heap: list = field(default_factory=list, repr=False)

    @classmethod
    def fixed(cls, probability_threshold: float) -> "ThresholdState":
        """The threshold-mode state: a floor that never moves."""
        return cls(mode=THRESHOLD_MODE, floor=probability_threshold)

    @classmethod
    def for_top_k(cls, k: int, tighten: bool = True) -> "ThresholdState":
        return cls(mode=TOP_K_MODE, floor=0.0, k=k, tighten=tighten)

    @property
    def is_top_k(self) -> bool:
        return self.mode == TOP_K_MODE

    def admits(self, upper_bound: float) -> bool:
        """Can a graph with this SSP upper bound still enter the answer set?"""
        return upper_bound >= self.floor

    def seed_floor(self, lower_bounds) -> None:
        """Tighten to the k-th largest lower bound (top-k mode only).

        At least ``k`` graphs have SSP at or above their own lower bound, so
        any graph whose *upper* bound is strictly below the k-th largest
        lower bound is provably outside the top k.
        """
        if self.k is None:
            return
        values = np.asarray(lower_bounds, dtype=np.float64)
        if values.size < self.k:
            return
        kth = float(np.partition(values, -self.k)[-self.k])
        if kth > self.floor:
            self.floor = kth

    def offer(self, answer: QueryAnswer) -> bool:
        """Record a verified answer; True when it (currently) ranks top-k.

        The heap is keyed by ``(probability, -graph_id)`` so its minimum is
        the answer the full ordering ``(-probability, graph_id)`` ranks
        worst: ties at the k-th place resolve to the smaller graph id,
        exactly as the final sort does.  Zero-probability graphs are never
        answers.
        """
        if self.k is None:
            raise StateError("offer() is only meaningful in top-k mode")
        if answer.probability <= 0.0:
            return False
        entry = (answer.probability, -answer.graph_id, answer)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            if len(self._heap) == self.k:
                self._tighten_to_kth_best()
            return True
        if entry[:2] <= self._heap[0][:2]:
            return False
        heapq.heapreplace(self._heap, entry)
        self._tighten_to_kth_best()
        return True

    def _tighten_to_kth_best(self) -> None:
        if self.tighten and self._heap[0][0] > self.floor:
            self.floor = self._heap[0][0]

    @property
    def retained(self) -> int:
        """How many answers currently rank top-k (the heap's fill level)."""
        return len(self._heap)

    def ranked(self) -> list[QueryAnswer]:
        """Heap contents in final answer order: ``(-probability, graph_id)``."""
        return [
            entry[2]
            for entry in sorted(self._heap, key=lambda e: (-e[0], -e[1]))
        ]


@dataclass
class TopKPartial:
    """One shard's contribution to a cross-shard top-k merge.

    ``candidate_ids``/``usim``/``lsim`` cover every candidate the shard's
    PMI stage examined (global ids); ``estimates`` holds the verified SSP of
    every candidate at or above the shard-local seed floor — a superset of
    what the sequential loop verifies, which is what lets
    :func:`merge_top_k_partials` replay that loop exactly.
    """

    candidate_ids: np.ndarray
    usim: np.ndarray
    lsim: np.ndarray
    estimates: dict[int, float]
    names: dict[int, str | None]
    statistics: QueryStatistics


@dataclass
class PipelineContext:
    """Everything one query execution threads through the stages."""

    plan: "QueryPlan"
    root: int
    state: ThresholdState
    result: QueryResult
    partial: TopKPartial | None = None

    @property
    def gather_partial(self) -> bool:
        return self.partial is not None


class PipelineStage:
    """One composable step of the candidate pipeline.

    ``run`` narrows (never widens) the candidate set, may append answers to
    ``ctx.result``, and records its pruned/accepted/passed counts on the
    provided :class:`StageStatistics` (``examined`` and ``seconds`` are
    filled in by the driving :class:`QueryPipeline`).  ``legacy_field``
    names the pre-pipeline ``QueryStatistics`` wall-time field this stage
    reports into, keeping the paper's three-phase accounting alive for
    existing consumers.
    """

    name = "stage"
    legacy_field: str | None = None

    def run(
        self, candidates: CandidateSet, ctx: PipelineContext, stage_stats: StageStatistics
    ) -> None:
        raise NotImplementedError


class StructuralFilterStage(PipelineStage):
    """Stage 1 (Theorem 1): discard graphs whose skeleton cannot match."""

    name = "structural_filter"
    legacy_field = "structural_seconds"

    def __init__(self, planner: "QueryPlanner") -> None:
        self.planner = planner

    def run(self, candidates, ctx, stage_stats):
        stats = ctx.result.statistics
        if not ctx.plan.config.use_structural_pruning:
            stats.structural_candidates = candidates.active_count
            stage_stats.passed = candidates.active_count
            return
        keep = self.planner.structural_filter.filter_mask(
            ctx.plan.query, ctx.plan.distance_threshold, active=candidates.mask
        )
        candidates.mask &= keep
        passed = candidates.active_count
        stats.structural_candidates = passed
        stage_stats.pruned = stage_stats.examined - passed
        stage_stats.passed = passed


class PmiPruningStage(PipelineStage):
    """Stage 2 (Theorems 3 & 4): SSP bounds from the PMI's SIP intervals.

    Threshold mode applies Pruning 1 (``usim < ε`` ⇒ discard) and Pruning 2
    (``lsim ≥ ε`` ⇒ answer without verification).  Top-k mode records the
    bound columns, seeds the floor with the k-th largest ``lsim``, and
    discards candidates whose ``usim`` falls below that seed.
    """

    name = "pmi_pruning"
    legacy_field = "probabilistic_seconds"

    def __init__(self, planner: "QueryPlanner") -> None:
        self.planner = planner

    def run(self, candidates, ctx, stage_stats):
        plan = ctx.plan
        stats = ctx.result.statistics
        active = candidates.active_ids()
        if not plan.config.use_probabilistic_pruning:
            stats.probabilistic_candidates = len(active)
            stage_stats.passed = len(active)
            self._record_partial(candidates, ctx, active)
            return
        planner = self.planner
        pruner = planner._pruner_for(plan)
        bounds_list = [
            pruner.compute_bounds_from_row(
                plan.relaxed_queries,
                row,
                plan.containment,
                rng=derive_rng(
                    ctx.root, PRUNE_STREAM, int(planner.global_ids[row.graph_id])
                ),
            )
            for row in planner.pmi.rows(active)
        ]
        candidates.record_bounds(
            active,
            np.array([bounds.usim for bounds in bounds_list], dtype=np.float64),
            np.array([bounds.lsim for bounds in bounds_list], dtype=np.float64),
        )
        self._record_partial(candidates, ctx, active)
        if ctx.state.is_top_k:
            self._run_top_k(candidates, ctx, active, stage_stats)
        else:
            self._run_threshold(candidates, ctx, active, bounds_list, pruner, stage_stats)

    # ------------------------------------------------------------------
    # mode-specific decisions
    # ------------------------------------------------------------------
    def _run_threshold(self, candidates, ctx, active, bounds_list, pruner, stage_stats):
        stats = ctx.result.statistics
        planner = self.planner
        pruned_mask, accepted_mask = pruner.decide_batch(bounds_list, ctx.state.floor)
        for index in np.flatnonzero(accepted_mask):
            graph_id = int(active[index])
            ctx.result.answers.append(
                QueryAnswer(
                    graph_id=int(planner.global_ids[graph_id]),
                    graph_name=planner.graphs[graph_id].name,
                    probability=bounds_list[index].lsim,
                    decided_by="lower_bound",
                )
            )
        candidates.deactivate(active[pruned_mask | accepted_mask])
        stats.pruned_by_upper_bound = int(pruned_mask.sum())
        stats.accepted_by_lower_bound = int(accepted_mask.sum())
        stats.probabilistic_candidates = len(active) - stats.pruned_by_upper_bound
        stage_stats.pruned = stats.pruned_by_upper_bound
        stage_stats.accepted = stats.accepted_by_lower_bound
        stage_stats.passed = candidates.active_count

    def _run_top_k(self, candidates, ctx, active, stage_stats):
        stats = ctx.result.statistics
        ctx.state.seed_floor(candidates.lsim[active])
        below_seed = candidates.usim[active] < ctx.state.floor
        candidates.deactivate(active[below_seed])
        stats.pruned_by_upper_bound = int(below_seed.sum())
        stats.probabilistic_candidates = len(active) - stats.pruned_by_upper_bound
        stage_stats.pruned = stats.pruned_by_upper_bound
        stage_stats.passed = candidates.active_count

    def _record_partial(self, candidates, ctx, active) -> None:
        """Ship the examined (id, usim, lsim) table for the cross-shard replay."""
        if not ctx.gather_partial:
            return
        partial = ctx.partial
        partial.candidate_ids = self.planner.global_ids[active]
        partial.usim = candidates.usim[active].copy()
        partial.lsim = candidates.lsim[active].copy()


class VerificationStage(PipelineStage):
    """Stage 3 (Section 5): compute the SSP of every surviving candidate.

    Threshold mode verifies candidate *blocks*: survivors are chunked in id
    order and each block goes through one :meth:`~repro.core.verification.
    Verifier.verify_block` call, where the batch kernel draws and evaluates
    every candidate's whole sample matrix at once.  Block composition never
    changes an estimate — each candidate's draws come from its own
    ``derive_rng(root, VERIFY_STREAM, global id)`` stream — so a sharded run
    (different blocks) reproduces the sequential answers byte-for-byte.

    Top-k mode stays a per-candidate loop in descending ``usim`` order,
    because each verified answer tightens the floor against which later —
    lower upper bound — candidates are skipped; the per-candidate calls
    still run the vectorized kernel internally, and produce the same
    estimates the threshold blocks would (same per-graph streams).
    """

    name = "verification"
    legacy_field = "verification_seconds"

    def __init__(self, planner: "QueryPlanner") -> None:
        self.planner = planner

    def run(self, candidates, ctx, stage_stats):
        if ctx.state.is_top_k:
            self._run_top_k(candidates, ctx, stage_stats)
        else:
            self._run_threshold_blocks(candidates, ctx, stage_stats)

    # ------------------------------------------------------------------
    # threshold mode: block-at-a-time through the batch kernel
    # ------------------------------------------------------------------
    def _run_threshold_blocks(self, candidates, ctx, stage_stats):
        plan = ctx.plan
        stats = ctx.result.statistics
        planner = self.planner
        verifier = planner._verifier_for(plan)
        active = candidates.active_ids()
        block_size = max(1, verifier.config.block_size)
        answers = 0
        for start in range(0, len(active), block_size):
            block = [int(local_id) for local_id in active[start : start + block_size]]
            global_ids = [int(planner.global_ids[local_id]) for local_id in block]
            stats.verified += len(block)
            probabilities = verifier.verify_block(
                plan.query,
                [planner.graphs[local_id] for local_id in block],
                plan.distance_threshold,
                relaxed_queries=plan.relaxed_queries,
                rngs=[
                    derive_rng(ctx.root, VERIFY_STREAM, global_id)
                    for global_id in global_ids
                ],
            )
            for local_id, global_id, probability in zip(
                block, global_ids, probabilities
            ):
                if ctx.gather_partial:
                    ctx.partial.estimates[global_id] = probability
                    ctx.partial.names[global_id] = planner.graphs[local_id].name
                    continue
                if probability >= ctx.state.floor:
                    ctx.result.answers.append(
                        QueryAnswer(
                            graph_id=global_id,
                            graph_name=planner.graphs[local_id].name,
                            probability=probability,
                            decided_by="verification",
                        )
                    )
                    answers += 1
        stage_stats.accepted = answers
        stage_stats.passed = answers

    # ------------------------------------------------------------------
    # top-k mode: floor-adaptive per-candidate loop
    # ------------------------------------------------------------------
    def _run_top_k(self, candidates, ctx, stage_stats):
        plan = ctx.plan
        stats = ctx.result.statistics
        planner = self.planner
        verifier = planner._verifier_for(plan)
        active = candidates.active_ids()
        # descending usim, ascending *global* id — the same total order
        # replay_top_k uses, so the floor trajectory (and thus the skip
        # pattern) is identical whether this loop runs sequentially, per
        # shard, or over a mutated catalog's stable external ids
        order = active[
            np.lexsort((planner.global_ids[active], -candidates.usim[active]))
        ]
        answers = 0
        for local_id in order:
            local_id = int(local_id)
            global_id = int(planner.global_ids[local_id])
            if not ctx.state.admits(float(candidates.usim[local_id])):
                stage_stats.pruned += 1
                continue
            stats.verified += 1
            probability = verifier.subgraph_similarity_probability(
                plan.query,
                planner.graphs[local_id],
                plan.distance_threshold,
                relaxed_queries=plan.relaxed_queries,
                rng=derive_rng(ctx.root, VERIFY_STREAM, global_id),
            )
            if ctx.gather_partial:
                ctx.partial.estimates[global_id] = probability
                ctx.partial.names[global_id] = planner.graphs[local_id].name
                continue
            answer = QueryAnswer(
                graph_id=global_id,
                graph_name=planner.graphs[local_id].name,
                probability=probability,
                decided_by="verification",
            )
            ctx.state.offer(answer)
        if not ctx.gather_partial:
            # offers retained mid-loop may be displaced later; the heap's
            # final fill level is the stage's true emitted-answer count
            answers = ctx.state.retained
        stage_stats.accepted = answers
        stage_stats.passed = answers


class QueryPipeline:
    """Drives an ordered stage list over one query's candidate set.

    ``run`` is deterministic given ``(ctx.root, ctx.plan, the live graphs)``:
    wall-clock fields aside, two executions produce byte-identical answers
    and counters, independent of process, shard layout, or storage row
    placement (all per-graph work keys on stable global ids).
    """

    def __init__(self, stages: list[PipelineStage]) -> None:
        if not stages:
            raise ConfigurationError("a query pipeline needs at least one stage")
        self.stages = list(stages)

    def run(self, candidates: CandidateSet, ctx: PipelineContext) -> QueryResult:
        result = ctx.result
        stats = result.statistics
        # the *live* candidate universe: equals candidates.size for a static
        # planner (mask starts all-True), and the non-tombstoned count for a
        # catalog planner — which is what a from-scratch rebuild would report
        stats.database_size = candidates.active_count
        stats.relaxed_query_count = len(ctx.plan.relaxed_queries)
        total_timer = Timer()
        with total_timer:
            for stage in self.stages:
                stage_stats = StageStatistics(
                    stage=stage.name, examined=candidates.active_count
                )
                timer = Timer()
                with timer:
                    stage.run(candidates, ctx, stage_stats)
                stage_stats.seconds = timer.elapsed
                if stage.legacy_field is not None:
                    setattr(stats, stage.legacy_field, timer.elapsed)
                stats.stages.append(stage_stats)
            if ctx.state.is_top_k and not ctx.gather_partial:
                result.answers.extend(ctx.state.ranked())
            else:
                result.answers.sort(key=lambda a: (-a.probability, a.graph_id))
        stats.total_seconds = total_timer.elapsed
        stats.answers = len(result.answers)
        return result


def build_default_pipeline(planner: "QueryPlanner") -> QueryPipeline:
    """The paper's three-stage cascade over one planner's graph slice."""
    return QueryPipeline(
        [
            StructuralFilterStage(planner),
            PmiPruningStage(planner),
            VerificationStage(planner),
        ]
    )


# ----------------------------------------------------------------------
# cross-shard top-k merge
# ----------------------------------------------------------------------
def replay_top_k(
    candidate_ids: np.ndarray,
    usim: np.ndarray,
    lsim: np.ndarray,
    estimates: dict[int, float],
    names: dict[int, str | None],
    k: int,
) -> tuple[list[QueryAnswer], int]:
    """Replay the sequential top-k verification loop over known estimates.

    Returns ``(answers, replayed_verified)`` where ``replayed_verified`` is
    the number of candidates the *sequential* planner would have verified —
    the shards' actual (larger) verification counts live in their own
    statistics.
    """
    state = ThresholdState.for_top_k(k)
    state.seed_floor(lsim)
    above_seed = usim >= state.floor
    ids = candidate_ids[above_seed]
    upper = usim[above_seed]
    order = np.lexsort((ids, -upper))
    replayed = 0
    for index in order:
        graph_id = int(ids[index])
        if not state.admits(float(upper[index])):
            continue
        replayed += 1
        try:
            probability = estimates[graph_id]
        except KeyError:  # pragma: no cover - violates the shipped-superset invariant
            raise ConfigurationError(
                f"top-k merge is missing the verified estimate of graph {graph_id}; "
                "shard partials must cover every candidate at or above their "
                "local seed floor"
            ) from None
        if probability > 0.0:
            state.offer(
                QueryAnswer(
                    graph_id=graph_id,
                    graph_name=names.get(graph_id),
                    probability=probability,
                    decided_by="verification",
                )
            )
    return state.ranked(), replayed


def merge_top_k_partials(parts: list[TopKPartial], k: int) -> QueryResult:
    """Combine per-shard partials of one top-k query into the final result.

    Answers come from :func:`replay_top_k` over the concatenated candidate
    tables — provably the sequential planner's answer list (module
    docstring) — while the statistics merge the shards' *actual* work via
    :meth:`QueryStatistics.merge` (shard floors are laxer than the global
    one, so the summed ``verified`` counter legitimately exceeds the
    sequential planner's).
    """
    if not parts:
        raise ConfigurationError("cannot merge an empty list of top-k partials")
    candidate_ids = np.concatenate([part.candidate_ids for part in parts])
    usim = np.concatenate([part.usim for part in parts])
    lsim = np.concatenate([part.lsim for part in parts])
    estimates: dict[int, float] = {}
    names: dict[int, str | None] = {}
    for part in parts:
        estimates.update(part.estimates)
        names.update(part.names)
    answers, _ = replay_top_k(candidate_ids, usim, lsim, estimates, names, k)
    result = QueryResult(answers=answers)
    result.statistics = QueryStatistics.merge(part.statistics for part in parts)
    result.statistics.answers = len(answers)
    return result
