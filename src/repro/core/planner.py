"""The reusable query planner: one plan object per workload, not per query.

The seed engine rebuilt its :class:`StructuralFilter`, its
:class:`ProbabilisticPruner` (including the feature dictionary) and its
:class:`Verifier` from scratch inside every ``query()`` call, and recomputed
the feature-vs-relaxed-query containment relations once *per candidate
graph*.  :class:`QueryPlanner` splits that work by lifetime:

* **per database** (planner construction): the structural filter over the
  skeletons, the pruner over the PMI's features, the default verifier, and
  the staged candidate pipeline itself
  (:func:`repro.core.pipeline.build_default_pipeline`);
* **per query** (:meth:`plan` / :meth:`plan_top_k`): query relaxation
  (Lemma 1) and one shared containment pass (one VF2 round per feature);
* **per candidate** (:meth:`execute_plan`): the pipeline stages — columnar
  PMI row reads, vectorized pruning decisions, verification.

``ProbabilisticGraphDatabase.build_index()`` constructs the planner once;
``query()``/``query_top_k()`` are thin plan executions and ``query_many()``
batches a workload (identical answers to sequential queries).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import (
    PRUNE_STREAM,
    VERIFY_STREAM,
    CandidateSet,
    PipelineContext,
    QueryPipeline,
    THRESHOLD_MODE,
    TOP_K_MODE,
    ThresholdState,
    TopKPartial,
    build_default_pipeline,
)
from repro.core.pruning import FeatureContainment, ProbabilisticPruner
from repro.core.relaxation import relax_query
from repro.core.results import QueryResult, QueryStatistics
from repro.core.verification import Verifier
from repro.exceptions import ConfigurationError, QueryError
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.pmi.index import ProbabilisticMatrixIndex
from repro.structural.feature_index import StructuralFeatureIndex
from repro.structural.similarity_filter import StructuralFilter
from repro.utils.rng import RandomLike, rng_root
from repro.utils.shm import SkeletonSequence

__all__ = [
    "QueryPlan",
    "QueryPlanner",
    "validate_query",
    "validate_top_k_query",
    "PRUNE_STREAM",
    "VERIFY_STREAM",
]


def _validate_query_structure(query_graph: LabeledGraph, distance_threshold: int) -> None:
    if query_graph.num_edges == 0:
        raise QueryError("query graph must contain at least one edge")
    if not query_graph.is_connected():
        raise QueryError("query graph must be connected")
    if distance_threshold < 0:
        raise QueryError("distance threshold must be >= 0")
    if distance_threshold >= query_graph.num_edges:
        raise QueryError(
            "distance threshold must be smaller than the number of query edges"
        )


def validate_query(
    query_graph: LabeledGraph, probability_threshold: float, distance_threshold: int
) -> None:
    """Reject malformed T-PS queries before any pipeline work starts."""
    _validate_query_structure(query_graph, distance_threshold)
    if not 0.0 < probability_threshold <= 1.0:
        raise QueryError(
            f"probability threshold must be in (0, 1], got {probability_threshold!r}"
        )


def validate_top_k_query(
    query_graph: LabeledGraph, k: int, distance_threshold: int
) -> int:
    """Reject malformed top-k queries; return ``k`` coerced to a plain int.

    Any integer-like ``k`` (``int``, ``numpy.int64``, …) is accepted via
    ``operator.index``; bools and non-integers are rejected.
    """
    _validate_query_structure(query_graph, distance_threshold)
    if isinstance(k, bool):
        raise QueryError(f"k must be an integer, got {k!r}")
    try:
        k = operator.index(k)
    except TypeError:
        raise QueryError(f"k must be an integer, got {k!r}") from None
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k!r}")
    return k


def _resolve_rngs(
    rng: RandomLike, rngs: list[RandomLike] | None, num_queries: int
) -> list[RandomLike]:
    """Normalize the two workload RNG forms into one per-query list.

    ``rngs`` (one entry per query, mutually exclusive with ``rng``) is the
    micro-batching form: each query's streams derive from its own entry, so
    the batch answers cannot depend on which other queries happened to share
    the batch.  Without it, every query gets the shared ``rng`` — the
    historical semantics (an int seed re-normalizes per query; a
    ``random.Random`` is consumed sequentially across the batch).
    """
    if rngs is None:
        return [rng] * num_queries
    if rng is not None:
        raise QueryError("pass either rng or rngs, not both")
    rngs = list(rngs)
    if len(rngs) != num_queries:
        raise QueryError(
            f"rngs has {len(rngs)} entries for {num_queries} queries"
        )
    return rngs


@dataclass
class QueryPlan:
    """Everything derivable from (query, thresholds, config) alone.

    The plan is reusable: executing it twice (or against a reloaded PMI)
    yields the same candidate partition, so workloads can relax and prepare
    once and execute many times.  ``mode`` selects how the pipeline's
    :class:`~repro.core.pipeline.ThresholdState` behaves: ``"threshold"``
    (fixed floor ``probability_threshold``) or ``"top_k"`` (floor tightens
    toward the running ``k``-th best verified probability).
    """

    query: LabeledGraph
    probability_threshold: float
    distance_threshold: int
    config: "SearchConfig"
    relaxed_queries: list[LabeledGraph] = field(default_factory=list)
    containment: dict[int, FeatureContainment] = field(default_factory=dict)
    mode: str = THRESHOLD_MODE
    k: int | None = None


class QueryPlanner:
    """Owns the staged candidate pipeline for one indexed database (or shard).

    Determinism contract: with the same ``rng`` seed, every ``execute*``
    method returns byte-identical answers and counters across runs,
    processes, and execution strategies — a sharded fan-out
    (:class:`~repro.core.sharding.ShardedPlanner`) or a mutated catalog
    (:class:`~repro.core.catalog.GraphCatalog`) reproduces this planner's
    output exactly, because all stochastic work and all orderings key on
    each graph's stable global id (``global_ids``), never on row positions
    or visit order.
    """

    def __init__(
        self,
        graphs: list[ProbabilisticGraph],
        pmi: ProbabilisticMatrixIndex,
        structural_index: StructuralFeatureIndex,
        graph_id_offset: int = 0,
        graph_ids=None,
        active_mask: np.ndarray | None = None,
    ) -> None:
        self.graphs = graphs
        self.pmi = pmi
        self.structural_index = structural_index
        # When the planner owns a shard (a contiguous slice of a larger
        # database), local row 0 is global graph `graph_id_offset`: answers
        # and RNG stream salts always use global ids so a sharded run is
        # indistinguishable from the sequential one.  A mutable catalog goes
        # one step further and passes explicit `graph_ids` — the stable
        # external id of every storage row — plus an `active_mask` that turns
        # tombstoned rows off before any stage runs.  Everything downstream
        # (answers, RNG salts, top-k visit order) keys on `global_ids`, so
        # answers depend only on the (id → graph) mapping, never on row
        # placement.
        self.graph_id_offset = graph_id_offset
        if graph_ids is None:
            self.global_ids = graph_id_offset + np.arange(len(graphs), dtype=np.int64)
        else:
            self.global_ids = np.asarray(graph_ids, dtype=np.int64)
            if self.global_ids.shape != (len(graphs),):
                raise ConfigurationError(
                    f"graph_ids has {self.global_ids.size} entries for "
                    f"{len(graphs)} graphs"
                )
        if active_mask is not None:
            active_mask = np.asarray(active_mask, dtype=bool)
            if active_mask.shape != (len(graphs),):
                raise ConfigurationError(
                    f"active_mask has {active_mask.size} entries for "
                    f"{len(graphs)} graphs"
                )
        self.active_mask = active_mask
        # a lazy view, not a list: planners over shared-memory shards hold a
        # LazyGraphList, and enumerating skeletons here would deserialize
        # every graph up front — the structural filter only touches the
        # skeletons of deficit-test survivors
        self.skeletons = SkeletonSequence(graphs)
        self.structural_filter = StructuralFilter(structural_index, self.skeletons)
        self.pruner = ProbabilisticPruner(pmi.features)
        self._default_verifier: Verifier | None = None
        self.pipeline: QueryPipeline = build_default_pipeline(self)

    def _new_candidates(self) -> CandidateSet:
        """A fresh candidate set: every storage row, minus tombstoned ones."""
        candidates = CandidateSet(len(self.graphs))
        if self.active_mask is not None:
            candidates.mask &= self.active_mask
        return candidates

    def _pruner_for(self, plan: QueryPlan) -> ProbabilisticPruner:
        """The planner-owned pruner, rebuilt only when the config changes."""
        if plan.config.pruning != self.pruner.config:
            self.pruner = ProbabilisticPruner(
                self.pmi.features, config=plan.config.pruning
            )
        return self.pruner

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(
        self,
        query: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        config: "SearchConfig | None" = None,
    ) -> QueryPlan:
        """Relax the query and precompute the shared containment relations.

        Planning is fully deterministic (no RNG is consumed): the same
        query, thresholds, and config always yield the same plan, so plans
        can be built once in a parent process and shipped to every shard.
        """
        validate_query(query, probability_threshold, distance_threshold)
        return self._prepare_plan(
            query, probability_threshold, distance_threshold, config
        )

    def plan_top_k(
        self,
        query: LabeledGraph,
        k: int,
        distance_threshold: int,
        config: "SearchConfig | None" = None,
    ) -> QueryPlan:
        """A reusable plan for a top-k subgraph similarity query.

        The plan's probability floor starts at zero; the pipeline's
        :class:`~repro.core.pipeline.ThresholdState` supplies the dynamic
        floor at execution time.
        """
        k = validate_top_k_query(query, k, distance_threshold)
        plan = self._prepare_plan(query, 0.0, distance_threshold, config)
        plan.mode = TOP_K_MODE
        plan.k = k
        return plan

    def _prepare_plan(
        self,
        query: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        config: "SearchConfig | None",
    ) -> QueryPlan:
        from repro.core.search_engine import SearchConfig

        cfg = config or SearchConfig()
        relaxed = relax_query(query, distance_threshold, cfg.relaxation)
        containment = (
            self.pruner.prepare(relaxed) if cfg.use_probabilistic_pruning else {}
        )
        return QueryPlan(
            query=query,
            probability_threshold=probability_threshold,
            distance_threshold=distance_threshold,
            config=cfg,
            relaxed_queries=relaxed,
            containment=containment,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        config: "SearchConfig | None" = None,
        rng: RandomLike = None,
    ) -> QueryResult:
        """Plan and execute one threshold (T-PS) query.

        With an int seed (or seeded generator) the result is byte-identical
        across runs and identical to any sharded/catalog execution of the
        same query over the same live graphs (see :meth:`execute_plan`).
        """
        return self.execute_plan(
            self.plan(query, probability_threshold, distance_threshold, config), rng=rng
        )

    def execute_many(
        self,
        queries: list[LabeledGraph],
        probability_threshold: float,
        distance_threshold: int,
        config: "SearchConfig | None" = None,
        rng: RandomLike = None,
        rngs: list[RandomLike] | None = None,
    ) -> list[QueryResult]:
        """Execute a workload against the shared plan machinery.

        The per-database stage objects (structural filter, pruner, verifier)
        are reused across the whole batch.  ``rng`` semantics match repeated
        ``query()`` calls: an int seed (or ``None``) is re-normalized per
        query, so ``query_many(qs, ..., rng=7)`` returns exactly the answers
        of ``[query(q, ..., rng=7) for q in qs]``; a shared ``random.Random``
        instance is consumed sequentially across the batch.

        ``rngs`` supplies one independent ``rng`` per query instead — the
        micro-batching contract: ``query_many(qs, ..., rngs=[s0, s1, ...])``
        is byte-identical to ``[query(q, ..., rng=s) for q, s in zip(...)]``,
        so a service can coalesce requests that each carry their own seed
        without the batch composition leaking into any answer.
        """
        rngs = _resolve_rngs(rng, rngs, len(queries))
        return [
            self.execute(
                query, probability_threshold, distance_threshold, config, rng=query_rng
            )
            for query, query_rng in zip(queries, rngs)
        ]

    def execute_top_k(
        self,
        query: LabeledGraph,
        k: int,
        distance_threshold: int,
        config: "SearchConfig | None" = None,
        rng: RandomLike = None,
    ) -> QueryResult:
        """The k most probable subgraph-similar graphs, best first.

        Ties resolve to the smaller (global) graph id; graphs with zero SSP
        are never answers, so fewer than ``k`` answers may return.  The
        probability floor tightens as verified answers fill the k-sized
        heap, so candidates are verified in descending PMI upper-bound order
        and late candidates prune against the running k-th best.  Under the
        same seed the ranked list is byte-identical to the cross-shard
        partial/replay merge (:func:`repro.core.pipeline.merge_top_k_partials`)
        over any partition of the same live graphs.
        """
        return self.execute_plan(self.plan_top_k(query, k, distance_threshold, config), rng=rng)

    def execute_top_k_many(
        self,
        queries: list[LabeledGraph],
        k: int,
        distance_threshold: int,
        config: "SearchConfig | None" = None,
        rng: RandomLike = None,
        rngs: list[RandomLike] | None = None,
    ) -> list[QueryResult]:
        """A top-k workload; ``rng``/``rngs`` semantics match :meth:`execute_many`."""
        rngs = _resolve_rngs(rng, rngs, len(queries))
        return [
            self.execute_top_k(query, k, distance_threshold, config, rng=query_rng)
            for query, query_rng in zip(queries, rngs)
        ]

    def execute_plan(self, plan: QueryPlan, rng: RandomLike = None) -> QueryResult:
        """Run the staged candidate pipeline for one plan.

        The ``rng`` argument is collapsed to a 64-bit *root* and every
        stochastic per-candidate task (QP rounding in pruning, Karp–Luby
        sampling in verification) derives its own generator from
        ``(root, stage, global graph id)``.  Results therefore depend only on
        the root and the graph, not on candidate ordering or database
        partitioning — a sharded executor passing the same root reproduces
        this method's answers exactly.
        """
        ctx = PipelineContext(
            plan=plan,
            root=rng_root(rng),
            state=self._state_for(plan),
            result=QueryResult(),
        )
        return self.pipeline.run(self._new_candidates(), ctx)

    def execute_top_k_partial(self, plan: QueryPlan, rng: RandomLike = None) -> TopKPartial:
        """Run a top-k plan in shard-partial mode (see ``core.pipeline``).

        The floor stays at the shard-local lsim seed (no estimate-driven
        tightening), and the returned :class:`TopKPartial` carries the
        examined candidate/bound table plus every verified estimate —
        everything :func:`repro.core.pipeline.merge_top_k_partials` needs to
        replay the sequential loop exactly.
        """
        if plan.mode != TOP_K_MODE or plan.k is None:
            raise QueryError("execute_top_k_partial() requires a top-k plan")
        partial = TopKPartial(
            candidate_ids=np.zeros(0, dtype=np.int64),
            usim=np.zeros(0, dtype=np.float64),
            lsim=np.zeros(0, dtype=np.float64),
            estimates={},
            names={},
            statistics=QueryStatistics(),
        )
        ctx = PipelineContext(
            plan=plan,
            root=rng_root(rng),
            state=ThresholdState.for_top_k(plan.k, tighten=False),
            result=QueryResult(),
            partial=partial,
        )
        self.pipeline.run(self._new_candidates(), ctx)
        partial.statistics = ctx.result.statistics
        return partial

    def _state_for(self, plan: QueryPlan) -> ThresholdState:
        if plan.mode == TOP_K_MODE:
            if plan.k is None:
                raise QueryError("a top-k plan needs k")
            return ThresholdState.for_top_k(plan.k)
        return ThresholdState.fixed(plan.probability_threshold)

    # `query*()` aliases for symmetry with the engine-level API
    query = execute
    query_many = execute_many
    query_top_k = execute_top_k
    query_top_k_many = execute_top_k_many

    # ------------------------------------------------------------------
    # stage-object lifecycle
    # ------------------------------------------------------------------
    def _verifier_for(self, plan: QueryPlan) -> Verifier:
        """The planner-owned verifier, rebuilt only when the config changes."""
        verifier = self._default_verifier
        if (
            verifier is None
            or verifier.config != plan.config.verification
            or verifier.relaxation != plan.config.relaxation
        ):
            verifier = Verifier(
                config=plan.config.verification, relaxation=plan.config.relaxation
            )
            self._default_verifier = verifier
        return verifier
