"""The reusable query planner: one plan object per workload, not per query.

The seed engine rebuilt its :class:`StructuralFilter`, its
:class:`ProbabilisticPruner` (including the feature dictionary) and its
:class:`Verifier` from scratch inside every ``query()`` call, and recomputed
the feature-vs-relaxed-query containment relations once *per candidate
graph*.  :class:`QueryPlanner` splits that work by lifetime:

* **per database** (planner construction): the structural filter over the
  skeletons, the pruner over the PMI's features, the default verifier;
* **per query** (:meth:`plan`): query relaxation (Lemma 1) and one shared
  containment pass (one VF2 round per feature);
* **per candidate** (:meth:`execute_plan`): columnar PMI row reads and the
  bound computations, with the final pruned/accepted partition decided in a
  single vectorized array pass.

``ProbabilisticGraphDatabase.build_index()`` constructs the planner once;
``query()`` is a thin ``plan`` + ``execute_plan`` and ``query_many()``
amortizes the per-database setup across a whole workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pruning import FeatureContainment, ProbabilisticPruner
from repro.core.relaxation import relax_query
from repro.core.results import QueryAnswer, QueryResult, QueryStatistics
from repro.core.verification import Verifier
from repro.exceptions import QueryError
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.pmi.index import ProbabilisticMatrixIndex
from repro.structural.feature_index import StructuralFeatureIndex
from repro.structural.similarity_filter import StructuralFilter
from repro.utils.rng import RandomLike, derive_rng, rng_root
from repro.utils.timer import Timer

# Stage tags for the per-graph RNG stream derivation.  Every stochastic
# sub-task derives its generator as derive_rng(root, STAGE, global_graph_id),
# so the streams a graph consumes depend only on (root, stage, graph id) —
# never on how many other candidates ran before it in this process.  That is
# what lets a sharded executor reproduce the sequential planner bit-for-bit.
PRUNE_STREAM = 1
VERIFY_STREAM = 2


def validate_query(
    query_graph: LabeledGraph, probability_threshold: float, distance_threshold: int
) -> None:
    """Reject malformed T-PS queries before any pipeline work starts."""
    if query_graph.num_edges == 0:
        raise QueryError("query graph must contain at least one edge")
    if not query_graph.is_connected():
        raise QueryError("query graph must be connected")
    if not 0.0 < probability_threshold <= 1.0:
        raise QueryError(
            f"probability threshold must be in (0, 1], got {probability_threshold!r}"
        )
    if distance_threshold < 0:
        raise QueryError("distance threshold must be >= 0")
    if distance_threshold >= query_graph.num_edges:
        raise QueryError(
            "distance threshold must be smaller than the number of query edges"
        )


@dataclass
class QueryPlan:
    """Everything derivable from (query, thresholds, config) alone.

    The plan is reusable: executing it twice (or against a reloaded PMI)
    yields the same candidate partition, so workloads can relax and prepare
    once and execute many times.
    """

    query: LabeledGraph
    probability_threshold: float
    distance_threshold: int
    config: "SearchConfig"
    relaxed_queries: list[LabeledGraph] = field(default_factory=list)
    containment: dict[int, FeatureContainment] = field(default_factory=dict)


class QueryPlanner:
    """Owns the three pipeline stages for one indexed database."""

    def __init__(
        self,
        graphs: list[ProbabilisticGraph],
        pmi: ProbabilisticMatrixIndex,
        structural_index: StructuralFeatureIndex,
        graph_id_offset: int = 0,
    ) -> None:
        self.graphs = graphs
        self.pmi = pmi
        self.structural_index = structural_index
        # When the planner owns a shard (a contiguous slice of a larger
        # database), local row 0 is global graph `graph_id_offset`: answers
        # and RNG stream salts always use global ids so a sharded run is
        # indistinguishable from the sequential one.
        self.graph_id_offset = graph_id_offset
        self.skeletons = [graph.skeleton for graph in graphs]
        self.structural_filter = StructuralFilter(structural_index, self.skeletons)
        self.pruner = ProbabilisticPruner(pmi.features)
        self._default_verifier: Verifier | None = None

    def _pruner_for(self, plan: QueryPlan) -> ProbabilisticPruner:
        """The planner-owned pruner, rebuilt only when the config changes."""
        if plan.config.pruning != self.pruner.config:
            self.pruner = ProbabilisticPruner(
                self.pmi.features, config=plan.config.pruning
            )
        return self.pruner

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(
        self,
        query: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        config: "SearchConfig | None" = None,
    ) -> QueryPlan:
        """Relax the query and precompute the shared containment relations."""
        from repro.core.search_engine import SearchConfig

        validate_query(query, probability_threshold, distance_threshold)
        cfg = config or SearchConfig()
        relaxed = relax_query(query, distance_threshold, cfg.relaxation)
        containment = (
            self.pruner.prepare(relaxed) if cfg.use_probabilistic_pruning else {}
        )
        return QueryPlan(
            query=query,
            probability_threshold=probability_threshold,
            distance_threshold=distance_threshold,
            config=cfg,
            relaxed_queries=relaxed,
            containment=containment,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        config: "SearchConfig | None" = None,
        rng: RandomLike = None,
    ) -> QueryResult:
        """Plan and execute one query."""
        return self.execute_plan(
            self.plan(query, probability_threshold, distance_threshold, config), rng=rng
        )

    def execute_many(
        self,
        queries: list[LabeledGraph],
        probability_threshold: float,
        distance_threshold: int,
        config: "SearchConfig | None" = None,
        rng: RandomLike = None,
    ) -> list[QueryResult]:
        """Execute a workload against the shared plan machinery.

        The per-database stage objects (structural filter, pruner, verifier)
        are reused across the whole batch.  ``rng`` semantics match repeated
        ``query()`` calls: an int seed (or ``None``) is re-normalized per
        query, so ``query_many(qs, ..., rng=7)`` returns exactly the answers
        of ``[query(q, ..., rng=7) for q in qs]``; a shared ``random.Random``
        instance is consumed sequentially across the batch.
        """
        return [
            self.execute(
                query, probability_threshold, distance_threshold, config, rng=rng
            )
            for query in queries
        ]

    def execute_plan(self, plan: QueryPlan, rng: RandomLike = None) -> QueryResult:
        """Run the three pipeline stages of Section 1.2 for one plan.

        The ``rng`` argument is collapsed to a 64-bit *root* and every
        stochastic per-candidate task (QP rounding in pruning, Karp–Luby
        sampling in verification) derives its own generator from
        ``(root, stage, global graph id)``.  Results therefore depend only on
        the root and the graph, not on candidate ordering or database
        partitioning — a sharded executor passing the same root reproduces
        this method's answers exactly.
        """
        root = rng_root(rng)
        result = QueryResult()
        stats = result.statistics
        stats.database_size = len(self.graphs)
        total_timer = Timer()
        with total_timer:
            stats.relaxed_query_count = len(plan.relaxed_queries)
            candidate_ids = self._structural_stage(plan, stats)
            candidate_ids, accepted = self._probabilistic_stage(
                plan, candidate_ids, stats, root
            )
            for graph_id, lower_bound in accepted:
                result.answers.append(
                    QueryAnswer(
                        graph_id=self.graph_id_offset + graph_id,
                        graph_name=self.graphs[graph_id].name,
                        probability=lower_bound,
                        decided_by="lower_bound",
                    )
                )
            self._verification_stage(plan, candidate_ids, stats, result, root)
        stats.total_seconds = total_timer.elapsed
        stats.answers = len(result.answers)
        result.answers.sort(key=lambda a: (-a.probability, a.graph_id))
        return result

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------
    def _structural_stage(self, plan: QueryPlan, stats: QueryStatistics) -> list[int]:
        if not plan.config.use_structural_pruning:
            stats.structural_candidates = len(self.graphs)
            return list(range(len(self.graphs)))
        outcome = self.structural_filter.filter(plan.query, plan.distance_threshold)
        stats.structural_candidates = outcome.candidate_count
        stats.structural_seconds = outcome.seconds
        return outcome.candidate_ids

    def _probabilistic_stage(
        self,
        plan: QueryPlan,
        candidate_ids: list[int],
        stats: QueryStatistics,
        root: int,
    ) -> tuple[list[int], list[tuple[int, float]]]:
        if not plan.config.use_probabilistic_pruning:
            stats.probabilistic_candidates = len(candidate_ids)
            return candidate_ids, []
        pruner = self._pruner_for(plan)
        timer = Timer()
        with timer:
            bounds_list = [
                pruner.compute_bounds_from_row(
                    plan.relaxed_queries,
                    self.pmi.row(graph_id),
                    plan.containment,
                    rng=derive_rng(root, PRUNE_STREAM, self.graph_id_offset + graph_id),
                )
                for graph_id in candidate_ids
            ]
            pruned_mask, accepted_mask = pruner.decide_batch(
                bounds_list, plan.probability_threshold
            )
            remaining = [
                graph_id
                for graph_id, pruned, accepted_flag in zip(
                    candidate_ids, pruned_mask, accepted_mask
                )
                if not pruned and not accepted_flag
            ]
            accepted = [
                (graph_id, bounds.lsim)
                for graph_id, bounds, accepted_flag in zip(
                    candidate_ids, bounds_list, accepted_mask
                )
                if accepted_flag
            ]
        stats.pruned_by_upper_bound = int(pruned_mask.sum())
        stats.accepted_by_lower_bound = int(accepted_mask.sum())
        stats.probabilistic_seconds = timer.elapsed
        stats.probabilistic_candidates = len(remaining) + len(accepted)
        return remaining, accepted

    def _verification_stage(
        self,
        plan: QueryPlan,
        candidate_ids: list[int],
        stats: QueryStatistics,
        result: QueryResult,
        root: int,
    ) -> None:
        verifier = self._verifier_for(plan)
        timer = Timer()
        with timer:
            for graph_id in candidate_ids:
                stats.verified += 1
                verifier.rng = derive_rng(
                    root, VERIFY_STREAM, self.graph_id_offset + graph_id
                )
                is_answer, probability = verifier.matches(
                    plan.query,
                    self.graphs[graph_id],
                    plan.probability_threshold,
                    plan.distance_threshold,
                    relaxed_queries=plan.relaxed_queries,
                )
                if is_answer:
                    result.answers.append(
                        QueryAnswer(
                            graph_id=self.graph_id_offset + graph_id,
                            graph_name=self.graphs[graph_id].name,
                            probability=probability,
                            decided_by="verification",
                        )
                    )
        stats.verification_seconds = timer.elapsed

    def _verifier_for(self, plan: QueryPlan) -> Verifier:
        """The planner-owned verifier, rebuilt only when the config changes."""
        verifier = self._default_verifier
        if (
            verifier is None
            or verifier.config != plan.config.verification
            or verifier.relaxation != plan.config.relaxation
        ):
            verifier = Verifier(
                config=plan.config.verification, relaxation=plan.config.relaxation
            )
            self._default_verifier = verifier
        return verifier
