"""Probabilistic pruning (Section 3): SSP bounds and Pruning conditions 1 & 2.

For each candidate graph that survived structural pruning, the pruner derives
an upper bound ``Usim(q)`` and a lower bound ``Lsim(q)`` of the subgraph
similarity probability from the PMI's per-feature SIP bounds:

* **Pruning 1 (subgraph pruning, Theorem 3)** — features contained in the
  relaxed queries give ``Usim``; if ``Usim < ε`` the graph is pruned.
* **Pruning 2 (super-graph pruning, Theorem 4)** — features containing the
  relaxed queries give ``Lsim``; if ``Lsim ≥ ε`` the graph is accepted
  without verification.

The *tightest* bounds use weighted set cover (Algorithm 1) and the QP
rounding scheme (Algorithm 2); the plain variants pick one arbitrary feature
per relaxed query, matching the SSPBound / OPT-SSPBound split in the paper's
experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.quadratic_program import QPSet, solve_lsim_rounding
from repro.core.set_cover import WeightedSet, greedy_weighted_set_cover
from repro.graphs.labeled_graph import LabeledGraph
from repro.isomorphism.vf2 import is_subgraph_isomorphic
from repro.pmi.bounds import SipBounds
from repro.pmi.features import Feature
from repro.utils.rng import RandomLike, ensure_rng


class PruningDecision(enum.Enum):
    """Outcome of probabilistic pruning for one graph."""

    PRUNED = "pruned"              # Usim < ε : cannot be an answer
    ACCEPTED = "accepted"          # Lsim ≥ ε : answer without verification
    CANDIDATE = "candidate"        # needs verification


@dataclass(frozen=True)
class SspBounds:
    """Derived bounds of the subgraph similarity probability for one graph."""

    usim: float
    lsim: float
    usim_covered: bool
    lsim_covered: bool


@dataclass(frozen=True)
class PruningConfig:
    """Which bound variants to use (the paper's SSPBound vs OPT-SSPBound)."""

    optimal_usim: bool = True
    optimal_lsim: bool = True


class ProbabilisticPruner:
    """Applies Pruning 1 and Pruning 2 using PMI bounds."""

    def __init__(
        self,
        features: list[Feature],
        config: PruningConfig | None = None,
        rng: RandomLike = None,
    ) -> None:
        self.features = {feature.feature_id: feature for feature in features}
        self.config = config or PruningConfig()
        self.rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def compute_bounds(
        self,
        relaxed_queries: list[LabeledGraph],
        graph_bounds: dict[int, SipBounds],
    ) -> SspBounds:
        """Compute ``(Usim, Lsim)`` for one graph.

        Parameters
        ----------
        relaxed_queries:
            The set ``U = {rq1..rqa}``.
        graph_bounds:
            The graph's PMI row ``Dg`` — {feature_id: SipBounds} restricted to
            features present in the graph's skeleton.
        """
        containment = self._containment_relations(relaxed_queries, graph_bounds)
        usim, usim_covered = self._upper_bound(relaxed_queries, graph_bounds, containment)
        lsim, lsim_covered = self._lower_bound(relaxed_queries, graph_bounds, containment)
        return SspBounds(
            usim=usim, lsim=lsim, usim_covered=usim_covered, lsim_covered=lsim_covered
        )

    def decide(self, bounds: SspBounds, probability_threshold: float) -> PruningDecision:
        """Apply the two pruning conditions to the computed bounds."""
        if bounds.usim_covered and bounds.usim < probability_threshold:
            return PruningDecision.PRUNED
        if bounds.lsim_covered and bounds.lsim >= probability_threshold:
            return PruningDecision.ACCEPTED
        return PruningDecision.CANDIDATE

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _containment_relations(
        self,
        relaxed_queries: list[LabeledGraph],
        graph_bounds: dict[int, SipBounds],
    ) -> dict[int, dict[str, set[int]]]:
        """For each available feature: which rq's contain it / are contained in it.

        ``sub[j]`` holds indices i with ``fj ⊆iso rqi`` (feature inside the
        relaxed query, used for the upper bound); ``super[j]`` holds indices
        with ``rqi ⊆iso fj`` (feature contains the relaxed query, used for
        the lower bound).
        """
        relations: dict[int, dict[str, set[int]]] = {}
        for feature_id in graph_bounds:
            feature = self.features.get(feature_id)
            if feature is None:
                continue
            sub_of: set[int] = set()
            super_of: set[int] = set()
            for index, relaxed in enumerate(relaxed_queries):
                if feature.graph.num_edges <= relaxed.num_edges and is_subgraph_isomorphic(
                    feature.graph, relaxed
                ):
                    sub_of.add(index)
                if feature.graph.num_edges >= relaxed.num_edges and is_subgraph_isomorphic(
                    relaxed, feature.graph
                ):
                    super_of.add(index)
            relations[feature_id] = {"sub": sub_of, "super": super_of}
        return relations

    def _upper_bound(
        self,
        relaxed_queries: list[LabeledGraph],
        graph_bounds: dict[int, SipBounds],
        containment: dict[int, dict[str, set[int]]],
    ) -> tuple[float, bool]:
        universe = frozenset(range(len(relaxed_queries)))
        candidates = [
            WeightedSet(
                set_id=feature_id,
                members=frozenset(relations["sub"]),
                weight=graph_bounds[feature_id].upper,
            )
            for feature_id, relations in containment.items()
            if relations["sub"]
        ]
        if not candidates:
            return 1.0, False
        if self.config.optimal_usim:
            solution = greedy_weighted_set_cover(universe, candidates)
            if not solution.covered:
                return 1.0, False
            return min(1.0, solution.total_weight), True
        # plain SSPBound: one arbitrary feature per relaxed query
        total = 0.0
        for index in universe:
            matching = [c for c in candidates if index in c.members]
            if not matching:
                return 1.0, False
            total += matching[0].weight
        return min(1.0, total), True

    def _lower_bound(
        self,
        relaxed_queries: list[LabeledGraph],
        graph_bounds: dict[int, SipBounds],
        containment: dict[int, dict[str, set[int]]],
    ) -> tuple[float, bool]:
        universe = frozenset(range(len(relaxed_queries)))
        candidates = [
            QPSet(
                set_id=feature_id,
                members=frozenset(relations["super"]),
                lower_weight=graph_bounds[feature_id].lower,
                upper_weight=graph_bounds[feature_id].upper,
            )
            for feature_id, relations in containment.items()
            if relations["super"]
        ]
        if not candidates:
            return 0.0, False
        if self.config.optimal_lsim:
            result = solve_lsim_rounding(universe, candidates, rng=self.rng)
            if not result.covered:
                return 0.0, False
            return max(0.0, min(1.0, result.lower_bound)), True
        # plain SSPBound: one arbitrary covering feature per relaxed query
        chosen: list[QPSet] = []
        for index in universe:
            matching = [c for c in candidates if index in c.members]
            if not matching:
                return 0.0, False
            if matching[0] not in chosen:
                chosen.append(matching[0])
        lower_sum = sum(c.lower_weight for c in chosen)
        upper_sum = sum(c.upper_weight for c in chosen)
        return max(0.0, min(1.0, lower_sum - upper_sum * upper_sum)), True
