"""Probabilistic pruning (Section 3): SSP bounds and Pruning conditions 1 & 2.

For each candidate graph that survived structural pruning, the pruner derives
an upper bound ``Usim(q)`` and a lower bound ``Lsim(q)`` of the subgraph
similarity probability from the PMI's per-feature SIP bounds:

* **Pruning 1 (subgraph pruning, Theorem 3)** — features contained in the
  relaxed queries give ``Usim``; if ``Usim < ε`` the graph is pruned.
* **Pruning 2 (super-graph pruning, Theorem 4)** — features containing the
  relaxed queries give ``Lsim``; if ``Lsim ≥ ε`` the graph is accepted
  without verification.

The *tightest* bounds use weighted set cover (Algorithm 1) and the QP
rounding scheme (Algorithm 2); the plain variants pick one arbitrary feature
per relaxed query, matching the SSPBound / OPT-SSPBound split in the paper's
experiments.

The feature-vs-relaxed-query containment relations depend only on the query,
not on the candidate graph, so :meth:`ProbabilisticPruner.prepare` computes
them once per query (one VF2 pass per feature) and every candidate reuses
them.  On the hot path the pruner reads SIP intervals straight from the PMI's
columnar row views (:meth:`compute_bounds_from_row`) and the final
pruned/accepted decision over a whole candidate set is one vectorized array
pass (:meth:`decide_batch`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.quadratic_program import QPSet, solve_lsim_rounding
from repro.core.set_cover import WeightedSet, greedy_weighted_set_cover
from repro.graphs.labeled_graph import LabeledGraph
from repro.isomorphism.generic_join import match_block
from repro.isomorphism.vf2 import is_subgraph_isomorphic
from repro.pmi.bounds import SipBounds
from repro.pmi.features import Feature
from repro.pmi.index import PMIRow
from repro.utils.rng import RandomLike, ensure_rng


class PruningDecision(enum.Enum):
    """Outcome of probabilistic pruning for one graph."""

    PRUNED = "pruned"              # Usim < ε : cannot be an answer
    ACCEPTED = "accepted"          # Lsim ≥ ε : answer without verification
    CANDIDATE = "candidate"        # needs verification


@dataclass(frozen=True)
class SspBounds:
    """Derived bounds of the subgraph similarity probability for one graph."""

    usim: float
    lsim: float
    usim_covered: bool
    lsim_covered: bool


@dataclass(frozen=True)
class FeatureContainment:
    """Query-only containment relations of one feature.

    ``sub_of`` holds relaxed-query indices i with ``f ⊆iso rqi`` (feature
    inside the relaxed query, used for the upper bound); ``super_of`` holds
    indices with ``rqi ⊆iso f`` (feature contains the relaxed query, used for
    the lower bound).
    """

    sub_of: frozenset
    super_of: frozenset

    @property
    def is_useful(self) -> bool:
        return bool(self.sub_of) or bool(self.super_of)


@dataclass(frozen=True)
class PruningConfig:
    """Which bound variants to use (the paper's SSPBound vs OPT-SSPBound)."""

    optimal_usim: bool = True
    optimal_lsim: bool = True


class ProbabilisticPruner:
    """Applies Pruning 1 and Pruning 2 using PMI bounds."""

    def __init__(
        self,
        features: list[Feature],
        config: PruningConfig | None = None,
        rng: RandomLike = None,
    ) -> None:
        self.features = {feature.feature_id: feature for feature in features}
        self.config = config or PruningConfig()
        self.rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def prepare(
        self, relaxed_queries: list[LabeledGraph]
    ) -> dict[int, FeatureContainment]:
        """Containment relations of *every* feature against the relaxed set.

        These relations are independent of the candidate graph, so a query
        computes them exactly once and shares them across all candidates
        (the seed recomputed this VF2 work per candidate graph).  Features
        related to no relaxed query can never contribute a bound candidate,
        so they are dropped here and the per-candidate loop skips them.
        """
        relations = self._containment_for(self.features, relaxed_queries)
        return {
            feature_id: containment
            for feature_id, containment in relations.items()
            if containment.is_useful
        }

    def compute_bounds(
        self,
        relaxed_queries: list[LabeledGraph],
        graph_bounds: dict[int, SipBounds],
        containment: dict[int, FeatureContainment] | None = None,
        rng: RandomLike = None,
    ) -> SspBounds:
        """Compute ``(Usim, Lsim)`` for one graph.

        Parameters
        ----------
        relaxed_queries:
            The set ``U = {rq1..rqa}``.
        graph_bounds:
            The graph's PMI row ``Dg`` — {feature_id: SipBounds} restricted to
            features present in the graph's skeleton.
        containment:
            Optional precomputed relations from :meth:`prepare`; computed on
            the fly (restricted to ``graph_bounds``) when omitted.
        """
        if containment is None:
            containment = self._containment_for(graph_bounds, relaxed_queries)
        intervals = {
            feature_id: bounds.as_pair()
            for feature_id, bounds in graph_bounds.items()
            if feature_id in containment
        }
        return self._bounds_from_intervals(relaxed_queries, intervals, containment, rng)

    def compute_bounds_from_row(
        self,
        relaxed_queries: list[LabeledGraph],
        row: PMIRow,
        containment: dict[int, FeatureContainment],
        rng: RandomLike = None,
    ) -> SspBounds:
        """Hot-path variant of :meth:`compute_bounds` over a columnar PMI row.

        Reads ``(LowerB, UpperB)`` straight from the row's array views,
        building only a small interval map for the features that are both
        present in the graph and useful for the query — no per-candidate
        full-row dict copies or ``SipBounds`` reconstruction.
        """
        intervals: dict[int, tuple[float, float]] = {}
        for column in np.flatnonzero(row.present):
            feature_id = int(row.feature_ids[column])
            if feature_id in containment:
                intervals[feature_id] = row.interval(column)
        return self._bounds_from_intervals(relaxed_queries, intervals, containment, rng)

    def decide(self, bounds: SspBounds, probability_threshold: float) -> PruningDecision:
        """Apply the two pruning conditions to the computed bounds."""
        if bounds.usim_covered and bounds.usim < probability_threshold:
            return PruningDecision.PRUNED
        if bounds.lsim_covered and bounds.lsim >= probability_threshold:
            return PruningDecision.ACCEPTED
        return PruningDecision.CANDIDATE

    @staticmethod
    def decide_batch(
        bounds_list: list[SspBounds], probability_threshold: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`decide` over a whole candidate set.

        Returns ``(pruned_mask, accepted_mask)`` boolean arrays index-aligned
        with ``bounds_list``; candidates with neither flag set need
        verification.  The masks reproduce the sequential rule exactly:
        Pruning 1 wins when both conditions fire.
        """
        if not bounds_list:
            empty = np.zeros(0, dtype=bool)
            return empty, empty
        usim = np.array([b.usim for b in bounds_list])
        lsim = np.array([b.lsim for b in bounds_list])
        usim_covered = np.array([b.usim_covered for b in bounds_list], dtype=bool)
        lsim_covered = np.array([b.lsim_covered for b in bounds_list], dtype=bool)
        pruned = usim_covered & (usim < probability_threshold)
        accepted = ~pruned & lsim_covered & (lsim >= probability_threshold)
        return pruned, accepted

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _containment_for(
        self,
        feature_ids,
        relaxed_queries: list[LabeledGraph],
    ) -> dict[int, FeatureContainment]:
        """Relations for the given feature ids (iterated in their order)."""
        relations: dict[int, FeatureContainment] = {}
        for feature_id in feature_ids:
            feature = self.features.get(feature_id)
            if feature is None:
                continue
            # f ⊆iso rq: one block per feature, the feature's plan is shared
            # across every relaxed query that passes the edge-count filter
            sub_indices = [
                index
                for index, relaxed in enumerate(relaxed_queries)
                if feature.graph.num_edges <= relaxed.num_edges
            ]
            sub_matches = match_block(
                feature.graph, [relaxed_queries[i] for i in sub_indices]
            )
            sub_of = {
                index for index, match in zip(sub_indices, sub_matches) if match
            }
            # rq ⊆iso f: the relaxed query is the pattern here, so its
            # compiled plan is shared across all features instead
            super_of = {
                index
                for index, relaxed in enumerate(relaxed_queries)
                if feature.graph.num_edges >= relaxed.num_edges
                and is_subgraph_isomorphic(relaxed, feature.graph)
            }
            relations[feature_id] = FeatureContainment(
                sub_of=frozenset(sub_of), super_of=frozenset(super_of)
            )
        return relations

    def _bounds_from_intervals(
        self,
        relaxed_queries: list[LabeledGraph],
        intervals: dict[int, tuple[float, float]],
        containment: dict[int, FeatureContainment],
        rng: RandomLike = None,
    ) -> SspBounds:
        generator = self.rng if rng is None else ensure_rng(rng)
        usim, usim_covered = self._upper_bound(relaxed_queries, intervals, containment)
        lsim, lsim_covered = self._lower_bound(
            relaxed_queries, intervals, containment, generator
        )
        return SspBounds(
            usim=usim, lsim=lsim, usim_covered=usim_covered, lsim_covered=lsim_covered
        )

    def _upper_bound(
        self,
        relaxed_queries: list[LabeledGraph],
        intervals: dict[int, tuple[float, float]],
        containment: dict[int, FeatureContainment],
    ) -> tuple[float, bool]:
        universe = frozenset(range(len(relaxed_queries)))
        candidates = [
            WeightedSet(
                set_id=feature_id,
                members=containment[feature_id].sub_of,
                weight=intervals[feature_id][1],
            )
            for feature_id in intervals
            if containment[feature_id].sub_of
        ]
        if not candidates:
            return 1.0, False
        if self.config.optimal_usim:
            solution = greedy_weighted_set_cover(universe, candidates)
            if not solution.covered:
                return 1.0, False
            return min(1.0, solution.total_weight), True
        # plain SSPBound: one arbitrary feature per relaxed query
        total = 0.0
        for index in universe:
            matching = [c for c in candidates if index in c.members]
            if not matching:
                return 1.0, False
            total += matching[0].weight
        return min(1.0, total), True

    def _lower_bound(
        self,
        relaxed_queries: list[LabeledGraph],
        intervals: dict[int, tuple[float, float]],
        containment: dict[int, FeatureContainment],
        rng,
    ) -> tuple[float, bool]:
        universe = frozenset(range(len(relaxed_queries)))
        candidates = [
            QPSet(
                set_id=feature_id,
                members=containment[feature_id].super_of,
                lower_weight=intervals[feature_id][0],
                upper_weight=intervals[feature_id][1],
            )
            for feature_id in intervals
            if containment[feature_id].super_of
        ]
        if not candidates:
            return 0.0, False
        if self.config.optimal_lsim:
            result = solve_lsim_rounding(universe, candidates, rng=rng)
            if not result.covered:
                return 0.0, False
            return max(0.0, min(1.0, result.lower_bound)), True
        # plain SSPBound: one arbitrary covering feature per relaxed query
        chosen: list[QPSet] = []
        for index in sorted(universe):
            matching = [c for c in candidates if index in c.members]
            if not matching:
                return 0.0, False
            if matching[0] not in chosen:
                chosen.append(matching[0])
        lower_sum = sum(c.lower_weight for c in chosen)
        upper_sum = sum(c.upper_weight for c in chosen)
        return max(0.0, min(1.0, lower_sum - upper_sum * upper_sum)), True
