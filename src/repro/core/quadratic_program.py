"""Tightest lower bound ``Lsim(q)`` via relaxed QP + randomized rounding
(Section 3.2.2, Definition 11, Algorithm 2, Theorem 5).

Features that are *super*graphs of relaxed queries define sets
``si = {rqj : rqj ⊆iso fi}`` with pair weights ``(wL, wU) = (LowerB(fi),
UpperB(fi))``.  Choosing a sub-collection ``C`` covering ``U`` yields the
valid lower bound (Theorem 4)

    Σ_{i∈C} wL(si)  −  Σ_{i,j∈C} wU(si)·wU(sj).

Maximizing this is an integer quadratic program; the paper relaxes the 0/1
indicators to [0, 1] (the relaxation is a concave maximization because the
quadratic term is −(Σ x_i wU_i)² over ordered pairs), solves the convex QP,
and rounds with ``2·ln|U|`` independent randomized passes.  We solve the
relaxation with SciPy's SLSQP and fall back to a projected-gradient loop when
SciPy declines, then apply Algorithm 2's rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RandomLike, ensure_rng

try:  # SciPy is a hard dependency of the package, but keep the import local
    from scipy.optimize import minimize
except ImportError:  # pragma: no cover - exercised only without SciPy
    minimize = None


@dataclass(frozen=True)
class QPSet:
    """One candidate set for the Lsim program."""

    set_id: int
    members: frozenset
    lower_weight: float
    upper_weight: float


@dataclass(frozen=True)
class QPResult:
    """Outcome of the relaxation + rounding."""

    chosen_ids: tuple[int, ...]
    lower_bound: float
    relaxed_objective: float
    covered: bool


def _objective(x: np.ndarray, wl: np.ndarray, wu: np.ndarray) -> float:
    """The (to be maximized) objective Σ x·wL − (Σ x·wU)²  (ordered pairs)."""
    linear = float(np.dot(x, wl))
    quadratic = float(np.dot(x, wu)) ** 2
    return linear - quadratic


def solve_relaxed_qp(sets: list[QPSet], universe: frozenset) -> np.ndarray:
    """Solve the continuous relaxation; returns the optimal x* in [0,1]^n."""
    n = len(sets)
    if n == 0:
        return np.zeros(0)
    wl = np.array([s.lower_weight for s in sets], dtype=float)
    wu = np.array([s.upper_weight for s in sets], dtype=float)
    membership = np.zeros((len(universe), n))
    universe_list = sorted(universe, key=repr)
    for row, element in enumerate(universe_list):
        for col, candidate in enumerate(sets):
            if element in candidate.members:
                membership[row, col] = 1.0

    def negative_objective(x: np.ndarray) -> float:
        return -_objective(x, wl, wu)

    def negative_gradient(x: np.ndarray) -> np.ndarray:
        return -(wl - 2.0 * float(np.dot(x, wu)) * wu)

    constraints = [
        {"type": "ineq", "fun": lambda x, row=row: float(membership[row] @ x) - 1.0}
        for row in range(len(universe_list))
    ]
    x0 = np.full(n, 0.5)
    if minimize is not None:
        solution = minimize(
            negative_objective,
            x0,
            jac=negative_gradient,
            bounds=[(0.0, 1.0)] * n,
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": 200, "ftol": 1e-9},
        )
        if solution.success or solution.status in (4, 8):  # accept near-feasible results
            return np.clip(solution.x, 0.0, 1.0)
    return _projected_gradient(wl, wu, membership, x0)


def _projected_gradient(
    wl: np.ndarray, wu: np.ndarray, membership: np.ndarray, x0: np.ndarray, steps: int = 300
) -> np.ndarray:
    """Simple projected ascent fallback honouring coverage by clamping.

    After each gradient step, any uncovered universe element pushes the
    largest-membership coordinate upward; the result is feasible whenever a
    cover exists.
    """
    x = x0.copy()
    step = 0.05
    for _ in range(steps):
        gradient = wl - 2.0 * float(np.dot(x, wu)) * wu
        x = np.clip(x + step * gradient, 0.0, 1.0)
        coverage = membership @ x
        for row in np.where(coverage < 1.0)[0]:
            columns = np.where(membership[row] > 0)[0]
            if columns.size:
                x[columns[np.argmax(wl[columns])]] = 1.0
    return x


def rounding_passes(universe_size: int) -> int:
    """Algorithm 2 runs ``2 ln|U|`` independent rounding passes (at least 1)."""
    import math

    return max(1, int(np.ceil(2.0 * math.log(max(2, universe_size)))))


def solve_lsim_rounding(
    universe: frozenset | set,
    sets: list[QPSet],
    rng: RandomLike = None,
) -> QPResult:
    """Full Algorithm 2: relaxed QP, randomized rounding, objective evaluation.

    The rounding keeps the best (feasible-first) selection across passes and
    always includes a greedy repair that forces coverage, so the reported
    bound corresponds to an actual cover whenever one exists.
    """
    universe = frozenset(universe)
    if not sets or not universe:
        return QPResult((), 0.0, 0.0, covered=False)
    generator = ensure_rng(rng)
    fractional = solve_relaxed_qp(sets, universe)
    relaxed_value = _objective(
        fractional,
        np.array([s.lower_weight for s in sets]),
        np.array([s.upper_weight for s in sets]),
    )

    best_selection: list[int] | None = None
    best_value = -np.inf
    passes = rounding_passes(len(universe))
    for _ in range(passes):
        picked = [i for i, p in enumerate(fractional) if generator.random() < p]
        picked = _repair_cover(picked, sets, universe)
        value, covered = _evaluate(picked, sets, universe)
        if covered and value > best_value:
            best_value = value
            best_selection = picked
    if best_selection is None:
        # final deterministic fallback: take everything
        picked = list(range(len(sets)))
        value, covered = _evaluate(picked, sets, universe)
        best_selection, best_value = picked, value
        if not covered:
            return QPResult((), 0.0, relaxed_value, covered=False)
    chosen_ids = tuple(sorted(sets[i].set_id for i in best_selection))
    return QPResult(
        chosen_ids=chosen_ids,
        lower_bound=max(0.0, best_value),
        relaxed_objective=relaxed_value,
        covered=True,
    )


def _repair_cover(picked: list[int], sets: list[QPSet], universe: frozenset) -> list[int]:
    """Greedily add sets until the universe is covered (if possible)."""
    covered = set()
    for index in picked:
        covered |= sets[index].members
    missing = set(universe) - covered
    result = list(picked)
    while missing:
        best_index = None
        best_gain = 0
        for index, candidate in enumerate(sets):
            if index in result:
                continue
            gain = len(candidate.members & missing)
            if gain > best_gain:
                best_gain = gain
                best_index = index
        if best_index is None:
            break
        result.append(best_index)
        missing -= sets[best_index].members
    return result


def _evaluate(picked: list[int], sets: list[QPSet], universe: frozenset) -> tuple[float, bool]:
    """Objective value of an integer selection and whether it covers U."""
    covered = set()
    lower_sum = 0.0
    upper_sum = 0.0
    for index in picked:
        covered |= sets[index].members
        lower_sum += sets[index].lower_weight
        upper_sum += sets[index].upper_weight
    value = lower_sum - upper_sum * upper_sum
    return value, universe <= covered
