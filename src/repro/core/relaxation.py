"""Query relaxation: the remaining-graph set ``U = {rq1, ..., rqa}``.

Lemma 1 rewrites the subgraph similarity probability as the probability that
at least one graph obtained from ``q`` by relaxing exactly ``δ`` edges is a
subgraph of the possible world.  Relaxation operations are edge deletions and
edge relabelings (insertions never help a subgraph query).  The relaxed set
is deduplicated by canonical form and capped to keep downstream work bounded,
mirroring the role of [38] in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.exceptions import QueryError
from repro.graphs.canonical import canonical_form
from repro.graphs.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class RelaxationConfig:
    """Controls how the relaxed query set is generated.

    Attributes
    ----------
    include_relabelings:
        Also generate variants where deleted-edge slots are replaced by a
        relabeled edge.  The paper allows deletions and relabelings; pure
        deletions already dominate the probability (a relabeled variant is a
        supergraph of the deletion variant), so the default keeps only
        deletions, which is both cheaper and sufficient for the bound
        computations.
    require_connected:
        Drop relaxed graphs that become disconnected.  Connected variants
        make feature containment tests cheaper; disconnected ones are still
        legal per Definition 5, so this defaults to False.
    drop_isolated_vertices:
        Remove vertices left with no incident edge after deletion.
    max_variants:
        Hard cap on the size of ``U``.
    """

    include_relabelings: bool = False
    require_connected: bool = False
    drop_isolated_vertices: bool = True
    max_variants: int = 64


def relax_query(
    query: LabeledGraph,
    distance_threshold: int,
    config: RelaxationConfig | None = None,
    edge_label_alphabet: list | None = None,
) -> list[LabeledGraph]:
    """Generate the relaxed query set ``U`` for ``distance_threshold`` edges.

    Parameters
    ----------
    query:
        The connected query graph.
    distance_threshold:
        ``δ``; exactly this many edges are relaxed (Lemma 1 shows the sets
        for smaller relaxations are subsumed).
    edge_label_alphabet:
        Labels available for relabeling variants (ignored unless
        ``config.include_relabelings``).

    Returns
    -------
    list[LabeledGraph]
        Deduplicated relaxed queries; the original query when ``δ == 0``.
    """
    cfg = config or RelaxationConfig()
    if distance_threshold < 0:
        raise QueryError("distance threshold must be >= 0")
    if query.num_edges == 0:
        raise QueryError("query graph must contain at least one edge")
    if distance_threshold >= query.num_edges:
        raise QueryError(
            f"distance threshold {distance_threshold} must be smaller than the "
            f"query size ({query.num_edges} edges); every graph would match trivially"
        )
    if distance_threshold == 0:
        return [query.copy()]

    edge_keys = sorted(query.edge_keys(), key=repr)
    variants: dict[str, LabeledGraph] = {}
    for deletion in combinations(edge_keys, distance_threshold):
        relaxed = query.copy()
        for u, v in deletion:
            relaxed.remove_edge(u, v)
        if cfg.drop_isolated_vertices:
            relaxed.remove_isolated_vertices()
        if relaxed.num_edges == 0:
            continue
        if cfg.require_connected and not relaxed.is_connected():
            continue
        key = canonical_form(relaxed)
        if key not in variants:
            variants[key] = relaxed
        if cfg.include_relabelings and edge_label_alphabet:
            for relabeled in _relabel_variants(query, deletion, edge_label_alphabet, cfg):
                relabel_key = canonical_form(relabeled)
                if relabel_key not in variants:
                    variants[relabel_key] = relabeled
                if len(variants) >= cfg.max_variants:
                    break
        if len(variants) >= cfg.max_variants:
            break
    ordered = sorted(variants.values(), key=canonical_form)
    return ordered[: cfg.max_variants]


def _relabel_variants(
    query: LabeledGraph,
    deletion: tuple,
    edge_label_alphabet: list,
    cfg: RelaxationConfig,
) -> list[LabeledGraph]:
    """Variants that relabel (rather than delete) the relaxed edges."""
    variants = []
    for u, v in deletion:
        original_label = query.edge_label(u, v)
        for label in edge_label_alphabet:
            if label == original_label:
                continue
            relabeled = query.copy()
            for du, dv in deletion:
                relabeled.remove_edge(du, dv)
            relabeled.add_edge(u, v, label)
            if cfg.drop_isolated_vertices:
                relabeled.remove_isolated_vertices()
            if relabeled.num_edges == 0:
                continue
            if cfg.require_connected and not relabeled.is_connected():
                continue
            variants.append(relabeled)
    return variants
