"""Result and statistics containers returned by the search engine."""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class QueryAnswer:
    """One graph returned by a query.

    ``decided_by`` records which stage produced the answer:
    ``"lower_bound"`` (accepted by Pruning 2 without verification) or
    ``"verification"``.  ``probability`` is the Lsim lower bound in the first
    case and the verified SSP estimate in the second.
    """

    graph_id: int
    graph_name: str | None
    probability: float
    decided_by: str

    def as_dict(self) -> dict:
        """JSON-serializable form; :meth:`from_dict` round-trips it exactly.

        ``probability`` survives the trip bit-for-bit: ``json`` emits
        ``repr(float)`` (shortest round-tripping decimal), so the service
        layer can ship answers over the wire without breaking byte-parity.
        """
        return {
            "graph_id": self.graph_id,
            "graph_name": self.graph_name,
            "probability": self.probability,
            "decided_by": self.decided_by,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryAnswer":
        return cls(
            graph_id=int(data["graph_id"]),
            graph_name=data["graph_name"],
            probability=float(data["probability"]),
            decided_by=data["decided_by"],
        )


@dataclass
class StageStatistics:
    """Counters and wall time for one pipeline stage of one query run.

    ``examined`` is the candidate-set size entering the stage; ``pruned``
    counts candidates the stage discarded (including top-k candidates skipped
    against the tightening probability floor); ``accepted`` counts answers the
    stage emitted without further work (Pruning 2 accepts, verified answers);
    ``passed`` is what the stage handed to its successor.
    """

    stage: str
    examined: int = 0
    pruned: int = 0
    accepted: int = 0
    passed: int = 0
    seconds: float = 0.0

    def counters_dict(self) -> dict:
        """The deterministic (non-timing) fields, for serialization/parity."""
        return {
            "stage": self.stage,
            "examined": self.examined,
            "pruned": self.pruned,
            "accepted": self.accepted,
            "passed": self.passed,
        }


@dataclass
class QueryStatistics:
    """Per-phase counters and timings for one query run.

    The legacy top-level fields mirror the paper's three-phase accounting;
    ``stages`` carries one :class:`StageStatistics` per pipeline stage in
    execution order, so custom pipelines report per-stage work without new
    top-level fields.
    """

    database_size: int = 0
    structural_candidates: int = 0
    probabilistic_candidates: int = 0
    accepted_by_lower_bound: int = 0
    pruned_by_upper_bound: int = 0
    verified: int = 0
    answers: int = 0
    structural_seconds: float = 0.0
    probabilistic_seconds: float = 0.0
    verification_seconds: float = 0.0
    total_seconds: float = 0.0
    relaxed_query_count: int = 0
    stages: list[StageStatistics] = field(default_factory=list)

    @classmethod
    def merge(cls, parts: Iterable["QueryStatistics"]) -> "QueryStatistics":
        """Combine per-shard statistics of *one* query into whole-database stats.

        Each shard runs the full pipeline over a disjoint slice of the
        database, so candidate/pruned/accepted/verified/answer counters (and
        the per-shard database sizes) sum to exactly the sequential planner's
        counters — both the legacy top-level fields and the per-stage
        ``stages`` entries, which are matched positionally and must name the
        same stage sequence in every part (a :class:`ValueError` otherwise:
        summing counters across *different* pipelines would silently produce
        nonsense).  Wall-clock fields take the *max* over shards — the
        critical path of a concurrent run; when shards instead run serially
        in-process (``max_workers<=1``) this understates total elapsed time,
        so treat the counters as the contract and the timings as concurrent-
        execution diagnostics.  ``relaxed_query_count`` also takes the max:
        every shard computes it identically for the same query.
        """
        merged = cls()
        stage_names: list[str] | None = None
        for stats in parts:
            merged.database_size += stats.database_size
            merged.structural_candidates += stats.structural_candidates
            merged.probabilistic_candidates += stats.probabilistic_candidates
            merged.accepted_by_lower_bound += stats.accepted_by_lower_bound
            merged.pruned_by_upper_bound += stats.pruned_by_upper_bound
            merged.verified += stats.verified
            merged.answers += stats.answers
            merged.structural_seconds = max(merged.structural_seconds, stats.structural_seconds)
            merged.probabilistic_seconds = max(
                merged.probabilistic_seconds, stats.probabilistic_seconds
            )
            merged.verification_seconds = max(
                merged.verification_seconds, stats.verification_seconds
            )
            merged.total_seconds = max(merged.total_seconds, stats.total_seconds)
            merged.relaxed_query_count = max(
                merged.relaxed_query_count, stats.relaxed_query_count
            )
            names = [stage.stage for stage in stats.stages]
            if stage_names is None:
                stage_names = names
                merged.stages = [StageStatistics(stage=name) for name in names]
            elif names != stage_names:
                raise ConfigurationError(
                    "cannot merge statistics from different pipelines: "
                    f"stage lists {stage_names!r} and {names!r} disagree"
                )
            for merged_stage, stage in zip(merged.stages, stats.stages):
                merged_stage.examined += stage.examined
                merged_stage.pruned += stage.pruned
                merged_stage.accepted += stage.accepted
                merged_stage.passed += stage.passed
                merged_stage.seconds = max(merged_stage.seconds, stage.seconds)
        return merged

    def as_dict(self) -> dict:
        """Plain-dict view (benchmarks serialize this).

        Per-stage wall times live under ``stage_seconds`` (suffix-matched
        with the other timing keys) so counter-only consumers can drop every
        ``*_seconds`` entry and keep a fully deterministic dict.
        """
        return {
            "database_size": self.database_size,
            "structural_candidates": self.structural_candidates,
            "probabilistic_candidates": self.probabilistic_candidates,
            "accepted_by_lower_bound": self.accepted_by_lower_bound,
            "pruned_by_upper_bound": self.pruned_by_upper_bound,
            "verified": self.verified,
            "answers": self.answers,
            "structural_seconds": round(self.structural_seconds, 6),
            "probabilistic_seconds": round(self.probabilistic_seconds, 6),
            "verification_seconds": round(self.verification_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "relaxed_query_count": self.relaxed_query_count,
            "stage_counters": [stage.counters_dict() for stage in self.stages],
            "stage_seconds": {
                stage.stage: round(stage.seconds, 6) for stage in self.stages
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryStatistics":
        """Inverse of :meth:`as_dict`.

        Counters (the deterministic contract) round-trip exactly; the
        ``*_seconds`` fields come back rounded to the microsecond
        :meth:`as_dict` serialized, which is all a remote caller ever saw.
        """
        stats = cls(
            database_size=int(data.get("database_size", 0)),
            structural_candidates=int(data.get("structural_candidates", 0)),
            probabilistic_candidates=int(data.get("probabilistic_candidates", 0)),
            accepted_by_lower_bound=int(data.get("accepted_by_lower_bound", 0)),
            pruned_by_upper_bound=int(data.get("pruned_by_upper_bound", 0)),
            verified=int(data.get("verified", 0)),
            answers=int(data.get("answers", 0)),
            structural_seconds=float(data.get("structural_seconds", 0.0)),
            probabilistic_seconds=float(data.get("probabilistic_seconds", 0.0)),
            verification_seconds=float(data.get("verification_seconds", 0.0)),
            total_seconds=float(data.get("total_seconds", 0.0)),
            relaxed_query_count=int(data.get("relaxed_query_count", 0)),
        )
        stage_seconds = data.get("stage_seconds", {})
        for counters in data.get("stage_counters", []):
            stats.stages.append(
                StageStatistics(
                    stage=counters["stage"],
                    examined=int(counters["examined"]),
                    pruned=int(counters["pruned"]),
                    accepted=int(counters["accepted"]),
                    passed=int(counters["passed"]),
                    seconds=float(stage_seconds.get(counters["stage"], 0.0)),
                )
            )
        return stats


@dataclass
class QueryResult:
    """Answers plus statistics for one query."""

    answers: list[QueryAnswer] = field(default_factory=list)
    statistics: QueryStatistics = field(default_factory=QueryStatistics)

    def answer_ids(self) -> set[int]:
        return {answer.graph_id for answer in self.answers}

    def as_dict(self) -> dict:
        """JSON-serializable form: the query service's wire format.

        Answers round-trip byte-identically (see :meth:`QueryAnswer.as_dict`)
        and the statistics counters round-trip exactly, so a remote caller
        can hold the service to the same parity contract as library mode.
        """
        return {
            "answers": [answer.as_dict() for answer in self.answers],
            "statistics": self.statistics.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryResult":
        return cls(
            answers=[QueryAnswer.from_dict(entry) for entry in data["answers"]],
            statistics=QueryStatistics.from_dict(data["statistics"]),
        )

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self):
        return iter(self.answers)


def aggregate_statistics(results: Iterable[QueryResult]) -> dict:
    """Workload-level totals over many query results (``query_many`` output).

    Counters and per-phase timings are summed; ``num_queries`` and the mean
    per-query wall clock are derived.  Per-stage entries accumulate by stage
    name (queries run under different pipelines simply contribute their own
    stages).  Benchmarks serialize this alongside
    :meth:`QueryStatistics.as_dict`.
    """
    totals = QueryStatistics()
    stage_totals: dict[str, StageStatistics] = {}
    num_queries = 0
    for result in results:
        stats = result.statistics
        num_queries += 1
        totals.database_size = max(totals.database_size, stats.database_size)
        totals.structural_candidates += stats.structural_candidates
        totals.probabilistic_candidates += stats.probabilistic_candidates
        totals.accepted_by_lower_bound += stats.accepted_by_lower_bound
        totals.pruned_by_upper_bound += stats.pruned_by_upper_bound
        totals.verified += stats.verified
        totals.answers += stats.answers
        totals.structural_seconds += stats.structural_seconds
        totals.probabilistic_seconds += stats.probabilistic_seconds
        totals.verification_seconds += stats.verification_seconds
        totals.total_seconds += stats.total_seconds
        totals.relaxed_query_count += stats.relaxed_query_count
        for stage in stats.stages:
            bucket = stage_totals.setdefault(stage.stage, StageStatistics(stage=stage.stage))
            bucket.examined += stage.examined
            bucket.pruned += stage.pruned
            bucket.accepted += stage.accepted
            bucket.passed += stage.passed
            bucket.seconds += stage.seconds
    totals.stages = list(stage_totals.values())
    aggregated = totals.as_dict()
    aggregated["num_queries"] = num_queries
    aggregated["mean_seconds_per_query"] = round(
        totals.total_seconds / num_queries if num_queries else 0.0, 6
    )
    return aggregated
