"""Result and statistics containers returned by the search engine."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class QueryAnswer:
    """One graph returned by a query.

    ``decided_by`` records which stage produced the answer:
    ``"lower_bound"`` (accepted by Pruning 2 without verification) or
    ``"verification"``.  ``probability`` is the Lsim lower bound in the first
    case and the verified SSP estimate in the second.
    """

    graph_id: int
    graph_name: str | None
    probability: float
    decided_by: str


@dataclass
class QueryStatistics:
    """Per-phase counters and timings for one query run."""

    database_size: int = 0
    structural_candidates: int = 0
    probabilistic_candidates: int = 0
    accepted_by_lower_bound: int = 0
    pruned_by_upper_bound: int = 0
    verified: int = 0
    answers: int = 0
    structural_seconds: float = 0.0
    probabilistic_seconds: float = 0.0
    verification_seconds: float = 0.0
    total_seconds: float = 0.0
    relaxed_query_count: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (benchmarks serialize this)."""
        return {
            "database_size": self.database_size,
            "structural_candidates": self.structural_candidates,
            "probabilistic_candidates": self.probabilistic_candidates,
            "accepted_by_lower_bound": self.accepted_by_lower_bound,
            "pruned_by_upper_bound": self.pruned_by_upper_bound,
            "verified": self.verified,
            "answers": self.answers,
            "structural_seconds": round(self.structural_seconds, 6),
            "probabilistic_seconds": round(self.probabilistic_seconds, 6),
            "verification_seconds": round(self.verification_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "relaxed_query_count": self.relaxed_query_count,
        }


@dataclass
class QueryResult:
    """Answers plus statistics for one query."""

    answers: list[QueryAnswer] = field(default_factory=list)
    statistics: QueryStatistics = field(default_factory=QueryStatistics)

    def answer_ids(self) -> set[int]:
        return {answer.graph_id for answer in self.answers}

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self):
        return iter(self.answers)
