"""The end-to-end probabilistic subgraph similarity search engine.

:class:`ProbabilisticGraphDatabase` glues the three stages of Section 1.2
together:

1. **structural pruning** over the deterministic skeletons (Theorem 1),
2. **probabilistic pruning** with PMI-derived SSP bounds (Theorems 3 & 4),
3. **verification** of the remaining candidates (Algorithm 5 or exact).

``build_index()`` constructs a reusable :class:`~repro.core.planner.QueryPlanner`
once; ``query()`` is a thin plan execution and ``query_many()`` runs a whole
workload against the shared planner.

Typical usage::

    database = ProbabilisticGraphDatabase(graphs)
    database.build_index(rng=7)
    result = database.query(query_graph, probability_threshold=0.5,
                            distance_threshold=2)
    for answer in result.answers:
        print(answer.graph_id, answer.probability)

    # batch execution over a workload
    results = database.query_many(queries, 0.5, 2)

    # persist the PMI so other processes skip the expensive build
    database.pmi.save("pmi_dir")
    other = ProbabilisticGraphDatabase(graphs)
    other.build_index(pmi=ProbabilisticMatrixIndex.load("pmi_dir"))
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.planner import QueryPlanner, validate_query
from repro.core.pruning import PruningConfig
from repro.core.relaxation import RelaxationConfig
from repro.core.results import QueryResult
from repro.core.verification import VerificationConfig
from repro.exceptions import IndexError_
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.pmi.bounds import BoundConfig
from repro.pmi.features import FeatureSelectionConfig
from repro.pmi.index import ProbabilisticMatrixIndex
from repro.structural.feature_index import StructuralFeatureIndex
from repro.utils.rng import RandomLike, ensure_rng


@dataclass
class SearchConfig:
    """Per-query configuration of the pipeline stages."""

    relaxation: RelaxationConfig = field(default_factory=RelaxationConfig)
    pruning: PruningConfig = field(default_factory=PruningConfig)
    verification: VerificationConfig = field(default_factory=VerificationConfig)
    use_structural_pruning: bool = True
    use_probabilistic_pruning: bool = True


class ProbabilisticGraphDatabase:
    """A queryable collection of probabilistic graphs."""

    def __init__(self, graphs: list[ProbabilisticGraph]) -> None:
        if not graphs:
            raise ValueError("the database needs at least one probabilistic graph")
        self.graphs = list(graphs)
        self.pmi: ProbabilisticMatrixIndex | None = None
        self.structural_index: StructuralFeatureIndex | None = None
        self.planner: QueryPlanner | None = None

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def build_index(
        self,
        feature_config: FeatureSelectionConfig | None = None,
        bound_config: BoundConfig | None = None,
        rng: RandomLike = None,
        pmi: ProbabilisticMatrixIndex | None = None,
    ) -> "ProbabilisticGraphDatabase":
        """Mine features, build both indexes, and construct the query planner.

        Pass a prebuilt (for example :meth:`ProbabilisticMatrixIndex.load`-ed)
        ``pmi`` to skip the expensive SIP-bound computation; it must have been
        built over the same graphs in the same order.
        """
        generator = ensure_rng(rng)
        if pmi is not None:
            if feature_config is not None or bound_config is not None:
                raise IndexError_(
                    "feature_config/bound_config conflict with a prebuilt pmi; "
                    "the loaded index already carries its build configuration"
                )
            if pmi.database_size != len(self.graphs):
                raise IndexError_(
                    f"prebuilt PMI covers {pmi.database_size} graphs, "
                    f"database has {len(self.graphs)}"
                )
            self.pmi = pmi
        else:
            self.pmi = ProbabilisticMatrixIndex(
                feature_config=feature_config, bound_config=bound_config
            )
            self.pmi.build(self.graphs, rng=generator)
        self.structural_index = StructuralFeatureIndex(
            embedding_limit=self.pmi.feature_config.embedding_limit
        )
        self.structural_index.build(
            [graph.skeleton for graph in self.graphs], self.pmi.features
        )
        self.planner = QueryPlanner(self.graphs, self.pmi, self.structural_index)
        return self

    @property
    def is_indexed(self) -> bool:
        return self.planner is not None

    def __len__(self) -> int:
        return len(self.graphs)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(
        self,
        query_graph: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        config: SearchConfig | None = None,
        rng: RandomLike = None,
    ) -> QueryResult:
        """Run a threshold-based probabilistic subgraph similarity (T-PS) query."""
        self._validate_query(query_graph, probability_threshold, distance_threshold)
        if self.planner is None:
            raise IndexError_("call build_index() before querying")
        return self.planner.execute(
            query_graph, probability_threshold, distance_threshold, config, rng=rng
        )

    def query_many(
        self,
        query_graphs: list[LabeledGraph],
        probability_threshold: float,
        distance_threshold: int,
        config: SearchConfig | None = None,
        rng: RandomLike = None,
    ) -> list[QueryResult]:
        """Run a T-PS workload, amortizing planner setup across all queries.

        Returns one :class:`QueryResult` per query, in input order, with
        answers identical to issuing the same ``query()`` calls sequentially
        (an int or ``None`` ``rng`` is re-normalized per query; see
        :meth:`QueryPlanner.execute_many`).
        """
        if self.planner is None:
            raise IndexError_("call build_index() before querying")
        for query_graph in query_graphs:
            self._validate_query(query_graph, probability_threshold, distance_threshold)
        return self.planner.execute_many(
            query_graphs, probability_threshold, distance_threshold, config, rng=rng
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    # the planner validates again inside plan(); this up-front pass exists so
    # query_many rejects a malformed batch before any query executes
    _validate_query = staticmethod(validate_query)
