"""The end-to-end probabilistic subgraph similarity search engine.

:class:`ProbabilisticGraphDatabase` glues the three stages of Section 1.2
together:

1. **structural pruning** over the deterministic skeletons (Theorem 1),
2. **probabilistic pruning** with PMI-derived SSP bounds (Theorems 3 & 4),
3. **verification** of the remaining candidates (Algorithm 5 or exact).

``build_index()`` constructs a reusable :class:`~repro.core.planner.QueryPlanner`
once; ``query()`` is a thin plan execution and ``query_many()`` runs a whole
workload against the shared planner.

Typical usage::

    database = ProbabilisticGraphDatabase(graphs)
    database.build_index(rng=7)
    result = database.query(query_graph, probability_threshold=0.5,
                            distance_threshold=2)
    for answer in result.answers:
        print(answer.graph_id, answer.probability)

    # batch execution over a workload
    results = database.query_many(queries, 0.5, 2)

    # persist the PMI so other processes skip the expensive build
    database.pmi.save("pmi_dir")
    other = ProbabilisticGraphDatabase(graphs)
    other.build_index(pmi=ProbabilisticMatrixIndex.load("pmi_dir"))

    # scale across cores: K shards, queries fan out over a process pool
    # (note: the full matrices then live sliced inside the shards, so
    # ``database.pmi``/``database.structural_index`` are None — persist via
    # shard_cache_dir=..., which also makes warm rebuilds load, not compute)
    parallel = ProbabilisticGraphDatabase(graphs)
    parallel.build_index(num_shards=4, shard_cache_dir="shards_dir", rng=7)
    results = parallel.query_many(queries, 0.5, 2)
    parallel.close()  # or use the database as a context manager
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.planner import QueryPlanner, validate_query, validate_top_k_query
from repro.core.pruning import PruningConfig
from repro.core.relaxation import RelaxationConfig
from repro.core.results import QueryResult
from repro.core.verification import VerificationConfig
from repro.exceptions import ConfigurationError, IndexError_
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.pmi.bounds import BoundConfig
from repro.pmi.features import FeatureSelectionConfig
from repro.pmi.index import ProbabilisticMatrixIndex
from repro.structural.feature_index import StructuralFeatureIndex
from repro.utils.rng import RandomLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.catalog import GraphCatalog


@dataclass
class SearchConfig:
    """Per-query configuration of the pipeline stages."""

    relaxation: RelaxationConfig = field(default_factory=RelaxationConfig)
    pruning: PruningConfig = field(default_factory=PruningConfig)
    verification: VerificationConfig = field(default_factory=VerificationConfig)
    use_structural_pruning: bool = True
    use_probabilistic_pruning: bool = True


class ProbabilisticGraphDatabase:
    """A queryable collection of probabilistic graphs."""

    def __init__(self, graphs: list[ProbabilisticGraph]) -> None:
        if not graphs:
            raise ConfigurationError("the database needs at least one probabilistic graph")
        self.graphs = list(graphs)
        self.pmi: ProbabilisticMatrixIndex | None = None
        self.structural_index: StructuralFeatureIndex | None = None
        self.planner: QueryPlanner | None = None

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def build_index(
        self,
        feature_config: FeatureSelectionConfig | None = None,
        bound_config: BoundConfig | None = None,
        rng: RandomLike = None,
        pmi: ProbabilisticMatrixIndex | None = None,
        num_shards: int = 1,
        max_workers: int | None = None,
        shard_cache_dir=None,
    ) -> "ProbabilisticGraphDatabase":
        """Mine features, build both indexes, and construct the query planner.

        Pass a prebuilt (for example :meth:`ProbabilisticMatrixIndex.load`-ed)
        ``pmi`` to skip the expensive SIP-bound computation; it must have been
        built over the same graphs in the same order.

        With ``num_shards > 1`` the database is partitioned into contiguous
        shards: per-shard PMI construction fans out to ``max_workers``
        processes (``None`` → cpu count) and queries execute through a
        :class:`~repro.core.sharding.ShardedPlanner`, with answers identical
        to the sequential path.  ``shard_cache_dir`` persists each shard's
        PMI slice (npz+JSON) so warm rebuilds load instead of recompute —
        except on the prebuilt-``pmi`` path, where the cache is not
        consulted (the expensive bounds are already in hand) and structural
        counts are rebuilt in the parent.  ``num_shards=1`` is exactly the
        sequential single-planner path — ``max_workers`` and
        ``shard_cache_dir`` only take effect with ``num_shards > 1`` (for a
        persisted sequential index use ``database.pmi.save()``).
        """
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards!r}")
        if pmi is not None and (feature_config is not None or bound_config is not None):
            raise IndexError_(
                "feature_config/bound_config conflict with a prebuilt pmi; "
                "the loaded index already carries its build configuration"
            )
        if pmi is not None and pmi.database_size != len(self.graphs):
            raise IndexError_(
                f"prebuilt PMI covers {pmi.database_size} graphs, "
                f"database has {len(self.graphs)}"
            )
        # a rebuild replaces the planner; shut down any worker pool the old
        # one may own before dropping the reference
        self.close()
        if num_shards > 1:
            from repro.core.sharding import ShardedPlanner

            self.planner = ShardedPlanner.build(
                self.graphs,
                num_shards=num_shards,
                feature_config=feature_config,
                bound_config=bound_config,
                rng=rng,
                max_workers=max_workers,
                cache_dir=shard_cache_dir,
                pmi=pmi,
            )
            # the full matrices live sliced inside the shards; the engine-level
            # handles stay unset so nothing mistakes a shard view for the whole
            self.pmi = None
            self.structural_index = None
            return self
        if pmi is not None:
            self.pmi = pmi
        else:
            self.pmi = ProbabilisticMatrixIndex(
                feature_config=feature_config, bound_config=bound_config
            )
            # rng passes through unwrapped: an int seed must yield the same
            # 64-bit root here as in the sharded build path
            self.pmi.build(self.graphs, rng=rng)
        self.structural_index = StructuralFeatureIndex(
            embedding_limit=self.pmi.feature_config.embedding_limit
        )
        self.structural_index.build(
            [graph.skeleton for graph in self.graphs], self.pmi.features
        )
        self.planner = QueryPlanner(self.graphs, self.pmi, self.structural_index)
        return self

    @property
    def is_indexed(self) -> bool:
        return self.planner is not None

    def to_catalog(
        self,
        num_shards: int = 1,
        max_workers: int | None = None,
        directory=None,
    ) -> "GraphCatalog":
        """Adopt this engine's built index as a mutable :class:`GraphCatalog`.

        The catalog reuses the already-computed PMI cells and structural
        counts (no SIP bounds are recomputed) and assigns external ids
        ``0..N-1`` — the row positions the static build already salted its
        RNG streams with — so the catalog's answers are byte-identical to
        this engine's until the first mutation.  Only a sequential
        (``num_shards=1``) build can be adopted: a sharded engine holds its
        matrices sliced inside the shards; build the catalog directly with
        :meth:`GraphCatalog.build` in that case.  Passing a ``directory``
        makes the adopted catalog durable (snapshot + write-ahead log; see
        :meth:`GraphCatalog.persist`), recoverable with
        :meth:`GraphCatalog.open`.
        """
        from repro.core.catalog import GraphCatalog

        if self.planner is None:
            raise IndexError_("call build_index() before to_catalog()")
        if self.pmi is None or self.structural_index is None:
            raise IndexError_(
                "a sharded engine holds sliced indexes; build a mutable catalog "
                "directly with GraphCatalog.build(graphs, num_shards=...)"
            )
        return GraphCatalog.from_index(
            self.graphs,
            self.pmi,
            self.structural_index,
            num_shards=num_shards,
            max_workers=max_workers,
            directory=directory,
        )

    def close(self) -> None:
        """Release planner-held resources (the sharded worker pool).

        Idempotent, and a no-op for the sequential planner; the database
        stays queryable — a sharded planner lazily re-creates its pool on
        the next query.
        """
        closer = getattr(self.planner, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "ProbabilisticGraphDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.graphs)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(
        self,
        query_graph: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        config: SearchConfig | None = None,
        rng: RandomLike = None,
    ) -> QueryResult:
        """Run a threshold-based probabilistic subgraph similarity (T-PS) query."""
        self._validate_query(query_graph, probability_threshold, distance_threshold)
        if self.planner is None:
            raise IndexError_("call build_index() before querying")
        return self.planner.execute(
            query_graph, probability_threshold, distance_threshold, config, rng=rng
        )

    def query_many(
        self,
        query_graphs: list[LabeledGraph],
        probability_threshold: float,
        distance_threshold: int,
        config: SearchConfig | None = None,
        rng: RandomLike = None,
    ) -> list[QueryResult]:
        """Run a T-PS workload, amortizing planner setup across all queries.

        Returns one :class:`QueryResult` per query, in input order, with
        answers identical to issuing the same ``query()`` calls sequentially
        (an int or ``None`` ``rng`` is re-normalized per query; see
        :meth:`QueryPlanner.execute_many`).
        """
        if self.planner is None:
            raise IndexError_("call build_index() before querying")
        for query_graph in query_graphs:
            self._validate_query(query_graph, probability_threshold, distance_threshold)
        return self.planner.execute_many(
            query_graphs, probability_threshold, distance_threshold, config, rng=rng
        )

    def query_top_k(
        self,
        query_graph: LabeledGraph,
        k: int,
        distance_threshold: int,
        config: SearchConfig | None = None,
        rng: RandomLike = None,
    ) -> QueryResult:
        """The ``k`` most probable subgraph-similar graphs, best first.

        Runs the same staged pipeline as :meth:`query`, but instead of a
        fixed probability threshold the floor tightens as verified answers
        fill a k-sized heap (candidates are verified in descending PMI
        upper-bound order).  Ties rank the smaller graph id first; graphs
        with zero SSP are never answers, so fewer than ``k`` answers may
        return.  Sharded engines merge per-shard partials into an answer
        list byte-identical to the sequential one for any shard and worker
        count.
        """
        self._validate_top_k(query_graph, k, distance_threshold)
        if self.planner is None:
            raise IndexError_("call build_index() before querying")
        return self.planner.execute_top_k(
            query_graph, k, distance_threshold, config, rng=rng
        )

    def query_top_k_many(
        self,
        query_graphs: list[LabeledGraph],
        k: int,
        distance_threshold: int,
        config: SearchConfig | None = None,
        rng: RandomLike = None,
    ) -> list[QueryResult]:
        """Run a top-k workload; one :class:`QueryResult` per query, in order."""
        if self.planner is None:
            raise IndexError_("call build_index() before querying")
        for query_graph in query_graphs:
            self._validate_top_k(query_graph, k, distance_threshold)
        return self.planner.execute_top_k_many(
            query_graphs, k, distance_threshold, config, rng=rng
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    # the planner validates again inside plan(); this up-front pass exists so
    # query_many rejects a malformed batch before any query executes
    _validate_query = staticmethod(validate_query)
    _validate_top_k = staticmethod(validate_top_k_query)
