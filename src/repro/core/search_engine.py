"""The end-to-end probabilistic subgraph similarity search engine.

:class:`ProbabilisticGraphDatabase` glues the three stages of Section 1.2
together:

1. **structural pruning** over the deterministic skeletons (Theorem 1),
2. **probabilistic pruning** with PMI-derived SSP bounds (Theorems 3 & 4),
3. **verification** of the remaining candidates (Algorithm 5 or exact).

Typical usage::

    database = ProbabilisticGraphDatabase(graphs)
    database.build_index(rng=7)
    result = database.query(query_graph, probability_threshold=0.5,
                            distance_threshold=2)
    for answer in result.answers:
        print(answer.graph_id, answer.probability)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pruning import ProbabilisticPruner, PruningConfig, PruningDecision
from repro.core.relaxation import RelaxationConfig, relax_query
from repro.core.results import QueryAnswer, QueryResult, QueryStatistics
from repro.core.verification import VerificationConfig, Verifier
from repro.exceptions import IndexError_, QueryError
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.pmi.bounds import BoundConfig
from repro.pmi.features import FeatureSelectionConfig
from repro.pmi.index import ProbabilisticMatrixIndex
from repro.structural.feature_index import StructuralFeatureIndex
from repro.structural.similarity_filter import StructuralFilter
from repro.utils.rng import RandomLike, ensure_rng
from repro.utils.timer import Timer


@dataclass
class SearchConfig:
    """Per-query configuration of the pipeline stages."""

    relaxation: RelaxationConfig = field(default_factory=RelaxationConfig)
    pruning: PruningConfig = field(default_factory=PruningConfig)
    verification: VerificationConfig = field(default_factory=VerificationConfig)
    use_structural_pruning: bool = True
    use_probabilistic_pruning: bool = True


class ProbabilisticGraphDatabase:
    """A queryable collection of probabilistic graphs."""

    def __init__(self, graphs: list[ProbabilisticGraph]) -> None:
        if not graphs:
            raise ValueError("the database needs at least one probabilistic graph")
        self.graphs = list(graphs)
        self.pmi: ProbabilisticMatrixIndex | None = None
        self.structural_index: StructuralFeatureIndex | None = None

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def build_index(
        self,
        feature_config: FeatureSelectionConfig | None = None,
        bound_config: BoundConfig | None = None,
        rng: RandomLike = None,
    ) -> "ProbabilisticGraphDatabase":
        """Mine features and build both the PMI and the structural index."""
        generator = ensure_rng(rng)
        self.pmi = ProbabilisticMatrixIndex(
            feature_config=feature_config, bound_config=bound_config
        )
        self.pmi.build(self.graphs, rng=generator)
        self.structural_index = StructuralFeatureIndex(
            embedding_limit=self.pmi.feature_config.embedding_limit
        )
        self.structural_index.build(
            [graph.skeleton for graph in self.graphs], self.pmi.features
        )
        return self

    @property
    def is_indexed(self) -> bool:
        return self.pmi is not None and self.structural_index is not None

    def __len__(self) -> int:
        return len(self.graphs)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(
        self,
        query_graph: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        config: SearchConfig | None = None,
        rng: RandomLike = None,
    ) -> QueryResult:
        """Run a threshold-based probabilistic subgraph similarity (T-PS) query."""
        self._validate_query(query_graph, probability_threshold, distance_threshold)
        if not self.is_indexed:
            raise IndexError_("call build_index() before querying")
        cfg = config or SearchConfig()
        generator = ensure_rng(rng)
        result = QueryResult()
        stats = result.statistics
        stats.database_size = len(self.graphs)
        total_timer = Timer()

        with total_timer:
            relaxed = relax_query(query_graph, distance_threshold, cfg.relaxation)
            stats.relaxed_query_count = len(relaxed)

            candidate_ids = self._structural_stage(query_graph, distance_threshold, cfg, stats)
            candidate_ids, accepted = self._probabilistic_stage(
                relaxed, candidate_ids, probability_threshold, cfg, stats, generator
            )
            for graph_id, lower_bound in accepted:
                result.answers.append(
                    QueryAnswer(
                        graph_id=graph_id,
                        graph_name=self.graphs[graph_id].name,
                        probability=lower_bound,
                        decided_by="lower_bound",
                    )
                )
            self._verification_stage(
                query_graph,
                relaxed,
                candidate_ids,
                probability_threshold,
                distance_threshold,
                cfg,
                stats,
                result,
                generator,
            )
        stats.total_seconds = total_timer.elapsed
        stats.answers = len(result.answers)
        result.answers.sort(key=lambda a: (-a.probability, a.graph_id))
        return result

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------
    def _structural_stage(
        self,
        query_graph: LabeledGraph,
        distance_threshold: int,
        cfg: SearchConfig,
        stats: QueryStatistics,
    ) -> list[int]:
        if not cfg.use_structural_pruning:
            stats.structural_candidates = len(self.graphs)
            return list(range(len(self.graphs)))
        assert self.structural_index is not None
        structural_filter = StructuralFilter(
            self.structural_index, [graph.skeleton for graph in self.graphs]
        )
        outcome = structural_filter.filter(query_graph, distance_threshold)
        stats.structural_candidates = outcome.candidate_count
        stats.structural_seconds = outcome.seconds
        return outcome.candidate_ids

    def _probabilistic_stage(
        self,
        relaxed: list[LabeledGraph],
        candidate_ids: list[int],
        probability_threshold: float,
        cfg: SearchConfig,
        stats: QueryStatistics,
        rng,
    ) -> tuple[list[int], list[tuple[int, float]]]:
        if not cfg.use_probabilistic_pruning:
            stats.probabilistic_candidates = len(candidate_ids)
            return candidate_ids, []
        assert self.pmi is not None
        pruner = ProbabilisticPruner(self.pmi.features, config=cfg.pruning, rng=rng)
        timer = Timer()
        remaining: list[int] = []
        accepted: list[tuple[int, float]] = []
        with timer:
            for graph_id in candidate_ids:
                graph_bounds = self.pmi.bounds_for_graph(graph_id)
                bounds = pruner.compute_bounds(relaxed, graph_bounds)
                decision = pruner.decide(bounds, probability_threshold)
                if decision is PruningDecision.PRUNED:
                    stats.pruned_by_upper_bound += 1
                elif decision is PruningDecision.ACCEPTED:
                    stats.accepted_by_lower_bound += 1
                    accepted.append((graph_id, bounds.lsim))
                else:
                    remaining.append(graph_id)
        stats.probabilistic_seconds = timer.elapsed
        stats.probabilistic_candidates = len(remaining) + len(accepted)
        return remaining, accepted

    def _verification_stage(
        self,
        query_graph: LabeledGraph,
        relaxed: list[LabeledGraph],
        candidate_ids: list[int],
        probability_threshold: float,
        distance_threshold: int,
        cfg: SearchConfig,
        stats: QueryStatistics,
        result: QueryResult,
        rng,
    ) -> None:
        verifier = Verifier(config=cfg.verification, relaxation=cfg.relaxation, rng=rng)
        timer = Timer()
        with timer:
            for graph_id in candidate_ids:
                stats.verified += 1
                is_answer, probability = verifier.matches(
                    query_graph,
                    self.graphs[graph_id],
                    probability_threshold,
                    distance_threshold,
                    relaxed_queries=relaxed,
                )
                if is_answer:
                    result.answers.append(
                        QueryAnswer(
                            graph_id=graph_id,
                            graph_name=self.graphs[graph_id].name,
                            probability=probability,
                            decided_by="verification",
                        )
                    )
        stats.verification_seconds = timer.elapsed

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_query(
        query_graph: LabeledGraph, probability_threshold: float, distance_threshold: int
    ) -> None:
        if query_graph.num_edges == 0:
            raise QueryError("query graph must contain at least one edge")
        if not query_graph.is_connected():
            raise QueryError("query graph must be connected")
        if not 0.0 < probability_threshold <= 1.0:
            raise QueryError(
                f"probability threshold must be in (0, 1], got {probability_threshold!r}"
            )
        if distance_threshold < 0:
            raise QueryError("distance threshold must be >= 0")
        if distance_threshold >= query_graph.num_edges:
            raise QueryError(
                "distance threshold must be smaller than the number of query edges"
            )
