"""Weighted set cover for the tightest upper bound ``Usim(q)`` (Section 3.2.1).

Each feature ``fj`` that is a *sub*graph of some relaxed queries defines the
set ``sj = {rqi : rqi ⊇iso fj}`` with weight ``UpperB(fj)``; any cover of
``U = {rq1..rqa}`` yields a valid upper bound equal to the sum of the chosen
weights (Theorem 3), and the minimum-weight cover is the tightest such bound.
Algorithm 1 of the paper is the classical greedy ``H_n``-approximation;
:func:`exhaustive_weighted_set_cover` finds the true optimum on small
instances and is used by tests and the OPT variants' sanity checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class WeightedSet:
    """A candidate set in the cover instance: identifier, members, weight."""

    set_id: int
    members: frozenset
    weight: float


@dataclass(frozen=True)
class SetCoverSolution:
    """Chosen sets, their total weight and whether the universe was covered."""

    chosen_ids: tuple[int, ...]
    total_weight: float
    covered: bool


def greedy_weighted_set_cover(
    universe: frozenset | set,
    candidate_sets: list[WeightedSet],
) -> SetCoverSolution:
    """Algorithm 1: greedily pick the set minimizing weight per new element.

    When the candidates cannot cover the whole universe the solution is the
    best partial cover and ``covered`` is False; the caller (the pruner)
    treats an uncovered universe as "no usable upper bound" (bound 1.0).
    """
    universe = frozenset(universe)
    uncovered = set(universe)
    chosen: list[int] = []
    total = 0.0
    available = list(candidate_sets)
    while uncovered:
        best = None
        best_ratio = None
        for candidate in available:
            gain = len(candidate.members & uncovered)
            if gain == 0:
                continue
            ratio = candidate.weight / gain
            if best_ratio is None or ratio < best_ratio:
                best_ratio = ratio
                best = candidate
        if best is None:
            return SetCoverSolution(tuple(chosen), total, covered=False)
        chosen.append(best.set_id)
        total += best.weight
        uncovered -= best.members
        available = [c for c in available if c.set_id != best.set_id]
    return SetCoverSolution(tuple(chosen), total, covered=True)


def exhaustive_weighted_set_cover(
    universe: frozenset | set,
    candidate_sets: list[WeightedSet],
    max_sets: int = 16,
) -> SetCoverSolution:
    """Optimal cover by exhaustive search (small instances only).

    Raises ``ValueError`` beyond ``max_sets`` candidates — this helper exists
    to validate the greedy approximation, not to replace it.
    """
    if len(candidate_sets) > max_sets:
        raise ConfigurationError(
            f"exhaustive set cover limited to {max_sets} candidate sets, "
            f"got {len(candidate_sets)}"
        )
    universe = frozenset(universe)
    best: SetCoverSolution | None = None
    for size in range(1, len(candidate_sets) + 1):
        for subset in combinations(candidate_sets, size):
            covered = frozenset().union(*(c.members for c in subset))
            if not universe <= covered:
                continue
            weight = sum(c.weight for c in subset)
            if best is None or weight < best.total_weight:
                best = SetCoverSolution(
                    tuple(sorted(c.set_id for c in subset)), weight, covered=True
                )
        if best is not None:
            # a cover with `size` sets exists; smaller total weight may still
            # be achievable with more sets only if weights can be negative,
            # which they cannot — but a larger subset could still weigh less
            # than the best found if this level's best is poor, so keep going
            pass
    if best is None:
        return SetCoverSolution((), 0.0, covered=False)
    return best
