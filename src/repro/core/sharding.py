"""Sharded multiprocess query execution over database partitions.

The T-PS pipeline is embarrassingly partitionable: every candidate graph is
filtered, pruned, and verified independently of every other graph, so a
database of N probabilistic graphs can be split into K contiguous *shards*,
each owning a PMI row slice, a structural-index row slice, and its own
:class:`~repro.core.planner.QueryPlanner`.  :class:`ShardedPlanner` fans
``query()`` / ``query_many()`` out over a ``concurrent.futures`` process
pool (one task per shard) and merges the per-shard :class:`QueryResult`s
deterministically.

Determinism is the load-bearing property.  Two ingredients make a sharded
run reproduce the sequential planner *exactly*, regardless of K, worker
count, or OS scheduling:

1. **Per-graph RNG streams.**  Every stochastic sub-task derives its
   generator from ``(root, stage, global graph id)``
   (:func:`repro.utils.rng.derive_rng`), so the random draws a graph
   consumes never depend on which process handles it or how many other
   candidates ran first.  The per-query roots themselves are derived in the
   parent, in query order, before any fan-out.
2. **Deterministic merge.**  Per-shard answers are concatenated and sorted
   by ``(-probability, graph_id)`` — the sequential planner's order — and
   per-shard statistics combine via :meth:`QueryStatistics.merge` (counters
   sum across the disjoint slices; wall-clock fields take the critical-path
   max).

Index build parallelizes the same way: features are mined once over the
full database in the parent (identical to the sequential path), then each
worker fills its shard's PMI cells and structural counts.  With a
``cache_dir`` each shard slice is persisted in the npz+JSON format of
:meth:`ProbabilisticMatrixIndex.save`, so warm workers load instead of
rebuild.

**The zero-copy shard plane.**  Shipping every :class:`DatabaseShard` into
the pool initializer costs O(shard-bytes) per worker — resident memory
scales with worker count and every pool (re)build pays a full copy of all
PMI and structural matrices.  By default the planner instead *publishes*
each shard exactly once into ``multiprocessing.shared_memory``
(:func:`publish_shard` packs the dense arrays plus per-graph pickle blobs
into one :class:`~repro.utils.shm.ShardArena` segment), and workers receive
only O(1) :class:`ShardDescriptor`\\ s — segment name, dtypes, shapes,
offsets — attaching read-only on first use (:func:`materialize_shard`).
Graphs deserialize lazily per candidate, so a worker's private memory holds
only the graphs its queries actually verified.  Lifecycle: the
:class:`ShardPlane` (one generation of published segments) is created
lazily with the first pool, survives pool resizes (a width change recycles
workers but re-ships only descriptors), and is retired by
:meth:`ShardedPlanner.close` — the pool shutdown inside it joins every
worker first, so no attachment outlives its segments.  A catalog mutation
or :meth:`~repro.core.catalog.GraphCatalog.compact` closes the cached
planner and the next query publishes a fresh generation: the hot-swap is
one atomic planner replacement, and answers stay byte-identical throughout
because the arrays workers map are bit-for-bit the parent's.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
import zipfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.pipeline import TopKPartial, merge_top_k_partials
from repro.core.planner import QueryPlanner, _resolve_rngs
from repro.core.results import QueryResult, QueryStatistics
from repro.exceptions import ConfigurationError, IndexError_
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.pmi.features import Feature, FeatureMiner, FeatureSelectionConfig
from repro.pmi.bounds import BoundConfig
from repro.pmi.index import ProbabilisticMatrixIndex
from repro.structural.feature_index import StructuralFeatureIndex
from repro.utils.atomic_io import atomic_write_text, atomic_writer
from repro.utils.rng import RandomLike, rng_root
from repro.utils.shm import (
    ArenaDescriptor,
    AttachedArena,
    LazyGraphList,
    ShardArena,
    finalize_unlink,
)


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice ``[start, stop)`` of the global graph-id space."""

    shard_id: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def global_ids(self) -> range:
        return range(self.start, self.stop)


def partition_ranges(num_graphs: int, num_shards: int) -> list[ShardSpec]:
    """Balanced contiguous partition of ``range(num_graphs)`` into K shards.

    The first ``num_graphs % num_shards`` shards get one extra graph (the
    ``numpy.array_split`` rule).  ``num_shards`` is clamped to ``num_graphs``
    so no shard is ever empty.
    """
    if num_graphs <= 0:
        raise ConfigurationError("cannot partition an empty database")
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards!r}")
    num_shards = min(num_shards, num_graphs)
    base, extra = divmod(num_graphs, num_shards)
    specs: list[ShardSpec] = []
    start = 0
    for shard_id in range(num_shards):
        size = base + (1 if shard_id < extra else 0)
        specs.append(ShardSpec(shard_id=shard_id, start=start, stop=start + size))
        start += size
    return specs


@dataclass
class DatabaseShard:
    """One shard's graphs plus its PMI and structural-index row slices.

    Two flavours share this container.  A *static* shard (``graph_ids is
    None``) owns the contiguous global-id slice ``[spec.start, spec.stop)``.
    A *catalog* shard carries explicit per-row ``graph_ids`` (stable external
    ids, not necessarily contiguous) and an ``active_mask`` that switches
    tombstoned storage rows off; its ``spec`` records only the shard id and
    the live-row count.  ``pmi``/``structural_index`` may be segmented
    base+delta views (:mod:`repro.core.catalog`) — planners only need their
    row-read protocol.
    """

    spec: ShardSpec
    graphs: list[ProbabilisticGraph]
    pmi: ProbabilisticMatrixIndex
    structural_index: StructuralFeatureIndex
    graph_ids: np.ndarray | None = None
    active_mask: np.ndarray | None = None
    # set only on worker-side shards materialized from a shared-memory
    # descriptor: keeps the attached segment mapped for the shard's lifetime
    arena: AttachedArena | None = field(default=None, repr=False, compare=False)

    def make_planner(self) -> QueryPlanner:
        """A planner whose answers and RNG salts use *global* graph ids."""
        return QueryPlanner(
            self.graphs,
            self.pmi,
            self.structural_index,
            graph_id_offset=self.spec.start if self.graph_ids is None else 0,
            graph_ids=self.graph_ids,
            active_mask=self.active_mask,
        )

    def live_global_ids(self) -> np.ndarray:
        """The global ids this shard can answer with (tombstones excluded)."""
        if self.graph_ids is None:
            return np.arange(self.spec.start, self.spec.stop, dtype=np.int64)
        ids = np.asarray(self.graph_ids, dtype=np.int64)
        if self.active_mask is None:
            return ids
        return ids[np.asarray(self.active_mask, dtype=bool)]


def route_to_smallest(live_counts: list[int]) -> int:
    """The shard index a new graph routes to: fewest live graphs, lowest
    index on ties.  This is the catalog's ``add_graph`` placement rule; it
    keeps shards balanced without moving existing rows (rebalancing proper
    happens on ``compact()`` via :func:`partition_ranges`)."""
    if not live_counts:
        raise ConfigurationError("cannot route into an empty shard list")
    return int(np.argmin(np.asarray(live_counts, dtype=np.int64)))


# ----------------------------------------------------------------------
# result merging
# ----------------------------------------------------------------------
def merge_query_results(parts: list[QueryResult]) -> QueryResult:
    """Combine per-shard results of one query into a whole-database result.

    Shards cover disjoint graph-id slices, so the merged answer list is the
    concatenation re-sorted by ``(-probability, graph_id)`` — precisely the
    sequential planner's output order — and the counters sum via
    :meth:`QueryStatistics.merge`.
    """
    merged = QueryResult()
    for part in parts:
        merged.answers.extend(part.answers)
    merged.answers.sort(key=lambda a: (-a.probability, a.graph_id))
    merged.statistics = QueryStatistics.merge(part.statistics for part in parts)
    return merged


# ----------------------------------------------------------------------
# shard construction (runs in worker processes)
# ----------------------------------------------------------------------
def shard_cache_path(cache_dir: str | Path, shard_id: int) -> Path:
    """Directory holding one shard's persisted PMI slice."""
    return Path(cache_dir) / f"shard_{shard_id:03d}"


_SHARD_SIDECAR = "shard_build.json"
_SHARD_COUNTS = "structural_counts.npy"


def _features_fingerprint(features: list[Feature]) -> list[tuple[int, str]]:
    return [(feature.feature_id, feature.canonical) for feature in features]


def _graphs_fingerprint(graphs: list[ProbabilisticGraph]) -> str:
    """Content hash of a shard's graphs — skeletons *and* probability factors.

    Feature mining only sees skeletons, so edited edge probabilities can
    leave the mined feature set unchanged; this digest is what makes such an
    edit invalidate the cache.
    """
    from repro.graphs.io import probabilistic_graph_to_dict

    digest = hashlib.sha256()
    for graph in graphs:
        digest.update(
            json.dumps(probabilistic_graph_to_dict(graph), sort_keys=True).encode()
        )
    return digest.hexdigest()


def _load_cached_shard(
    directory: Path,
    spec: ShardSpec,
    graphs: list[ProbabilisticGraph],
    features: list[Feature],
    feature_config: FeatureSelectionConfig,
    bound_config: BoundConfig,
    root: int,
) -> tuple[ProbabilisticMatrixIndex, StructuralFeatureIndex] | None:
    """The cached slice, or None when anything about the build disagrees.

    Staleness guard: a cache entry is only reused when the slice geometry,
    the graph contents, the feature set, *both* build configurations, and
    the 64-bit build root all match — a cache written under a different
    seed, sample count, or edited database must trigger a rebuild, or the
    sharded-equals-sequential guarantee would silently break.  Any unreadable
    or truncated cache file likewise falls through to a cold rebuild.
    """
    sidecar = directory / _SHARD_SIDECAR
    if not sidecar.exists():
        return None
    try:
        meta = json.loads(sidecar.read_text())
        cached = ProbabilisticMatrixIndex.load(directory)
        if (
            meta.get("root") != root
            or meta.get("start") != spec.start
            or meta.get("stop") != spec.stop
            or meta.get("graphs") != _graphs_fingerprint(graphs)
            or cached.database_size != spec.size
            or cached.feature_config != feature_config
            or cached.bound_config != bound_config
            or _features_fingerprint(cached.features) != _features_fingerprint(features)
        ):
            return None
        counts = np.load(directory / _SHARD_COUNTS)
    except (
        IndexError_,
        json.JSONDecodeError,
        OSError,
        ValueError,
        KeyError,
        EOFError,
        zipfile.BadZipFile,
    ):
        # missing, corrupt, or half-written cache entries rebuild cold
        return None
    if counts.shape != (spec.size, len(features)):
        return None
    structural = StructuralFeatureIndex.from_counts(
        cached.features, counts, embedding_limit=feature_config.embedding_limit
    )
    return cached, structural


def build_shard(
    spec: ShardSpec,
    graphs: list[ProbabilisticGraph],
    features: list[Feature],
    feature_config: FeatureSelectionConfig,
    bound_config: BoundConfig,
    root: int,
    cache_dir: str | Path | None,
) -> DatabaseShard:
    """Build (or load from cache) one shard's PMI slice and structural slice.

    Runs in a worker process during parallel index builds; also callable
    in-process for the sequential fallback.  The cache stores the PMI slice
    (npz+JSON), the structural count matrix, and a sidecar recording the
    build root and slice geometry; a warm hit skips both the SIP-bound
    computation and the embedding enumeration.
    """
    if cache_dir is not None:
        cached = _load_cached_shard(
            shard_cache_path(cache_dir, spec.shard_id),
            spec,
            graphs,
            features,
            feature_config,
            bound_config,
            root,
        )
        if cached is not None:
            pmi, structural = cached
            return DatabaseShard(
                spec=spec, graphs=graphs, pmi=pmi, structural_index=structural
            )
    pmi = ProbabilisticMatrixIndex(feature_config=feature_config, bound_config=bound_config)
    pmi.build(graphs, features=features, rng=root, graph_id_offset=spec.start)
    structural = StructuralFeatureIndex(embedding_limit=feature_config.embedding_limit)
    structural.build([graph.skeleton for graph in graphs], pmi.features)
    if cache_dir is not None:
        directory = shard_cache_path(cache_dir, spec.shard_id)
        # the sidecar is the entry's commit marker: written last, and removed
        # *before* any file of an existing entry is overwritten — a crash
        # mid-rewrite must never leave an old sidecar validating new arrays
        directory.mkdir(parents=True, exist_ok=True)
        (directory / _SHARD_SIDECAR).unlink(missing_ok=True)
        pmi.save(directory)
        with atomic_writer(directory / _SHARD_COUNTS) as handle:
            np.save(handle, structural.counts_matrix())
        atomic_write_text(
            directory / _SHARD_SIDECAR,
            json.dumps(
                {
                    "root": root,
                    "start": spec.start,
                    "stop": spec.stop,
                    "graphs": _graphs_fingerprint(graphs),
                }
            ),
        )
    return DatabaseShard(spec=spec, graphs=graphs, pmi=pmi, structural_index=structural)


# ----------------------------------------------------------------------
# the shared-memory shard plane
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardDescriptor:
    """The O(1) handle a worker needs to attach one published shard.

    Pickling this costs bytes proportional to the number of arena *fields*
    (a dozen name/dtype/shape/offset tuples), never to the shard's data —
    the regression tests assert exactly that.
    """

    shard_id: int
    arena: ArenaDescriptor


_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def publish_shard(shard: DatabaseShard) -> tuple[ShardArena, ShardDescriptor]:
    """Pack one shard into a shared-memory arena; return it with its handle.

    Dense arrays — the five PMI matrices (base and delta separately for a
    catalog shard's segmented views), the structural count matrix, and the
    catalog's external-id / tombstone columns — are copied bit-for-bit into
    the segment, so a worker's attached view reads the exact cells the
    parent computed and answers cannot drift.  Graphs go in as back-to-back
    per-graph pickles with an offset table (lazy deserialization on the
    worker); everything non-array (spec, features, configs, sparse
    chosen-set dicts) rides in one pickled ``meta`` blob.
    """
    from repro.core.catalog import SegmentedPmiView, SegmentedStructuralView

    arrays: dict[str, np.ndarray] = {}
    meta: dict = {"spec": shard.spec}
    pmi = shard.pmi
    structural = shard.structural_index
    if isinstance(pmi, SegmentedPmiView):
        if not isinstance(structural, SegmentedStructuralView):
            raise IndexError_(
                "a segmented PMI view requires a segmented structural view"
            )
        meta["segmented"] = True
        for prefix, segment_pmi in (("base", pmi.base), ("delta", pmi.delta)):
            for key, array in segment_pmi.arena_arrays().items():
                arrays[f"{prefix}_pmi_{key}"] = array
            meta[f"{prefix}_pmi"] = segment_pmi.arena_meta()
        arrays["base_counts"] = np.asarray(structural.base.counts_matrix())
        arrays["delta_counts"] = np.asarray(structural.delta.counts_matrix())
        meta["features"] = pmi.base.features
        meta["feature_config"] = pmi.base.feature_config
        meta["bound_config"] = pmi.base.bound_config
        meta["embedding_limit"] = structural.base.embedding_limit
    else:
        meta["segmented"] = False
        for key, array in pmi.arena_arrays().items():
            arrays[f"pmi_{key}"] = array
        meta["pmi"] = pmi.arena_meta()
        arrays["counts"] = np.asarray(structural.counts_matrix())
        meta["features"] = pmi.features
        meta["feature_config"] = pmi.feature_config
        meta["bound_config"] = pmi.bound_config
        meta["embedding_limit"] = structural.embedding_limit
    if shard.graph_ids is not None:
        arrays["graph_ids"] = np.asarray(shard.graph_ids, dtype=np.int64)
    if shard.active_mask is not None:
        arrays["active_mask"] = np.asarray(shard.active_mask, dtype=bool)
    payloads = [
        pickle.dumps(graph, protocol=_PICKLE_PROTOCOL) for graph in shard.graphs
    ]
    offsets = np.zeros(len(payloads) + 1, dtype=np.int64)
    if payloads:
        np.cumsum(
            np.asarray([len(p) for p in payloads], dtype=np.int64), out=offsets[1:]
        )
    arrays["graph_offsets"] = offsets
    blobs = {
        "graphs": b"".join(payloads),
        "meta": pickle.dumps(meta, protocol=_PICKLE_PROTOCOL),
    }
    arena = ShardArena.pack(arrays, blobs)
    return arena, ShardDescriptor(shard_id=shard.spec.shard_id, arena=arena.descriptor)


def materialize_shard(
    descriptor: ShardDescriptor, arena: AttachedArena | None = None
) -> DatabaseShard:
    """Rebuild a queryable :class:`DatabaseShard` from a published arena.

    All matrices come back as read-only zero-copy views into the shared
    mapping (no bytes move), and the graph list is a
    :class:`~repro.utils.shm.LazyGraphList` that deserializes per graph on
    first access.  The returned shard keeps the arena attached for its own
    lifetime via its ``arena`` field.
    """
    from repro.core.catalog import SegmentedPmiView, SegmentedStructuralView

    if arena is None:
        arena = AttachedArena(descriptor.arena)
    meta = pickle.loads(arena.blob("meta"))
    graphs = LazyGraphList(
        arena.blob("graphs"), arena.array("graph_offsets"), owner=arena
    )
    features = meta["features"]
    feature_config = meta["feature_config"]
    bound_config = meta["bound_config"]
    embedding_limit = meta["embedding_limit"]

    def pmi_from(prefix: str, segment_meta: dict) -> ProbabilisticMatrixIndex:
        return ProbabilisticMatrixIndex.from_arrays(
            {
                key: arena.array(f"{prefix}{key}")
                for key in ProbabilisticMatrixIndex.ARENA_ARRAY_KEYS
            },
            features,
            feature_config,
            bound_config,
            segment_meta,
        )

    if meta["segmented"]:
        pmi = SegmentedPmiView(
            pmi_from("base_pmi_", meta["base_pmi"]),
            pmi_from("delta_pmi_", meta["delta_pmi"]),
        )
        structural = SegmentedStructuralView(
            StructuralFeatureIndex.from_counts(
                features,
                arena.array("base_counts"),
                embedding_limit=embedding_limit,
                copy=False,
            ),
            StructuralFeatureIndex.from_counts(
                features,
                arena.array("delta_counts"),
                embedding_limit=embedding_limit,
                copy=False,
            ),
        )
    else:
        pmi = pmi_from("pmi_", meta["pmi"])
        structural = StructuralFeatureIndex.from_counts(
            features,
            arena.array("counts"),
            embedding_limit=embedding_limit,
            copy=False,
        )
    graph_ids = (
        arena.array("graph_ids") if "graph_ids" in descriptor.arena else None
    )
    active_mask = (
        arena.array("active_mask") if "active_mask" in descriptor.arena else None
    )
    return DatabaseShard(
        spec=meta["spec"],
        graphs=graphs,
        pmi=pmi,
        structural_index=structural,
        graph_ids=graph_ids,
        active_mask=active_mask,
        arena=arena,
    )


class ShardPlane:
    """One published generation of a planner's shards.

    Owns one shared-memory segment per shard.  Cleanup is belt and braces:
    :meth:`close` unlinks explicitly, a ``weakref.finalize`` fires on GC or
    interpreter exit if nobody called it, the :mod:`repro.utils.shm` atexit
    sweep catches anything else, and every path is idempotent and pid-
    guarded (a forked worker can never unlink its parent's segments).
    """

    def __init__(self, shards: list[DatabaseShard]) -> None:
        self._arenas: list[ShardArena] = []
        self.descriptors: list[ShardDescriptor] = []
        for shard in shards:
            arena, descriptor = publish_shard(shard)
            self._arenas.append(arena)
            self.descriptors.append(descriptor)
        self._finalizer = finalize_unlink(self, [a.name for a in self._arenas])

    def payload(self) -> tuple[ShardDescriptor, ...]:
        """What the pool initializer ships: descriptors only, O(1) bytes."""
        return tuple(self.descriptors)

    def payload_bytes(self) -> int:
        """Pickled size of the initializer payload (the bench's metric)."""
        return len(pickle.dumps(self.payload(), protocol=_PICKLE_PROTOCOL))

    def segment_names(self) -> list[str]:
        return [arena.name for arena in self._arenas]

    def shard_bytes(self) -> int:
        """Total bytes published across this generation's segments."""
        return sum(arena.descriptor.nbytes for arena in self._arenas)

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Unlink every segment (idempotent; also disarms the finalizer)."""
        self._finalizer()


# ----------------------------------------------------------------------
# query execution (runs in worker processes)
# ----------------------------------------------------------------------
# One pool worker caches the shards it has seen and lazily builds a
# QueryPlanner per shard on first use, so steady-state tasks ship only
# (shard_id, queries, thresholds, roots).  The shared-memory initializer
# records descriptors and defers the attach itself to the first task that
# needs the shard — a worker that never serves a shard never maps it.
_WORKER_SHARDS: dict[int, DatabaseShard] = {}
_WORKER_PLANNERS: dict[int, QueryPlanner] = {}
_WORKER_DESCRIPTORS: dict[int, ShardDescriptor] = {}


def _init_query_worker(shards: list[DatabaseShard]) -> None:
    """Legacy initializer: ships whole shards (O(shard-bytes) per worker).

    Kept for ``ShardedPlanner(use_shared_memory=False)`` — the benchmark's
    baseline and an escape hatch for platforms without POSIX shared memory.
    """
    _WORKER_SHARDS.clear()
    _WORKER_PLANNERS.clear()
    _WORKER_DESCRIPTORS.clear()
    for shard in shards:
        _WORKER_SHARDS[shard.spec.shard_id] = shard


def _init_shm_query_worker(descriptors: tuple[ShardDescriptor, ...]) -> None:
    """Shared-memory initializer: ships O(1) descriptors per shard."""
    _WORKER_SHARDS.clear()
    _WORKER_PLANNERS.clear()
    _WORKER_DESCRIPTORS.clear()
    for descriptor in descriptors:
        _WORKER_DESCRIPTORS[descriptor.shard_id] = descriptor


def _run_shard_workload(
    shard_id: int, plans, roots: list[int], partial: bool = False
) -> list[QueryResult] | list[TopKPartial]:
    planner = _WORKER_PLANNERS.get(shard_id)
    if planner is None:
        shard = _WORKER_SHARDS.get(shard_id)
        if shard is None:
            # first touch of this shard in this worker: attach the shared
            # segment read-only (zero-copy; graphs stay lazy)
            shard = materialize_shard(_WORKER_DESCRIPTORS[shard_id])
            _WORKER_SHARDS[shard_id] = shard
        planner = shard.make_planner()
        _WORKER_PLANNERS[shard_id] = planner
    if partial:
        return [
            planner.execute_top_k_partial(plan, rng=root)
            for plan, root in zip(plans, roots)
        ]
    return [planner.execute_plan(plan, rng=root) for plan, root in zip(plans, roots)]


# ----------------------------------------------------------------------
# the sharded planner
# ----------------------------------------------------------------------
class ShardedPlanner:
    """Fans T-PS queries out over K database shards and merges the answers.

    Drop-in for :class:`QueryPlanner` at the engine level: ``execute`` /
    ``execute_many`` take the same arguments and return results identical to
    the sequential planner's, independent of shard count and worker count.
    ``max_workers`` picks the process-pool width for query fan-out
    (``None`` → ``min(num_shards, cpu_count)``); at width <= 1 shards run
    in-process, which is also the zero-dependency fallback path.  With
    ``use_shared_memory=True`` (the default) shards are published once into
    a shared-memory :class:`ShardPlane` and workers attach read-only via
    O(1) descriptors; ``use_shared_memory=False`` falls back to shipping
    whole shards through the pool initializer.

    Shards come in two flavours (see :class:`DatabaseShard`): static
    contiguous slices, validated to tile the global id space, and mutable
    *catalog* shards carrying explicit stable ids plus a tombstone mask,
    validated for live-id disjointness instead.  The determinism contract is
    the same for both: answers and counters are byte-identical to a
    sequential run over the same live graphs under the same ``rng``.
    """

    def __init__(
        self,
        shards: list[DatabaseShard],
        max_workers: int | None = None,
        use_shared_memory: bool = True,
    ) -> None:
        if not shards:
            raise ConfigurationError("a sharded planner needs at least one shard")
        catalog_mode = any(shard.graph_ids is not None for shard in shards)
        if catalog_mode and not all(shard.graph_ids is not None for shard in shards):
            raise ConfigurationError(
                "cannot mix catalog shards (explicit graph_ids) with "
                "contiguous-slice shards"
            )
        if catalog_mode:
            # catalog shards own arbitrary stable-id sets: no tiling to
            # check, but the merge invariants need the live ids disjoint
            ordered = sorted(shards, key=lambda shard: shard.spec.shard_id)
            all_ids = np.concatenate([shard.live_global_ids() for shard in ordered])
            if len(np.unique(all_ids)) != len(all_ids):
                raise ConfigurationError("catalog shards must cover disjoint live graph ids")
        else:
            ordered = sorted(shards, key=lambda shard: shard.spec.start)
            expected_start = 0
            for shard in ordered:
                if shard.spec.start != expected_start:
                    raise ConfigurationError(
                        "shards must tile the graph-id space contiguously; "
                        f"expected a shard starting at {expected_start}, "
                        f"got {shard.spec!r}"
                    )
                expected_start = shard.spec.stop
        seen_ids: set[int] = set()
        for shard in ordered:
            # planner caches and pool tasks are keyed by shard_id
            if shard.spec.shard_id in seen_ids:
                raise ConfigurationError(f"duplicate shard id {shard.spec.shard_id!r}")
            seen_ids.add(shard.spec.shard_id)
        self.shards = ordered
        self.max_workers = max_workers
        self.use_shared_memory = use_shared_memory
        self._executor: ProcessPoolExecutor | None = None
        self._executor_width = 0
        self._local_planners: dict[int, QueryPlanner] = {}
        self._plane: ShardPlane | None = None
        # Guards the pool/plane lifecycle against concurrent submission: the
        # query service fans requests in from worker threads, so executor
        # creation, task submission, resize, and close must serialize.
        # Reentrant because the BrokenProcessPool fallback inside _fan_out
        # calls close() from a frame that may re-enter locked helpers.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graphs: list[ProbabilisticGraph],
        num_shards: int,
        feature_config: FeatureSelectionConfig | None = None,
        bound_config: BoundConfig | None = None,
        rng: RandomLike = None,
        max_workers: int | None = None,
        cache_dir: str | Path | None = None,
        pmi: ProbabilisticMatrixIndex | None = None,
    ) -> "ShardedPlanner":
        """Partition ``graphs`` and build every shard's indexes.

        Features are mined once over the full database in the parent (the
        same mining the sequential path performs), then per-shard SIP-bound
        computation fans out to worker processes.  Passing a prebuilt full
        ``pmi`` skips all bound computation: the loaded index is row-sliced
        into the shards via :meth:`ProbabilisticMatrixIndex.subset`.  On that
        path ``cache_dir`` is not consulted — the expensive SIP bounds are
        already in hand — and the structural counts are rebuilt in the
        parent; use a seed-keyed ``cache_dir`` build (no ``pmi``) when warm
        restarts should skip the embedding enumeration too.

        The cache key includes the 64-bit build root, so ``cache_dir`` only
        pays off with a deterministic ``rng`` (an int seed or a seeded
        generator): with ``rng=None`` every build draws a fresh root and the
        cache can never hit.
        """
        if not graphs:
            raise ConfigurationError("the database needs at least one probabilistic graph")
        specs = partition_ranges(len(graphs), num_shards)
        if pmi is not None:
            if feature_config is not None or bound_config is not None:
                raise IndexError_(
                    "feature_config/bound_config conflict with a prebuilt pmi; "
                    "the loaded index already carries its build configuration"
                )
            if pmi.database_size != len(graphs):
                raise IndexError_(
                    f"prebuilt PMI covers {pmi.database_size} graphs, "
                    f"database has {len(graphs)}"
                )
            structural = StructuralFeatureIndex(
                embedding_limit=pmi.feature_config.embedding_limit
            )
            structural.build([graph.skeleton for graph in graphs], pmi.features)
            shards = [
                DatabaseShard(
                    spec=spec,
                    graphs=graphs[spec.start : spec.stop],
                    pmi=pmi.subset(spec.global_ids()),
                    structural_index=structural.subset(spec.global_ids()),
                )
                for spec in specs
            ]
            return cls(shards, max_workers=max_workers)

        feature_cfg = feature_config or FeatureSelectionConfig()
        bound_cfg = bound_config or BoundConfig()
        root = rng_root(rng)
        features = FeatureMiner(feature_cfg).mine(graphs)
        tasks = [
            (spec, graphs[spec.start : spec.stop], features, feature_cfg, bound_cfg, root, cache_dir)
            for spec in specs
        ]
        workers = _resolve_workers(max_workers, len(specs))
        if workers <= 1:
            shards = [build_shard(*task) for task in tasks]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(build_shard, *task) for task in tasks]
                shards = [future.result() for future in futures]
        return cls(shards, max_workers=max_workers)

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def database_size(self) -> int:
        """Live graphs across all shards.

        For contiguous-slice shards the spec sizes tile ``range(N)`` so the
        sum equals the static database size; for catalog shards each spec
        size is the shard's live (non-tombstoned) row count.
        """
        return sum(shard.spec.size for shard in self.shards)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        config=None,
        rng: RandomLike = None,
    ) -> QueryResult:
        """One T-PS query, fanned out over the shards and merged.

        Byte-identical (answers and counters) to the sequential
        :meth:`QueryPlanner.execute` over the same live graphs with the same
        ``rng`` — for any shard count, worker count, or OS scheduling.
        """
        return self.execute_many(
            [query], probability_threshold, distance_threshold, config, rng=rng
        )[0]

    def execute_many(
        self,
        queries: list[LabeledGraph],
        probability_threshold: float,
        distance_threshold: int,
        config=None,
        rng: RandomLike = None,
        rngs: list[RandomLike] | None = None,
    ) -> list[QueryResult]:
        """A whole workload: one pool task per shard, each running all queries.

        The per-query RNG roots are derived here, in the parent, in query
        order — exactly the draws :meth:`QueryPlanner.execute_many` would
        make — then shipped to every shard so all of them agree on each
        query's streams.  ``rngs`` (one entry per query, exclusive with
        ``rng``) instead derives each root from that query's own entry: the
        micro-batching form, byte-identical to executing every query alone
        with its own seed regardless of batch composition.  Planning
        (validation, Lemma-1 relaxation, and the one-VF2-round-per-feature
        containment pass) also happens once here: a :class:`QueryPlan`
        depends only on the query, thresholds, config, and the globally
        shared feature set, so shards receive finished plans instead of each
        re-deriving the same one K times.
        """
        if not queries:
            return []
        roots = [rng_root(r) for r in _resolve_rngs(rng, rngs, len(queries))]
        lead = self._planner_for(self.shards[0])
        plans = [
            lead.plan(query, probability_threshold, distance_threshold, config)
            for query in queries
        ]
        per_shard = self._fan_out(plans, roots, partial=False)
        return [
            merge_query_results([results[index] for results in per_shard])
            for index in range(len(queries))
        ]

    def execute_top_k(
        self,
        query: LabeledGraph,
        k: int,
        distance_threshold: int,
        config=None,
        rng: RandomLike = None,
    ) -> QueryResult:
        """One top-k query, fanned out over the shards and replay-merged."""
        return self.execute_top_k_many([query], k, distance_threshold, config, rng=rng)[0]

    def execute_top_k_many(
        self,
        queries: list[LabeledGraph],
        k: int,
        distance_threshold: int,
        config=None,
        rng: RandomLike = None,
        rngs: list[RandomLike] | None = None,
    ) -> list[QueryResult]:
        """A top-k workload with the cross-shard merge invariant.

        Every shard runs its pipeline in *partial* mode — the probability
        floor stays at the shard-local lsim seed, and the shard ships its
        examined candidate/bound table plus all verified estimates — and
        :func:`repro.core.pipeline.merge_top_k_partials` replays the
        sequential verification loop over the union.  Because each graph's
        estimate derives from ``(root, VERIFY_STREAM, global graph id)``,
        the merged answers are byte-identical to
        :meth:`QueryPlanner.execute_top_k` on the unsharded database, for
        any shard count and any worker count (see ``core.pipeline``).
        """
        if not queries:
            return []
        roots = [rng_root(r) for r in _resolve_rngs(rng, rngs, len(queries))]
        lead = self._planner_for(self.shards[0])
        plans = [lead.plan_top_k(query, k, distance_threshold, config) for query in queries]
        per_shard = self._fan_out(plans, roots, partial=True)
        return [
            # plans[0].k is the validated, int-coerced k
            merge_top_k_partials([partials[index] for partials in per_shard], plans[0].k)
            for index in range(len(queries))
        ]

    # `query*()` aliases for symmetry with the engine-level API
    query = execute
    query_many = execute_many
    query_top_k = execute_top_k
    query_top_k_many = execute_top_k_many

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and retire the published segments.

        Order matters: the pool shutdown joins every worker first — that is
        the re-attach barrier of the hot-swap protocol, after which no
        process can hold a mapping — and only then does the plane unlink.
        A new query re-creates both, publishing a fresh generation; this is
        exactly how a catalog mutation or ``compact()`` swaps generations
        (``GraphCatalog._invalidate`` closes the cached planner).

        Safe under concurrency (the drain-on-shutdown contract): idempotent
        — a second ``close()``, including one racing the first from another
        thread, is a no-op — and a ``close()`` racing an in-flight
        ``execute*`` drains it rather than tearing it down: the pool
        shutdown waits for every submitted task, so the in-flight query
        still returns its (byte-identical) answers and no worker ever
        outlives the segments it has attached.
        """
        with self._lock:
            self._shutdown_pool()
            if self._plane is not None:
                self._plane.close()
                self._plane = None

    def __enter__(self) -> "ShardedPlanner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _fan_out(self, plans, roots: list[int], partial: bool) -> list[list]:
        """One pool task per shard, each running the whole plan list.

        Returns per-shard result lists, query-index aligned.  ``partial``
        selects shard-partial top-k execution over plain plan execution.
        Executor acquisition and task submission happen atomically under the
        lifecycle lock, so a concurrent ``close()`` either runs before this
        batch (which then builds a fresh pool) or drains it (pool shutdown
        waits for submitted tasks); waiting on the futures happens outside
        the lock so concurrent submitters and a draining ``close()`` never
        deadlock on each other.
        """
        workers = _resolve_workers(self.max_workers, len(self.shards))
        if workers <= 1 or len(self.shards) == 1:
            return self._execute_serial(plans, roots, partial)
        try:
            with self._lock:
                pool = self._ensure_executor(workers)
                futures = [
                    pool.submit(
                        _run_shard_workload, shard.spec.shard_id, plans, roots, partial
                    )
                    for shard in self.shards
                ]
            return [future.result() for future in futures]
        except BrokenProcessPool:
            # a killed worker poisons the whole pool; answers are
            # deterministic either way, so finish this call in-process
            # and let the next call build a fresh pool
            self.close()
            return self._execute_serial(plans, roots, partial)

    def _execute_serial(self, plans, roots: list[int], partial: bool = False) -> list[list]:
        """All shards in-process: the pool-less (and pool-failure) path."""
        per_shard = []
        for shard in self.shards:
            planner = self._planner_for(shard)
            if partial:
                per_shard.append(
                    [
                        planner.execute_top_k_partial(plan, rng=root)
                        for plan, root in zip(plans, roots)
                    ]
                )
            else:
                per_shard.append(
                    [
                        planner.execute_plan(plan, rng=root)
                        for plan, root in zip(plans, roots)
                    ]
                )
        return per_shard

    def _planner_for(self, shard: DatabaseShard) -> QueryPlanner:
        with self._lock:
            planner = self._local_planners.get(shard.spec.shard_id)
            if planner is None:
                planner = shard.make_planner()
                self._local_planners[shard.spec.shard_id] = planner
            return planner

    @property
    def shard_plane(self) -> ShardPlane | None:
        """The currently published generation, or None before the first pool
        (and after :meth:`close`)."""
        with self._lock:
            return self._plane

    def initializer_payload(self):
        """Exactly what the pool initializer ships to every worker.

        Descriptors (O(1) in shard bytes) on the shared-memory path — this
        publishes the plane if needed — or the shard list itself on the
        legacy path.  The resize-regression test and the benchmark pickle
        this to measure the initializer cost.
        """
        if self.use_shared_memory:
            with self._lock:
                return self._ensure_plane().payload()
        return self.shards

    def _ensure_plane(self) -> ShardPlane:
        with self._lock:
            if self._plane is None:
                self._plane = ShardPlane(self.shards)
            return self._plane

    def _shutdown_pool(self) -> None:
        """Join and drop the executor, leaving the plane published.

        ``shutdown()`` waits for every already-submitted task, so a close
        racing an in-flight query drains it instead of cancelling it.
        """
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown()
                self._executor = None
                self._executor_width = 0

    def _ensure_executor(self, workers: int) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is not None and self._executor_width != workers:
                # resize: recycle only the pool — the published plane
                # survives, so the new workers re-attach via O(1)
                # descriptors instead of paying a fresh copy of every shard
                self._shutdown_pool()
            if self._executor is None:
                if self.use_shared_memory:
                    initializer, initargs = (
                        _init_shm_query_worker,
                        (self._ensure_plane().payload(),),
                    )
                else:
                    initializer, initargs = _init_query_worker, (self.shards,)
                self._executor = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=initializer,
                    initargs=initargs,
                )
                self._executor_width = workers
            return self._executor


def _resolve_workers(max_workers: int | None, num_tasks: int) -> int:
    """The effective pool width: never more than tasks, ``None`` → cpu count."""
    if num_tasks <= 1:
        return 1
    if max_workers is None:
        return min(num_tasks, os.cpu_count() or 1)
    if max_workers < 0:
        raise ConfigurationError(f"max_workers must be >= 0, got {max_workers!r}")
    return min(max_workers, num_tasks)
