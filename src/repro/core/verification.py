"""Verification: computing the subgraph similarity probability of a candidate
(Section 5).

Three strategies are provided, all built on Lemma 1 / Equation 22, which
identify ``Pr(q ⊆sim g)`` with the probability that at least one embedding of
one relaxed query is fully present in the sampled world:

* ``"sampling"`` — the paper's Algorithm 5 (Karp-Luby coverage sampler, SMP
  in the experiments);
* ``"inclusion_exclusion"`` — exact Equation 21 over the embedding events
  (the paper's Exact method; exponential in the number of events);
* ``"enumeration"`` — brute-force possible-world enumeration with a direct
  subgraph-distance test per world; the slowest but most literal ground
  truth, used by tests and available for tiny graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.relaxation import RelaxationConfig, relax_query
from repro.exceptions import VerificationError
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.possible_worlds import enumerate_possible_worlds
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.isomorphism.embeddings import find_embeddings
from repro.isomorphism.mcs import is_subgraph_similar
from repro.probability.dnf import estimate_union_probability, exact_union_probability
from repro.utils.rng import RandomLike, ensure_rng


@dataclass(frozen=True)
class VerificationConfig:
    """Controls the verification strategy and its accuracy/cost trade-offs."""

    method: str = "sampling"
    xi: float = 0.05
    tau: float = 0.1
    num_samples: int | None = 400
    embedding_limit: int = 64
    max_exact_events: int = 18
    max_enumeration_edges: int = 18


class Verifier:
    """Computes SSP estimates for (query, graph) pairs."""

    def __init__(
        self,
        config: VerificationConfig | None = None,
        relaxation: RelaxationConfig | None = None,
        rng: RandomLike = None,
    ) -> None:
        self.config = config or VerificationConfig()
        self.relaxation = relaxation or RelaxationConfig()
        self.rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def subgraph_similarity_probability(
        self,
        query: LabeledGraph,
        graph: ProbabilisticGraph,
        distance_threshold: int,
        relaxed_queries: list[LabeledGraph] | None = None,
        method: str | None = None,
    ) -> float:
        """``Pr(q ⊆sim g)`` with the configured (or overridden) method."""
        strategy = method or self.config.method
        if strategy == "enumeration":
            return self._by_enumeration(query, graph, distance_threshold)
        if relaxed_queries is None:
            relaxed_queries = relax_query(query, distance_threshold, self.relaxation)
        events = self._embedding_events(relaxed_queries, graph)
        if not events:
            return 0.0
        if strategy == "sampling":
            return estimate_union_probability(
                graph,
                events,
                xi=self.config.xi,
                tau=self.config.tau,
                num_samples=self.config.num_samples,
                rng=self.rng,
            )
        if strategy == "inclusion_exclusion":
            return exact_union_probability(
                graph, events, max_events=self.config.max_exact_events
            )
        raise VerificationError(f"unknown verification method {strategy!r}")

    def matches(
        self,
        query: LabeledGraph,
        graph: ProbabilisticGraph,
        probability_threshold: float,
        distance_threshold: int,
        relaxed_queries: list[LabeledGraph] | None = None,
        method: str | None = None,
    ) -> tuple[bool, float]:
        """(is answer, SSP estimate) for one candidate graph."""
        probability = self.subgraph_similarity_probability(
            query, graph, distance_threshold, relaxed_queries=relaxed_queries, method=method
        )
        return probability >= probability_threshold, probability

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _embedding_events(
        self, relaxed_queries: list[LabeledGraph], graph: ProbabilisticGraph
    ) -> list[frozenset]:
        """The events of Equation 22: edge sets of every relaxed-query embedding."""
        events: list[frozenset] = []
        for relaxed in relaxed_queries:
            for embedding in find_embeddings(
                relaxed, graph.skeleton, limit=self.config.embedding_limit
            ):
                events.append(embedding.edges)
        return events

    def _by_enumeration(
        self, query: LabeledGraph, graph: ProbabilisticGraph, distance_threshold: int
    ) -> float:
        if graph.num_edges > self.config.max_enumeration_edges:
            raise VerificationError(
                "possible-world enumeration limited to "
                f"{self.config.max_enumeration_edges} uncertain edges; "
                f"graph has {graph.num_edges}"
            )
        total = 0.0
        for world in enumerate_possible_worlds(graph):
            if is_subgraph_similar(query, world.graph, distance_threshold):
                total += world.probability
        return min(1.0, total)
