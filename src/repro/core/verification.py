"""Verification: computing the subgraph similarity probability of a candidate
(Section 5).

Three strategies are provided, all built on Lemma 1 / Equation 22, which
identify ``Pr(q ⊆sim g)`` with the probability that at least one embedding of
one relaxed query is fully present in the sampled world:

* ``"sampling"`` — the paper's Algorithm 5 (Karp-Luby coverage sampler, SMP
  in the experiments), executed by the vectorized batch kernel
  (:mod:`repro.probability.batch_kernel`): events compile to edge-index
  arrays once per candidate and all samples are drawn and evaluated as
  numpy matrices under the kernel's canonical draw order;
* ``"sampling_scalar"`` — the same estimator evaluated one world at a time
  (the pre-kernel reference implementation; different draws, same
  distribution — kept for A/B tests and benchmarks);
* ``"inclusion_exclusion"`` — exact Equation 21 over the embedding events
  (the paper's Exact method; exponential in the number of events);
* ``"enumeration"`` — brute-force possible-world enumeration with a direct
  subgraph-distance test per world; the slowest but most literal ground
  truth, used by tests and available for tiny graphs.

:meth:`Verifier.verify_block` is the block entry point the pipeline's
verification stage uses: one call verifies a whole candidate block, with an
explicit per-graph rng list so every estimate stays keyed on the graph's own
``VERIFY_STREAM`` stream regardless of block composition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.relaxation import RelaxationConfig, relax_query
from repro.exceptions import VerificationError
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.possible_worlds import enumerate_possible_worlds
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.isomorphism.embeddings import find_embeddings, find_embeddings_block
from repro.isomorphism.mcs import is_subgraph_similar
from repro.probability.batch_kernel import estimate_union_probability_batch
from repro.probability.dnf import estimate_union_probability, exact_union_probability
from repro.utils.rng import RandomLike, ensure_rng


@dataclass(frozen=True)
class VerificationConfig:
    """Controls the verification strategy and its accuracy/cost trade-offs."""

    method: str = "sampling"
    xi: float = 0.05
    tau: float = 0.1
    num_samples: int | None = 400
    embedding_limit: int = 64
    max_exact_events: int = 18
    max_enumeration_edges: int = 18
    # candidates per verify_block() call in the pipeline's verification
    # stage; block composition never affects estimates (each graph keeps its
    # own rng stream), only how work is chunked
    block_size: int = 64


class Verifier:
    """Computes SSP estimates for (query, graph) pairs."""

    def __init__(
        self,
        config: VerificationConfig | None = None,
        relaxation: RelaxationConfig | None = None,
        rng: RandomLike = None,
    ) -> None:
        self.config = config or VerificationConfig()
        self.relaxation = relaxation or RelaxationConfig()
        self.rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def subgraph_similarity_probability(
        self,
        query: LabeledGraph,
        graph: ProbabilisticGraph,
        distance_threshold: int,
        relaxed_queries: list[LabeledGraph] | None = None,
        method: str | None = None,
        rng: RandomLike = None,
        events: list[frozenset] | None = None,
    ) -> float:
        """``Pr(q ⊆sim g)`` with the configured (or overridden) method.

        ``rng`` overrides the verifier-level generator for this one call —
        the hook :meth:`verify_block` uses to key each candidate's draws on
        its own per-graph stream.  ``events`` short-circuits embedding
        enumeration with a precomputed event list (same order as
        :meth:`_embedding_events`); :meth:`verify_block` uses it to share the
        relaxed queries' compiled matching work across a whole block.
        """
        strategy = method or self.config.method
        generator = self.rng if rng is None else ensure_rng(rng)
        if strategy == "enumeration":
            return self._by_enumeration(query, graph, distance_threshold)
        if events is None:
            if relaxed_queries is None:
                relaxed_queries = relax_query(query, distance_threshold, self.relaxation)
            events = self._embedding_events(relaxed_queries, graph)
        if not events:
            return 0.0
        if strategy == "sampling":
            return estimate_union_probability_batch(
                graph,
                events,
                xi=self.config.xi,
                tau=self.config.tau,
                num_samples=self.config.num_samples,
                rng=generator,
            )
        if strategy == "sampling_scalar":
            return estimate_union_probability(
                graph,
                events,
                xi=self.config.xi,
                tau=self.config.tau,
                num_samples=self.config.num_samples,
                rng=generator,
            )
        if strategy == "inclusion_exclusion":
            return exact_union_probability(
                graph, events, max_events=self.config.max_exact_events
            )
        raise VerificationError(f"unknown verification method {strategy!r}")

    def verify_block(
        self,
        query: LabeledGraph,
        graphs: list[ProbabilisticGraph],
        distance_threshold: int,
        relaxed_queries: list[LabeledGraph] | None = None,
        method: str | None = None,
        rngs: list | None = None,
    ) -> list[float]:
        """SSP estimates for a whole candidate block.

        Query relaxation happens once for the block; each candidate then
        runs the configured method with its own entry of ``rngs`` (the
        pipeline passes ``derive_rng(root, VERIFY_STREAM, global id)`` per
        graph), so estimates are independent of block composition and block
        size — a sharded or re-chunked execution reproduces them exactly.
        Under ``method="sampling"`` each candidate's events are compiled to
        index arrays and all its samples are drawn and evaluated as one
        matrix batch by the kernel.
        """
        if relaxed_queries is None:
            relaxed_queries = relax_query(query, distance_threshold, self.relaxation)
        if rngs is None:
            rngs = [None] * len(graphs)
        strategy = method or self.config.method
        events_per_graph: list[list[frozenset] | None]
        if strategy == "enumeration":
            events_per_graph = [None] * len(graphs)
        else:
            events_per_graph = self._embedding_events_block(relaxed_queries, graphs)
        return [
            self.subgraph_similarity_probability(
                query,
                graph,
                distance_threshold,
                relaxed_queries=relaxed_queries,
                method=method,
                rng=rng,
                events=events,
            )
            for graph, rng, events in zip(graphs, rngs, events_per_graph, strict=True)
        ]

    def matches(
        self,
        query: LabeledGraph,
        graph: ProbabilisticGraph,
        probability_threshold: float,
        distance_threshold: int,
        relaxed_queries: list[LabeledGraph] | None = None,
        method: str | None = None,
    ) -> tuple[bool, float]:
        """(is answer, SSP estimate) for one candidate graph."""
        probability = self.subgraph_similarity_probability(
            query, graph, distance_threshold, relaxed_queries=relaxed_queries, method=method
        )
        return probability >= probability_threshold, probability

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _embedding_events(
        self, relaxed_queries: list[LabeledGraph], graph: ProbabilisticGraph
    ) -> list[frozenset]:
        """The events of Equation 22: edge sets of every relaxed-query embedding."""
        events: list[frozenset] = []
        for relaxed in relaxed_queries:
            for embedding in find_embeddings(
                relaxed, graph.skeleton, limit=self.config.embedding_limit
            ):
                events.append(embedding.edges)
        return events

    def _embedding_events_block(
        self, relaxed_queries: list[LabeledGraph], graphs: list[ProbabilisticGraph]
    ) -> list[list[frozenset]]:
        """Per-graph event lists for a block, one matching pass per relaxed query.

        Produces exactly what :meth:`_embedding_events` would per graph
        (relaxed-query-major, embeddings in canonical order), but enumerates
        each relaxed query against the whole block at once so its compiled
        join plan is shared.
        """
        events_per_graph: list[list[frozenset]] = [[] for _ in graphs]
        skeletons = [graph.skeleton for graph in graphs]
        for relaxed in relaxed_queries:
            per_target = find_embeddings_block(
                relaxed, skeletons, limit=self.config.embedding_limit
            )
            for events, embeddings in zip(events_per_graph, per_target):
                events.extend(embedding.edges for embedding in embeddings)
        return events_per_graph

    def _by_enumeration(
        self, query: LabeledGraph, graph: ProbabilisticGraph, distance_threshold: int
    ) -> float:
        if graph.num_edges > self.config.max_enumeration_edges:
            raise VerificationError(
                "possible-world enumeration limited to "
                f"{self.config.max_enumeration_edges} uncertain edges; "
                f"graph has {graph.num_edges}"
            )
        total = 0.0
        for world in enumerate_possible_worlds(graph):
            if is_subgraph_similar(query, world.graph, distance_threshold):
                total += world.probability
        return min(1.0, total)
