"""Write-ahead logging for the durable :class:`~repro.core.catalog.GraphCatalog`.

Every catalog mutation is made durable *before* it applies in memory by
appending one record to the active generation's log file and fsyncing it.
The format is LogBase-style compact and self-verifying — one record per
line::

    <crc32 of body, 8 hex digits> <body: canonical compact JSON>\\n

with the body carrying a monotonically increasing ``lsn`` (0 is the header
record stamping the format version and the generation number).  Three
properties make recovery trivial:

* **append-only + fsync per record** — the file is always a clean prefix of
  the mutation history; a record either survives whole or is the torn tail;
* **checksums** — a torn final record (crash mid-append) is detected and
  truncated away on open; corruption *before* the final record can only be
  real damage and raises :class:`~repro.exceptions.WalError`;
* **dense LSNs** — a gap means records vanished (a misdirected truncate or
  an aligned hole), also :class:`WalError`, never silent data loss.

One log file serves one snapshot *generation*: ``compact()`` folds the tail
into a fresh snapshot, starts ``wal_<gen+1>.log``, and retires the old pair.
The log stores mutations in replayable form (graph payloads as the JSON
dicts of :mod:`repro.graphs.io`), and replay drives the ordinary in-memory
mutation paths — the stable-external-id determinism contract then makes the
recovered catalog answer byte-identically to a from-scratch build over the
surviving database.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

from repro.exceptions import WalError
from repro.utils import atomic_io

__all__ = ["WriteAheadLog", "WAL_FORMAT_VERSION", "wal_filename"]

WAL_FORMAT_VERSION = 1
_HEADER_OP = "header"


def wal_filename(generation: int) -> str:
    """The log filename serving snapshot generation ``generation``."""
    return f"wal_{generation:08d}.log"


def _encode_record(record: dict) -> bytes:
    body = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return f"{zlib.crc32(body) & 0xFFFFFFFF:08x} ".encode("ascii") + body + b"\n"


def _decode_line(line: bytes) -> dict | None:
    """The record on ``line``, or None when the line is torn/corrupt."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    body = line[9:]
    try:
        if int(line[:8], 16) != zlib.crc32(body) & 0xFFFFFFFF:
            return None
        record = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return record if isinstance(record, dict) else None


class WriteAheadLog:
    """One generation's append-only, checksummed, fsync-per-record log.

    Use :meth:`create` to start a fresh log (writes the header record) and
    :meth:`open` to attach to an existing one (verifies every record,
    truncates a torn tail, and returns the surviving mutation records for
    replay).  :meth:`append` returns only after the record is on disk.
    """

    def __init__(self, path: Path, generation: int, next_lsn: int) -> None:
        self.path = path
        self.generation = generation
        self._next_lsn = next_lsn
        self._handle = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str | Path, generation: int) -> "WriteAheadLog":
        """Start a fresh log for ``generation``, header fsync'd to disk.

        Truncates any existing file at ``path``: a log is only created for a
        generation that has never been committed (the ``CURRENT`` swap), so
        an existing file can only be debris from a crashed earlier attempt.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        wal = cls(path, int(generation), next_lsn=0)
        # The WAL is the one append-only artifact: its durability comes from
        # fsync-per-record plus torn-tail truncation on open, not from the
        # tmp+rename recipe (which cannot append).
        # repro: allow[IO001] -- WAL append-only discipline, see module docstring
        wal._handle = open(path, "wb")
        wal._append_raw(
            {
                "op": _HEADER_OP,
                "version": WAL_FORMAT_VERSION,
                "generation": int(generation),
            }
        )
        atomic_io.fsync_directory(path.parent)
        return wal

    @classmethod
    def open(
        cls, path: str | Path, generation: int | None = None
    ) -> tuple["WriteAheadLog", list[dict]]:
        """Attach to an existing log; returns ``(wal, mutation_records)``.

        Verifies the checksum and LSN of every record.  A torn *final*
        record — the only damage a crash mid-append can cause — is truncated
        off the file (fsync'd) and recovery proceeds; any other inconsistency
        raises :class:`WalError`.  ``generation`` cross-checks the header
        when given.
        """
        path = Path(path)
        try:
            data = path.read_bytes()
        except OSError as error:
            raise WalError(f"cannot read WAL {str(path)!r}: {error}") from error
        records, valid_bytes = cls._scan(data, path)
        if not records or records[0].get("op") != _HEADER_OP:
            raise WalError(f"WAL {str(path)!r} has no header record")
        header = records[0]
        if header.get("version") != WAL_FORMAT_VERSION:
            raise WalError(
                f"unsupported WAL format version {header.get('version')!r} in "
                f"{str(path)!r}; this build reads version {WAL_FORMAT_VERSION}"
            )
        if generation is not None and header.get("generation") != generation:
            raise WalError(
                f"WAL {str(path)!r} belongs to generation "
                f"{header.get('generation')!r}, expected {generation!r}"
            )
        if valid_bytes < len(data):
            # torn tail: drop the partial record so the next append starts
            # on a clean boundary (and reopening sees a fully valid file)
            # repro: allow[IO001] -- in-place truncate of the WAL's torn tail
            with open(path, "r+b") as handle:
                handle.truncate(valid_bytes)
                atomic_io.fsync_file(handle)
        wal = cls(path, int(header.get("generation", 0)), next_lsn=len(records))
        return wal, records[1:]

    @staticmethod
    def _scan(data: bytes, path: Path) -> tuple[list[dict], int]:
        """Parse ``data`` into records; returns them plus the valid-prefix size.

        Any undecodable or out-of-sequence record is only tolerated as the
        *last* thing in the file (the torn tail a crash mid-append leaves);
        bytes after it mean damage no crash can explain.
        """
        records: list[dict] = []
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                # unterminated tail: torn by definition
                return records, offset
            line = data[offset : newline + 1]
            record = _decode_line(line[:-1])
            if record is None:
                if newline + 1 < len(data):
                    raise WalError(
                        f"corrupt WAL record {len(records)} in {str(path)!r} "
                        "with records after it; the log is damaged beyond "
                        "crash semantics (a crash can only tear the tail)"
                    )
                return records, offset
            if record.get("lsn") != len(records):
                # a checksum-valid record with the wrong sequence number is
                # never crash damage — records in between have vanished
                raise WalError(
                    f"WAL {str(path)!r} jumps from lsn {len(records) - 1} to "
                    f"{record.get('lsn')!r}; records are missing"
                )
            records.append(record)
            offset = newline + 1
        return records, offset

    def close(self) -> None:
        """Close the append handle (idempotent; :meth:`append` reopens)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: dict) -> int:
        """Durably append one mutation record; returns its LSN.

        The record is checksummed, written, flushed, and fsync'd before this
        returns — only then may the caller apply the mutation in memory, so
        a crash at any instant leaves the log a superset of the applied
        state, never a subset.
        """
        if "lsn" in record or "op" not in record:
            raise WalError("records carry an 'op' and must not pre-set 'lsn'")
        return self._append_raw(dict(record))

    def _append_raw(self, record: dict) -> int:
        if self._handle is None or self._handle.closed:
            # repro: allow[IO001] -- WAL append-only discipline, see module docstring
            self._handle = open(self.path, "ab")
        record["lsn"] = self._next_lsn
        self._handle.write(_encode_record(record))
        atomic_io.fsync_file(self._handle)
        self._next_lsn += 1
        return record["lsn"]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        """Records on disk, header included (``lsn`` of the next append)."""
        return self._next_lsn

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self.path)!r}, generation={self.generation}, "
            f"records={self._next_lsn})"
        )
