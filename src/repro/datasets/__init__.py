"""Dataset generators: the synthetic STRING/PPI substitute, query workloads,
and the road / social network scenarios from the paper's introduction."""

from repro.datasets.synthetic_ppi import PPIDatabase, PPIDatasetConfig, generate_ppi_database
from repro.datasets.queries import extract_query, generate_query_workload, QueryWorkload
from repro.datasets.road_network import generate_road_network
from repro.datasets.social_network import generate_social_network

__all__ = [
    "PPIDatabase",
    "PPIDatasetConfig",
    "generate_ppi_database",
    "extract_query",
    "generate_query_workload",
    "QueryWorkload",
    "generate_road_network",
    "generate_social_network",
]
