"""Query workload generation (the q50..q250 query sets of Section 6).

The paper's query sets are connected size-``i`` graphs (``i`` edges) extracted
at random from the deterministic skeletons of the database graphs.  A query
remembers which data graph (and therefore which organism family) it was
extracted from, which is the ground truth used by the quality experiments
(Figures 9(b) and 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import QueryError
from repro.graphs.labeled_graph import LabeledGraph, edge_key
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.utils.rng import RandomLike, ensure_rng


@dataclass(frozen=True)
class QueryRecord:
    """One workload query plus its provenance."""

    query: LabeledGraph
    source_graph_id: int
    organism: int | None = None


@dataclass
class QueryWorkload:
    """A named collection of queries of a common size."""

    size: int
    records: list[QueryRecord] = field(default_factory=list)

    def queries(self) -> list[LabeledGraph]:
        return [record.query for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def extract_query(
    skeleton: LabeledGraph,
    num_edges: int,
    rng: RandomLike = None,
    name: str | None = None,
) -> LabeledGraph:
    """Extract a random connected subgraph with ``num_edges`` edges.

    Grows an edge set by repeatedly adding a random edge adjacent to the
    current vertex frontier, which keeps the result connected.  Raises
    :class:`QueryError` when the skeleton has fewer than ``num_edges`` edges.
    """
    if num_edges < 1:
        raise QueryError("queries need at least one edge")
    if skeleton.num_edges < num_edges:
        raise QueryError(
            f"cannot extract a {num_edges}-edge query from a graph with "
            f"{skeleton.num_edges} edges"
        )
    generator = ensure_rng(rng)
    start_edge = generator.choice(sorted(skeleton.edge_keys(), key=repr))
    chosen: set = {start_edge}
    frontier_vertices: set = set(start_edge)
    while len(chosen) < num_edges:
        candidates = []
        # sorted: candidate multiset is order-insensitive, but DET003 asks
        # that set iteration never feed an ordered accumulator unsorted
        for vertex in sorted(frontier_vertices, key=repr):
            for neighbor in skeleton.neighbors(vertex):
                key = edge_key(vertex, neighbor)
                if key not in chosen:
                    candidates.append(key)
        if not candidates:
            break  # connected component exhausted; accept a smaller query
        pick = generator.choice(sorted(candidates, key=repr))
        chosen.add(pick)
        frontier_vertices.update(pick)
    query = skeleton.subgraph_by_edges(chosen, name=name)
    # renumber vertices so the query does not leak data-graph identifiers
    mapping = {vertex: index for index, vertex in enumerate(sorted(query.vertices(), key=repr))}
    return query.relabel_vertices(mapping)


def generate_query_workload(
    graphs: list[ProbabilisticGraph],
    query_size: int,
    num_queries: int,
    organisms: list[int] | None = None,
    rng: RandomLike = None,
) -> QueryWorkload:
    """Build a workload of ``num_queries`` queries with ``query_size`` edges."""
    if not graphs:
        raise QueryError("cannot generate a workload from an empty database")
    generator = ensure_rng(rng)
    workload = QueryWorkload(size=query_size)
    eligible = [
        index for index, graph in enumerate(graphs) if graph.skeleton.num_edges >= query_size
    ]
    if not eligible:
        raise QueryError(
            f"no database graph has at least {query_size} edges; "
            "reduce the query size or enlarge the graphs"
        )
    for query_index in range(num_queries):
        source = generator.choice(eligible)
        query = extract_query(
            graphs[source].skeleton,
            query_size,
            rng=generator,
            name=f"q{query_size}-{query_index:03d}",
        )
        workload.records.append(
            QueryRecord(
                query=query,
                source_graph_id=source,
                organism=organisms[source] if organisms is not None else None,
            )
        )
    return workload
