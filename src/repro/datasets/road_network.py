"""Road-network scenario generator (introduction example: traffic uncertainty).

Edges model road segments whose existence probability is the probability the
segment is *passable* (not jammed); neighbouring segments are correlated
because congestion propagates (Hua & Pei [16]).  The generator lays out a
grid with diagonal shortcuts, assigns passability probabilities by a
congestion level per district, and builds correlated max-dominance JPTs over
incident segments — the same machinery the PPI dataset uses, exercised on a
different topology and label alphabet.
"""

from __future__ import annotations

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.utils.rng import RandomLike, ensure_rng

ROAD_TYPES = ["highway", "arterial", "local"]
JUNCTION_TYPES = ["signal", "roundabout", "stop"]


def generate_road_network(
    rows: int = 5,
    columns: int = 5,
    diagonal_probability: float = 0.2,
    congestion_level: float = 0.3,
    correlation: str = "max",
    rng: RandomLike = None,
    name: str | None = "road-network",
) -> ProbabilisticGraph:
    """A grid-shaped probabilistic road network.

    Parameters
    ----------
    rows, columns:
        Grid dimensions (intersections).
    diagonal_probability:
        Chance of adding a diagonal shortcut in each grid cell.
    congestion_level:
        0 = free flowing (high passability), 1 = gridlock (low passability).
    """
    generator = ensure_rng(rng)
    skeleton = LabeledGraph(name=name)
    for row in range(rows):
        for column in range(columns):
            skeleton.add_vertex((row, column), generator.choice(JUNCTION_TYPES))
    for row in range(rows):
        for column in range(columns):
            if column + 1 < columns:
                skeleton.add_edge((row, column), (row, column + 1), _road_type(row, generator))
            if row + 1 < rows:
                skeleton.add_edge((row, column), (row + 1, column), _road_type(column, generator))
            if (
                row + 1 < rows
                and column + 1 < columns
                and generator.random() < diagonal_probability
            ):
                skeleton.add_edge((row, column), (row + 1, column + 1), "local")

    probabilities = {}
    for key in skeleton.edge_keys():
        base = 0.9 - 0.6 * congestion_level
        jitter = generator.uniform(-0.15, 0.15)
        probabilities[key] = min(0.95, max(0.05, base + jitter))
    return ProbabilisticGraph.from_edge_probabilities(
        skeleton, probabilities, correlation=correlation, name=name
    )


def _road_type(index: int, generator) -> str:
    if index % 3 == 0:
        return "highway"
    return generator.choice(ROAD_TYPES[1:])
