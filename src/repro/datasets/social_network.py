"""Social-network scenario generator (introduction example: trust/influence).

Edges carry the probability that influence or trust actually propagates
between two users (Adar & Ré [2], Liben-Nowell & Kleinberg [25]); ties inside
a community are correlated because they share context.  The generator builds
a community-structured (planted-partition) graph with role labels and
correlated JPTs per neighbor edge set.
"""

from __future__ import annotations

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.utils.rng import RandomLike, ensure_rng

ROLE_LABELS = ["influencer", "member", "lurker"]
TIE_LABELS = ["follows", "mentions", "messages"]


def generate_social_network(
    num_communities: int = 3,
    community_size: int = 8,
    intra_probability: float = 0.4,
    inter_probability: float = 0.05,
    mean_trust: float = 0.5,
    correlation: str = "max",
    rng: RandomLike = None,
    name: str | None = "social-network",
) -> ProbabilisticGraph:
    """A community-structured probabilistic social graph.

    ``intra_probability`` / ``inter_probability`` control the density of ties
    inside / across communities; ``mean_trust`` centres the edge existence
    (influence) probabilities.
    """
    generator = ensure_rng(rng)
    skeleton = LabeledGraph(name=name)
    members: list[list[int]] = []
    vertex = 0
    for _community in range(num_communities):
        group = []
        for position in range(community_size):
            role = ROLE_LABELS[0] if position == 0 else generator.choice(ROLE_LABELS[1:])
            skeleton.add_vertex(vertex, role)
            group.append(vertex)
            vertex += 1
        members.append(group)

    for community, group in enumerate(members):
        # spanning star around the community influencer keeps it connected
        hub = group[0]
        for other in group[1:]:
            skeleton.add_edge(hub, other, generator.choice(TIE_LABELS))
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                if not skeleton.has_edge(u, v) and generator.random() < intra_probability:
                    skeleton.add_edge(u, v, generator.choice(TIE_LABELS))
        if community > 0:
            # guarantee global connectivity through hub-to-hub bridges
            skeleton.add_edge(members[community - 1][0], hub, "follows")
    all_vertices = [v for group in members for v in group]
    for i, u in enumerate(all_vertices):
        for v in all_vertices[i + 1 :]:
            if not skeleton.has_edge(u, v) and generator.random() < inter_probability:
                skeleton.add_edge(u, v, generator.choice(TIE_LABELS))

    probabilities = {}
    for key in skeleton.edge_keys():
        jitter = generator.uniform(-0.25, 0.25)
        probabilities[key] = min(0.95, max(0.05, mean_trust + jitter))
    return ProbabilisticGraph.from_edge_probabilities(
        skeleton, probabilities, correlation=correlation, name=name
    )
