"""Synthetic protein-protein-interaction dataset (STRING substitute).

The paper evaluates on 5K probabilistic graphs extracted from the STRING
database: PPI networks with COG functional annotations as vertex labels and
statistically predicted interaction probabilities as edge probabilities
(average 0.383).  That data cannot be downloaded here, so this module builds
a synthetic equivalent that exercises the same code paths:

* **Organism families.**  The database is a mixture of families; every graph
  of a family shares a family *motif* (a small labeled core) plus random
  family-biased structure.  The family id is the "organism" ground truth that
  Figure 14's precision/recall evaluation needs.
* **Structure.**  Each graph grows by preferential attachment around the
  motif, giving the heavy-tailed degree distribution typical of PPI networks.
* **Probabilities.**  Edge marginals follow a Beta distribution centred on
  the configurable mean (0.383 by default); joint probability tables over
  neighbor edge sets use the paper's max-dominance rule (Section 6) for the
  correlated model, or independent products for the IND baseline.

Sizes are scaled down from the paper's (385 vertices / 612 edges per graph)
so the whole evaluation fits a laptop; EXPERIMENTS.md records the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.utils.rng import RandomLike, ensure_rng

COG_LABELS = [f"COG{index:02d}" for index in range(20)]
INTERACTION_LABELS = ["binding", "activation", "inhibition"]


@dataclass(frozen=True)
class PPIDatasetConfig:
    """Parameters of the synthetic PPI database."""

    num_graphs: int = 40
    num_families: int = 4
    vertices_per_graph: int = 30
    edges_per_graph: int = 45
    motif_vertices: int = 5
    motif_edges: int = 6
    num_vertex_labels: int = 12
    mean_edge_probability: float = 0.383
    probability_spread: float = 0.25
    correlation: str = "max"
    max_factor_size: int = 4


@dataclass
class PPIDatabase:
    """The generated database plus its ground truth."""

    graphs: list[ProbabilisticGraph] = field(default_factory=list)
    organisms: list[int] = field(default_factory=list)
    family_motifs: list[LabeledGraph] = field(default_factory=list)
    config: PPIDatasetConfig = field(default_factory=PPIDatasetConfig)

    def __len__(self) -> int:
        return len(self.graphs)

    def organism_of(self, graph_id: int) -> int:
        return self.organisms[graph_id]

    def graphs_of_organism(self, organism: int) -> list[int]:
        return [i for i, value in enumerate(self.organisms) if value == organism]


def generate_ppi_database(
    config: PPIDatasetConfig | None = None, rng: RandomLike = None
) -> PPIDatabase:
    """Generate the full synthetic database."""
    cfg = config or PPIDatasetConfig()
    generator = ensure_rng(rng)
    labels = COG_LABELS[: cfg.num_vertex_labels]
    motifs = [
        _family_motif(family, cfg, labels, generator) for family in range(cfg.num_families)
    ]
    database = PPIDatabase(config=cfg, family_motifs=motifs)
    for graph_id in range(cfg.num_graphs):
        family = graph_id % cfg.num_families
        skeleton = _grow_ppi_skeleton(
            motifs[family], cfg, labels, generator, name=f"ppi-{graph_id:04d}"
        )
        probabilistic = _attach_probabilities(skeleton, cfg, generator)
        database.graphs.append(probabilistic)
        database.organisms.append(family)
    return database


# ----------------------------------------------------------------------
# skeleton construction
# ----------------------------------------------------------------------
def _family_motif(
    family: int, cfg: PPIDatasetConfig, labels: list[str], generator
) -> LabeledGraph:
    """A small connected labeled core shared by every graph of the family."""
    motif = LabeledGraph(name=f"motif-{family}")
    for vertex in range(cfg.motif_vertices):
        # bias the label choice per family so motifs are distinguishable
        label = labels[(family * 3 + vertex) % len(labels)]
        motif.add_vertex(vertex, label)
    # spanning path keeps the motif connected
    for vertex in range(1, cfg.motif_vertices):
        motif.add_edge(
            vertex - 1, vertex, INTERACTION_LABELS[(family + vertex) % len(INTERACTION_LABELS)]
        )
    extra_needed = max(0, cfg.motif_edges - (cfg.motif_vertices - 1))
    attempts = 0
    while extra_needed > 0 and attempts < 50:
        attempts += 1
        u = generator.randrange(cfg.motif_vertices)
        v = generator.randrange(cfg.motif_vertices)
        if u == v or motif.has_edge(u, v):
            continue
        motif.add_edge(u, v, generator.choice(INTERACTION_LABELS))
        extra_needed -= 1
    return motif


def _grow_ppi_skeleton(
    motif: LabeledGraph,
    cfg: PPIDatasetConfig,
    labels: list[str],
    generator,
    name: str,
) -> LabeledGraph:
    """Grow a PPI-like skeleton around the family motif by preferential attachment."""
    skeleton = LabeledGraph(name=name)
    for vertex in motif.vertices():
        skeleton.add_vertex(vertex, motif.vertex_label(vertex))
    for edge in motif.edges():
        skeleton.add_edge(edge.u, edge.v, edge.label)

    next_vertex = max(skeleton.vertices()) + 1
    degree_weighted: list = list(skeleton.vertices())
    while skeleton.num_vertices < cfg.vertices_per_graph:
        new_vertex = next_vertex
        next_vertex += 1
        skeleton.add_vertex(new_vertex, generator.choice(labels))
        anchor = generator.choice(degree_weighted)
        skeleton.add_edge(new_vertex, anchor, generator.choice(INTERACTION_LABELS))
        degree_weighted.extend([new_vertex, anchor])

    attempts = 0
    while skeleton.num_edges < cfg.edges_per_graph and attempts < cfg.edges_per_graph * 20:
        attempts += 1
        u = generator.choice(degree_weighted)
        v = generator.choice(degree_weighted)
        if u == v or skeleton.has_edge(u, v):
            continue
        skeleton.add_edge(u, v, generator.choice(INTERACTION_LABELS))
        degree_weighted.extend([u, v])
    return skeleton


def _attach_probabilities(
    skeleton: LabeledGraph, cfg: PPIDatasetConfig, generator
) -> ProbabilisticGraph:
    """Beta-like edge marginals centred on the configured mean."""
    probabilities = {}
    for key in skeleton.edge_keys():
        value = generator.betavariate(2.0, 2.0)  # hump-shaped on (0, 1)
        centered = cfg.mean_edge_probability + (value - 0.5) * 2.0 * cfg.probability_spread
        probabilities[key] = min(0.95, max(0.05, centered))
    return ProbabilisticGraph.from_edge_probabilities(
        skeleton,
        probabilities,
        correlation=cfg.correlation,
        max_factor_size=cfg.max_factor_size,
        name=skeleton.name,
    )
