"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch one base class.  More specific subclasses communicate which
subsystem rejected the input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """Raised when an argument or configuration value is invalid.

    Also a :class:`ValueError`: callers (and long-standing tests) that catch
    ``ValueError`` for bad-argument conditions keep working, while
    ``except ReproError`` now covers these sites too.  This is the type the
    EXC001 contract-lint rule points bare ``raise ValueError`` sites at.
    """


class StateError(ReproError, RuntimeError):
    """Raised when an API is used in the wrong lifecycle state (a timer
    stopped before it was started, a handle used after close).  Also a
    :class:`RuntimeError` for compatibility with callers catching that."""


class AnalysisError(ReproError):
    """Raised by the contract linter (:mod:`repro.analysis`) for unreadable
    sources, malformed baselines, or invalid scan paths — never for rule
    findings, which are data, not errors."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples include adding an edge whose endpoints are unknown, querying a
    missing vertex, or constructing a graph from inconsistent data.
    """


class VertexNotFoundError(GraphError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class ProbabilityError(ReproError):
    """Raised for invalid probability values or inconsistent distributions."""


class FactorError(ProbabilityError):
    """Raised for invalid joint probability table / factor operations."""


class IndexError_(ReproError):
    """Raised when the PMI or structural index is used before it is built,
    or built with inconsistent parameters."""


class QueryError(ReproError):
    """Raised for invalid queries (disconnected query graphs, thresholds out
    of range, distance larger than the query size, ...)."""


class CatalogError(ReproError):
    """Raised for invalid mutable-catalog operations: adding a live external
    id twice, removing or updating an id that is not live, or constructing a
    catalog from an index with no recorded build root."""


class WalError(CatalogError):
    """Raised when a write-ahead log is unreadable beyond crash semantics: a
    corrupt record *before* the final one, a sequence-number gap, or a header
    that does not match the generation being opened.  (A torn final record is
    expected crash damage, silently truncated on open — never this error.)"""


class ShmError(ReproError):
    """Raised for shared-memory shard-plane failures: attaching a segment
    that no longer exists, reading an arena field the descriptor does not
    record, or packing inconsistent array metadata."""


class ServiceError(ReproError):
    """Raised by the query service for request-level failures.

    Every instance carries a stable machine-readable ``code`` — one of
    ``"bad_request"``, ``"overloaded"``, ``"deadline_exceeded"``,
    ``"shutting_down"``, or ``"internal"`` — which is exactly the string a
    remote client receives in the error frame, so in-process and TCP callers
    can branch on the same values.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class VerificationError(ReproError):
    """Raised when verification cannot be carried out (for example exact
    verification requested on a graph that is too large to enumerate)."""
