"""Graph substrate: labeled deterministic graphs, probabilistic graphs with
correlated edges, possible-world semantics, generators and serialization."""

from repro.graphs.labeled_graph import Edge, LabeledGraph
from repro.graphs.neighbor_edges import neighbor_edge_sets, partition_into_neighbor_sets
from repro.graphs.probabilistic_graph import NeighborEdgeFactor, ProbabilisticGraph
from repro.graphs.possible_worlds import PossibleWorld, enumerate_possible_worlds
from repro.graphs.canonical import canonical_form
from repro.graphs.generators import (
    random_labeled_graph,
    random_connected_labeled_graph,
    attach_independent_probabilities,
)
from repro.graphs import io

__all__ = [
    "Edge",
    "LabeledGraph",
    "NeighborEdgeFactor",
    "ProbabilisticGraph",
    "PossibleWorld",
    "enumerate_possible_worlds",
    "canonical_form",
    "neighbor_edge_sets",
    "partition_into_neighbor_sets",
    "random_labeled_graph",
    "random_connected_labeled_graph",
    "attach_independent_probabilities",
    "io",
]
