"""Canonical forms for small labeled graphs.

Feature mining and query relaxation need to deduplicate graphs that are
isomorphic to each other.  For the small graphs involved (features of at most
a handful of vertices, relaxed queries) an exact canonical form based on
iterative label refinement plus a bounded permutation search is affordable
and simple to reason about.

The canonical form is a string; two labeled graphs receive the same string
if and only if they are isomorphic (respecting vertex and edge labels), up to
the permutation cap.  When a graph exceeds ``max_exact_vertices`` the fallback
is a refinement-only certificate, which is still a valid *hash* (isomorphic
graphs always agree) but may rarely collide for non-isomorphic graphs; the
mining code treats it purely as a bucketing key and re-checks with VF2 when
exactness matters.
"""

from __future__ import annotations

from itertools import permutations

from repro.graphs.labeled_graph import LabeledGraph
from repro.exceptions import ConfigurationError

MAX_EXACT_VERTICES = 8


def _refined_colors(graph: LabeledGraph, rounds: int = 3) -> dict:
    """Weisfeiler-Lehman style color refinement with label seeds."""
    colors = {v: repr(graph.vertex_label(v)) for v in graph.vertices()}
    for _ in range(rounds):
        new_colors = {}
        for v in graph.vertices():
            neighbor_sig = sorted(
                (colors[n], repr(graph.edge_label(v, n))) for n in graph.neighbors(v)
            )
            new_colors[v] = repr((colors[v], neighbor_sig))
        colors = new_colors
    return colors


def refinement_certificate(graph: LabeledGraph) -> str:
    """A permutation-invariant certificate based on color refinement only."""
    colors = _refined_colors(graph)
    vertex_part = sorted(colors.values())
    edge_part = sorted(
        repr((tuple(sorted((colors[u], colors[v]))), repr(graph.edge_label(u, v))))
        for u, v in graph.edge_keys()
    )
    return repr((vertex_part, edge_part))


def _ordering_string(graph: LabeledGraph, order: list) -> str:
    """Serialize the graph under a fixed vertex ordering."""
    index = {v: i for i, v in enumerate(order)}
    vertex_part = [repr(graph.vertex_label(v)) for v in order]
    edge_part = sorted(
        (min(index[u], index[v]), max(index[u], index[v]), repr(graph.edge_label(u, v)))
        for u, v in graph.edge_keys()
    )
    return repr((vertex_part, edge_part))


def canonical_form(graph: LabeledGraph, max_exact_vertices: int = MAX_EXACT_VERTICES) -> str:
    """Return a canonical string for ``graph``.

    Exact (isomorphism-complete) for graphs with at most
    ``max_exact_vertices`` vertices; otherwise falls back to the refinement
    certificate prefixed so the two regimes can never collide.
    """
    n = graph.num_vertices
    if n == 0:
        return "empty"
    if n > max_exact_vertices:
        return "wl:" + refinement_certificate(graph)

    colors = _refined_colors(graph)
    vertices = sorted(graph.vertices(), key=lambda v: (colors[v], repr(v)))
    # Group vertices by refined color; only permute within color classes to
    # keep the search small, then take the lexicographically smallest string.
    best: str | None = None
    for order in permutations(vertices):
        # prune: orderings must be sorted by color class to be candidates
        order_colors = [colors[v] for v in order]
        if order_colors != sorted(order_colors):
            continue
        candidate = _ordering_string(graph, list(order))
        if best is None or candidate < best:
            best = candidate
    assert best is not None
    return "exact:" + best


def are_isomorphic_small(g1: LabeledGraph, g2: LabeledGraph) -> bool:
    """Exact isomorphism test for small graphs via canonical forms.

    Both graphs must fit the exact canonical-form regime; larger graphs should
    use :mod:`repro.isomorphism.vf2` directly.
    """
    if g1.num_vertices != g2.num_vertices or g1.num_edges != g2.num_edges:
        return False
    if g1.num_vertices > MAX_EXACT_VERTICES or g2.num_vertices > MAX_EXACT_VERTICES:
        raise ConfigurationError("are_isomorphic_small only supports small graphs; use VF2 instead")
    return canonical_form(g1) == canonical_form(g2)
