"""Random graph generators for tests, examples and synthetic datasets.

These are generic building blocks; the domain-specific generators (synthetic
PPI / road / social networks) in :mod:`repro.datasets` compose them with
realistic label alphabets and probability models.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.utils.rng import RandomLike, ensure_rng
from repro.exceptions import ConfigurationError

DEFAULT_VERTEX_LABELS: tuple[str, ...] = ("A", "B", "C", "D", "E")
DEFAULT_EDGE_LABELS: tuple[str, ...] = ("x", "y")


def random_labeled_graph(
    num_vertices: int,
    num_edges: int,
    vertex_labels: Sequence = DEFAULT_VERTEX_LABELS,
    edge_labels: Sequence = DEFAULT_EDGE_LABELS,
    rng: RandomLike = None,
    name: str | None = None,
) -> LabeledGraph:
    """A uniformly random simple labeled graph.

    Edges are sampled without replacement from all vertex pairs; if
    ``num_edges`` exceeds the number of available pairs it is clamped.
    """
    generator = ensure_rng(rng)
    graph = LabeledGraph(name=name)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, generator.choice(list(vertex_labels)))
    all_pairs = [(u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)]
    generator.shuffle(all_pairs)
    for u, v in all_pairs[: min(num_edges, len(all_pairs))]:
        graph.add_edge(u, v, generator.choice(list(edge_labels)))
    return graph


def random_connected_labeled_graph(
    num_vertices: int,
    num_edges: int,
    vertex_labels: Sequence = DEFAULT_VERTEX_LABELS,
    edge_labels: Sequence = DEFAULT_EDGE_LABELS,
    rng: RandomLike = None,
    name: str | None = None,
) -> LabeledGraph:
    """A random connected simple labeled graph.

    A random spanning tree guarantees connectivity; extra edges are then
    sampled uniformly among the remaining pairs.  ``num_edges`` is clamped to
    ``[num_vertices - 1, num_vertices * (num_vertices - 1) / 2]``.
    """
    if num_vertices < 1:
        raise ConfigurationError("num_vertices must be >= 1")
    generator = ensure_rng(rng)
    graph = LabeledGraph(name=name)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, generator.choice(list(vertex_labels)))
    # random spanning tree: connect each new vertex to a random earlier one
    order = list(range(num_vertices))
    generator.shuffle(order)
    edges_added: set[tuple[int, int]] = set()
    for index in range(1, num_vertices):
        u = order[index]
        v = order[generator.randrange(index)]
        graph.add_edge(u, v, generator.choice(list(edge_labels)))
        edges_added.add((min(u, v), max(u, v)))
    target_edges = max(num_edges, num_vertices - 1)
    remaining = [
        (u, v)
        for u in range(num_vertices)
        for v in range(u + 1, num_vertices)
        if (u, v) not in edges_added
    ]
    generator.shuffle(remaining)
    for u, v in remaining[: max(0, target_edges - len(edges_added))]:
        graph.add_edge(u, v, generator.choice(list(edge_labels)))
    return graph


def attach_independent_probabilities(
    skeleton: LabeledGraph,
    mean_probability: float = 0.383,
    spread: float = 0.2,
    correlation: str = "max",
    max_factor_size: int = 4,
    rng: RandomLike = None,
    name: str | None = None,
) -> ProbabilisticGraph:
    """Attach random edge probabilities to a skeleton and build JPT factors.

    Edge marginals are drawn uniformly from
    ``[mean_probability - spread, mean_probability + spread]`` clipped to
    ``[0.05, 0.95]`` (the default mean matches the STRING dataset's 0.383
    average reported in the paper).  ``correlation`` selects the JPT
    construction: ``"max"`` for the paper's correlated model or
    ``"independent"`` for the IND baseline.
    """
    generator = ensure_rng(rng)
    probabilities = {}
    for key in skeleton.edge_keys():
        low = max(0.05, mean_probability - spread)
        high = min(0.95, mean_probability + spread)
        probabilities[key] = generator.uniform(low, high)
    return ProbabilisticGraph.from_edge_probabilities(
        skeleton,
        probabilities,
        correlation=correlation,
        max_factor_size=max_factor_size,
        name=name if name is not None else skeleton.name,
    )
