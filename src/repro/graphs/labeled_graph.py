"""Undirected labeled graphs (Definition 1 of the paper).

A :class:`LabeledGraph` has hashable vertex identifiers, a label per vertex, a
label per edge, and no parallel edges or self loops.  It is the deterministic
substrate used for query graphs, features, possible worlds, and the certain
skeleton ``gc`` of probabilistic graphs.

The implementation is a plain adjacency-dictionary structure.  It favours
clarity and predictable asymptotics over raw speed: vertex and edge lookups
are O(1), neighbourhood iteration is O(degree).
"""

from __future__ import annotations

from collections import Counter, deque
from collections.abc import Hashable, Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError

VertexId = Hashable
Label = Hashable


def edge_key(u: VertexId, v: VertexId) -> tuple[VertexId, VertexId]:
    """Return the canonical (sorted) key for an undirected edge.

    Vertices are ordered by ``repr`` so that heterogeneous vertex identifier
    types still produce a deterministic order.
    """
    if u == v:
        raise GraphError(f"self loops are not supported: ({u!r}, {v!r})")
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass(frozen=True)
class Edge:
    """An undirected labeled edge between vertices ``u`` and ``v``."""

    u: VertexId
    v: VertexId
    label: Label = None

    def key(self) -> tuple[VertexId, VertexId]:
        """The canonical undirected key of this edge."""
        return edge_key(self.u, self.v)

    def endpoints(self) -> frozenset:
        """The endpoints as a frozenset (order independent)."""
        return frozenset((self.u, self.v))

    def other(self, vertex: VertexId) -> VertexId:
        """The endpoint that is not ``vertex``."""
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise VertexNotFoundError(vertex)


class LabeledGraph:
    """A simple undirected graph with labels on vertices and edges.

    Parameters
    ----------
    name:
        Optional identifier, used by the database layer and serialization.

    Examples
    --------
    >>> g = LabeledGraph(name="toy")
    >>> g.add_vertex(1, "a")
    >>> g.add_vertex(2, "b")
    >>> g.add_edge(1, 2, "x")
    >>> g.num_vertices, g.num_edges
    (2, 1)
    >>> g.vertex_label(1)
    'a'
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name
        self._vertex_labels: dict[VertexId, Label] = {}
        self._adjacency: dict[VertexId, dict[VertexId, Label]] = {}
        self._edge_labels: dict[tuple[VertexId, VertexId], Label] = {}
        # bumped by every mutation; derived structures (compiled edge tables,
        # join plans) cache against it and rebuild lazily when it moves
        self._version = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        vertex_labels: Mapping[VertexId, Label],
        edges: Iterable[tuple[VertexId, VertexId, Label]] | Iterable[tuple[VertexId, VertexId]],
        name: str | None = None,
    ) -> "LabeledGraph":
        """Build a graph from a vertex-label mapping and an edge list.

        Each edge may be a ``(u, v)`` pair (label ``None``) or a
        ``(u, v, label)`` triple.
        """
        graph = cls(name=name)
        for vertex, label in vertex_labels.items():
            graph.add_vertex(vertex, label)
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                label = None
            else:
                u, v, label = edge  # type: ignore[misc]
            graph.add_edge(u, v, label)
        return graph

    def copy(self, name: str | None = None) -> "LabeledGraph":
        """Return a deep-enough copy (labels are shared, containers are not)."""
        clone = LabeledGraph(name=self.name if name is None else name)
        clone._vertex_labels = dict(self._vertex_labels)
        clone._adjacency = {v: dict(nbrs) for v, nbrs in self._adjacency.items()}
        clone._edge_labels = dict(self._edge_labels)
        return clone

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: VertexId, label: Label = None) -> None:
        """Add ``vertex`` with ``label``; re-adding overwrites the label."""
        if vertex not in self._vertex_labels:
            self._adjacency[vertex] = {}
        self._vertex_labels[vertex] = label
        self._version += 1

    def add_edge(self, u: VertexId, v: VertexId, label: Label = None) -> None:
        """Add the undirected edge (u, v) with ``label``.

        Both endpoints must already exist.  Adding an existing edge
        overwrites its label.
        """
        if u not in self._vertex_labels:
            raise VertexNotFoundError(u)
        if v not in self._vertex_labels:
            raise VertexNotFoundError(v)
        key = edge_key(u, v)
        self._adjacency[u][v] = label
        self._adjacency[v][u] = label
        self._edge_labels[key] = label
        self._version += 1

    def remove_edge(self, u: VertexId, v: VertexId) -> None:
        """Remove the undirected edge (u, v)."""
        key = edge_key(u, v)
        if key not in self._edge_labels:
            raise EdgeNotFoundError(u, v)
        del self._edge_labels[key]
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._version += 1

    def remove_vertex(self, vertex: VertexId) -> None:
        """Remove ``vertex`` and every incident edge."""
        if vertex not in self._vertex_labels:
            raise VertexNotFoundError(vertex)
        for neighbor in list(self._adjacency[vertex]):
            self.remove_edge(vertex, neighbor)
        del self._adjacency[vertex]
        del self._vertex_labels[vertex]
        self._version += 1

    def remove_isolated_vertices(self) -> list[VertexId]:
        """Remove all vertices with degree zero; return the removed ids."""
        isolated = [v for v in self._vertex_labels if not self._adjacency[v]]
        for vertex in isolated:
            del self._adjacency[vertex]
            del self._vertex_labels[vertex]
        if isolated:
            self._version += 1
        return isolated

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def mutation_version(self) -> int:
        """Monotonic counter of structural mutations (cache-invalidation key)."""
        return self._version

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_labels)

    @property
    def num_edges(self) -> int:
        return len(self._edge_labels)

    def vertices(self) -> Iterator[VertexId]:
        """Iterate over vertex identifiers."""
        return iter(self._vertex_labels)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as :class:`Edge` objects."""
        for (u, v), label in self._edge_labels.items():
            yield Edge(u, v, label)

    def edge_keys(self) -> Iterator[tuple[VertexId, VertexId]]:
        """Iterate over canonical edge keys."""
        return iter(self._edge_labels)

    def has_vertex(self, vertex: VertexId) -> bool:
        return vertex in self._vertex_labels

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        try:
            return edge_key(u, v) in self._edge_labels
        except GraphError:
            return False

    def vertex_label(self, vertex: VertexId) -> Label:
        try:
            return self._vertex_labels[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def edge_label(self, u: VertexId, v: VertexId) -> Label:
        key = edge_key(u, v)
        try:
            return self._edge_labels[key]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def neighbors(self, vertex: VertexId) -> Iterator[VertexId]:
        try:
            return iter(self._adjacency[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: VertexId) -> int:
        try:
            return len(self._adjacency[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def incident_edges(self, vertex: VertexId) -> list[Edge]:
        """All edges incident to ``vertex``."""
        if vertex not in self._adjacency:
            raise VertexNotFoundError(vertex)
        return [Edge(vertex, nbr, label) for nbr, label in self._adjacency[vertex].items()]

    def vertex_label_counts(self) -> Counter:
        """Multiset of vertex labels (used by quick filters)."""
        return Counter(self._vertex_labels.values())

    def edge_label_counts(self) -> Counter:
        """Multiset of edge labels (used by quick filters)."""
        return Counter(self._edge_labels.values())

    def edge_signature_counts(self) -> Counter:
        """Multiset of (sorted endpoint labels, edge label) signatures.

        This is a stronger quick filter than raw label counts: a query edge
        signature missing from the target cannot possibly be matched.
        """
        signatures: Counter = Counter()
        for (u, v), label in self._edge_labels.items():
            lu, lv = self._vertex_labels[u], self._vertex_labels[v]
            pair = tuple(sorted((repr(lu), repr(lv))))
            signatures[(pair, label)] += 1
        return signatures

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True for the empty graph and for connected graphs."""
        if self.num_vertices == 0:
            return True
        start = next(iter(self._vertex_labels))
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return len(seen) == self.num_vertices

    def connected_components(self) -> list[set]:
        """Vertex sets of the connected components.

        Components are returned in vertex-insertion order (each anchored at
        its first-inserted vertex), never in set-iteration order: with str
        vertex ids the latter varies with ``PYTHONHASHSEED``, so two worker
        processes could disagree on component order.
        """
        remaining = set(self._vertex_labels)
        components: list[set] = []
        for start in self._vertex_labels:  # dicts iterate in insertion order
            if start not in remaining:
                continue
            seen = {start}
            queue = deque([start])
            while queue:
                current = queue.popleft()
                for neighbor in self._adjacency[current]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        queue.append(neighbor)
            components.append(seen)
            remaining -= seen
        return components

    def triangles(self) -> list[tuple[VertexId, VertexId, VertexId]]:
        """Enumerate all triangles as sorted vertex triples."""
        found: set[tuple] = set()
        for u in self._adjacency:
            nbrs_u = self._adjacency[u]
            for v in nbrs_u:
                for w in self._adjacency[v]:
                    if w != u and w in nbrs_u:
                        triple = tuple(sorted((u, v, w), key=repr))
                        found.add(triple)
        return sorted(found, key=repr)

    def subgraph_by_edges(
        self, edge_keys: Iterable[tuple[VertexId, VertexId]], name: str | None = None
    ) -> "LabeledGraph":
        """Return the subgraph induced by the given edges.

        Vertices are exactly the endpoints of the chosen edges; labels are
        inherited.
        """
        sub = LabeledGraph(name=name)
        for u, v in edge_keys:
            key = edge_key(u, v)
            if key not in self._edge_labels:
                raise EdgeNotFoundError(u, v)
            for vertex in key:
                if not sub.has_vertex(vertex):
                    sub.add_vertex(vertex, self._vertex_labels[vertex])
            sub.add_edge(key[0], key[1], self._edge_labels[key])
        return sub

    def subgraph_by_vertices(
        self, vertex_ids: Iterable[VertexId], name: str | None = None
    ) -> "LabeledGraph":
        """Return the vertex-induced subgraph on ``vertex_ids``."""
        keep = set(vertex_ids)
        sub = LabeledGraph(name=name)
        for vertex in keep:
            sub.add_vertex(vertex, self.vertex_label(vertex))
        for (u, v), label in self._edge_labels.items():
            if u in keep and v in keep:
                sub.add_edge(u, v, label)
        return sub

    def relabel_vertices(self, mapping: Mapping[VertexId, VertexId]) -> "LabeledGraph":
        """Return a copy with vertex identifiers renamed through ``mapping``.

        Identifiers not present in ``mapping`` are kept.  The mapping must be
        injective on the graph's vertices.
        """
        new_ids = [mapping.get(v, v) for v in self._vertex_labels]
        if len(set(new_ids)) != len(new_ids):
            raise GraphError("vertex relabeling mapping is not injective")
        renamed = LabeledGraph(name=self.name)
        for vertex, label in self._vertex_labels.items():
            renamed.add_vertex(mapping.get(vertex, vertex), label)
        for (u, v), label in self._edge_labels.items():
            renamed.add_edge(mapping.get(u, u), mapping.get(v, v), label)
        return renamed

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._vertex_labels

    def __len__(self) -> int:
        return self.num_vertices

    def __eq__(self, other: object) -> bool:
        """Structural equality on identical vertex ids, labels and edges."""
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return (
            self._vertex_labels == other._vertex_labels
            and self._edge_labels == other._edge_labels
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("LabeledGraph is mutable and therefore unhashable")

    def __repr__(self) -> str:
        label = self.name if self.name is not None else "unnamed"
        return f"LabeledGraph({label!r}, |V|={self.num_vertices}, |E|={self.num_edges})"
