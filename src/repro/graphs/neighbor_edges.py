"""Neighbor-edge-set detection (Definition 1 of the paper).

A *neighbor edge set* (``ne``) is a set of edges that are either all incident
to the same vertex or form a triangle.  Probabilistic graphs attach one joint
probability table per neighbor edge set; the paper's Figure 1 shows two such
tables for graph 002 (a triangle set and a star set).

Two entry points are provided:

* :func:`neighbor_edge_sets` enumerates the "natural" neighbor edge sets of a
  deterministic graph (one per vertex of degree >= 2, one per triangle).
* :func:`partition_into_neighbor_sets` produces a *partition* of the edge set
  into neighbor edge sets of bounded size.  The synthetic dataset generators
  use the partition form so that the possible-world product measure is an
  exact probability distribution (see DESIGN.md §4).
"""

from __future__ import annotations

from repro.graphs.labeled_graph import LabeledGraph, VertexId, edge_key
from repro.exceptions import ConfigurationError

EdgeKey = tuple[VertexId, VertexId]


def star_edge_sets(graph: LabeledGraph, min_size: int = 2) -> list[frozenset]:
    """Neighbor edge sets formed by edges sharing a vertex.

    Returns one frozenset of edge keys per vertex whose degree is at least
    ``min_size``.
    """
    sets: list[frozenset] = []
    for vertex in graph.vertices():
        incident = [edge.key() for edge in graph.incident_edges(vertex)]
        if len(incident) >= min_size:
            sets.append(frozenset(incident))
    return sets


def triangle_edge_sets(graph: LabeledGraph) -> list[frozenset]:
    """Neighbor edge sets formed by the three edges of each triangle."""
    sets: list[frozenset] = []
    for u, v, w in graph.triangles():
        sets.append(frozenset({edge_key(u, v), edge_key(v, w), edge_key(u, w)}))
    return sets


def neighbor_edge_sets(graph: LabeledGraph, min_star_size: int = 2) -> list[frozenset]:
    """All neighbor edge sets of ``graph`` (stars plus triangles), deduplicated.

    The result is sorted deterministically (by size then repr) so callers can
    rely on a stable ordering.
    """
    found = set(star_edge_sets(graph, min_size=min_star_size))
    found.update(triangle_edge_sets(graph))
    return sorted(found, key=lambda s: (len(s), repr(sorted(s, key=repr))))


def is_neighbor_edge_set(graph: LabeledGraph, edges: frozenset | set) -> bool:
    """Check whether ``edges`` qualifies as a neighbor edge set of ``graph``.

    Either all edges share a common vertex, or the edges are exactly the
    three edges of a triangle.  Singleton sets qualify trivially (an isolated
    uncertain edge), which is how the generators model low-degree regions.
    """
    keys = [edge_key(u, v) for u, v in edges]
    if not keys:
        return False
    for u, v in keys:
        if not graph.has_edge(u, v):
            return False
    if len(keys) == 1:
        return True
    common = set(keys[0])
    for key in keys[1:]:
        common &= set(key)
    if common:
        return True
    vertices = set()
    for key in keys:
        vertices.update(key)
    return len(keys) == 3 and len(vertices) == 3


def partition_into_neighbor_sets(
    graph: LabeledGraph, max_size: int = 4
) -> list[frozenset]:
    """Partition the edge set of ``graph`` into neighbor edge sets.

    The partition is built greedily: vertices are visited in decreasing
    degree order and each vertex claims up to ``max_size`` of its not yet
    assigned incident edges as one star-shaped neighbor edge set.  Remaining
    single edges become singleton sets.  Every edge ends up in exactly one
    set, so the product of the per-set joint probability tables is a proper
    distribution over possible worlds.

    Parameters
    ----------
    graph:
        The deterministic skeleton.
    max_size:
        Maximum number of edges per neighbor edge set.  Bounding the size
        keeps joint probability tables small (``2**max_size`` rows).
    """
    if max_size < 1:
        raise ConfigurationError("max_size must be >= 1")
    assigned: set[EdgeKey] = set()
    partition: list[frozenset] = []
    ordered_vertices = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), repr(v)))
    for vertex in ordered_vertices:
        unclaimed = [
            edge.key() for edge in graph.incident_edges(vertex) if edge.key() not in assigned
        ]
        unclaimed.sort(key=repr)
        while len(unclaimed) >= 2:
            chunk = unclaimed[:max_size]
            unclaimed = unclaimed[max_size:]
            partition.append(frozenset(chunk))
            assigned.update(chunk)
        # a single leftover edge stays unassigned here; it may join another
        # vertex's star later or become a singleton below
    for key in graph.edge_keys():
        if key not in assigned:
            partition.append(frozenset({key}))
            assigned.add(key)
    return partition


def covers_all_edges(graph: LabeledGraph, sets: list[frozenset]) -> bool:
    """True when every edge of ``graph`` appears in at least one set."""
    covered: set[EdgeKey] = set()
    for edge_set in sets:
        covered.update(edge_set)
    return covered == set(graph.edge_keys())
