"""Possible-world semantics (Definition 3 and Equation 1).

Exact enumeration of every possible world of a probabilistic graph, with its
probability.  Enumeration is exponential in the number of uncertain edges
(that is the whole point of the paper), so it is guarded by a hard limit and
intended for small graphs, ground-truth computation in tests, and the exact
baselines of the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product

from repro.exceptions import VerificationError
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import EdgeKey, ProbabilisticGraph

DEFAULT_MAX_EDGES = 22


@dataclass(frozen=True)
class PossibleWorld:
    """One possible world: its edge assignment, graph and probability."""

    assignment: tuple[tuple[EdgeKey, int], ...]
    graph: LabeledGraph
    probability: float

    def assignment_dict(self) -> dict[EdgeKey, int]:
        return dict(self.assignment)

    def present_edges(self) -> frozenset:
        return frozenset(key for key, value in self.assignment if value == 1)


def enumerate_possible_worlds(
    graph: ProbabilisticGraph,
    normalize: bool = True,
    max_edges: int = DEFAULT_MAX_EDGES,
    skip_zero: bool = True,
) -> list[PossibleWorld]:
    """Enumerate all possible worlds of ``graph`` with their probabilities.

    Parameters
    ----------
    graph:
        The probabilistic graph.
    normalize:
        When True (default) the returned probabilities are rescaled to sum to
        exactly 1.  This only matters when factors overlap on shared edges;
        for partitioned graphs the raw product weights already sum to 1.
    max_edges:
        Safety limit: enumeration of more than ``max_edges`` uncertain edges
        raises :class:`VerificationError` instead of silently exploding.
    skip_zero:
        Drop worlds with probability zero from the result.

    Returns
    -------
    list[PossibleWorld]
        Worlds sorted by decreasing probability (ties broken by assignment).
    """
    edge_vars = graph.edge_variables()
    if len(edge_vars) > max_edges:
        raise VerificationError(
            f"refusing to enumerate 2**{len(edge_vars)} possible worlds; "
            f"limit is 2**{max_edges} (raise max_edges explicitly if you really want this)"
        )
    worlds: list[PossibleWorld] = []
    total = 0.0
    for values in iter_product((0, 1), repeat=len(edge_vars)):
        assignment = dict(zip(edge_vars, values))
        weight = graph.world_weight(assignment)
        total += weight
        if skip_zero and weight == 0.0:
            continue
        worlds.append(
            PossibleWorld(
                assignment=tuple(sorted(assignment.items(), key=lambda kv: repr(kv[0]))),
                graph=graph.world_graph(assignment),
                probability=weight,
            )
        )
    if normalize and total > 0 and abs(total - 1.0) > 1e-12:
        worlds = [
            PossibleWorld(w.assignment, w.graph, w.probability / total) for w in worlds
        ]
    worlds.sort(key=lambda w: (-w.probability, repr(w.assignment)))
    return worlds


def total_world_mass(graph: ProbabilisticGraph, max_edges: int = DEFAULT_MAX_EDGES) -> float:
    """Sum of raw (unnormalized) product weights over all possible worlds.

    Equals 1.0 exactly for edge-partitioned probabilistic graphs; used in
    tests to validate the measure and in diagnostics for overlapping-factor
    graphs.
    """
    edge_vars = graph.edge_variables()
    if len(edge_vars) > max_edges:
        raise VerificationError(
            f"refusing to sum over 2**{len(edge_vars)} possible worlds (limit 2**{max_edges})"
        )
    total = 0.0
    for values in iter_product((0, 1), repeat=len(edge_vars)):
        total += graph.world_weight(dict(zip(edge_vars, values)))
    return total
