"""Probabilistic graphs with correlated edge existence (Definition 2).

A :class:`ProbabilisticGraph` couples a deterministic labeled skeleton ``gc``
with a collection of :class:`NeighborEdgeFactor`s.  Each factor covers one
neighbor edge set and carries a joint probability table (JPT) over the binary
existence variables of its edges — exactly the model of Figure 1 in the
paper, where graph 002 carries JPT1 over {e1, e2, e3} and JPT2 over
{e3, e4, e5}.

The probability of a possible world is the product of the factor
probabilities of the world's restriction to each factor (Equation 1).  When
the factors partition the edge set this product is a proper distribution;
when factors overlap (shared edges) the library normalizes in exact
computations and uses chain-rule conditional sampling, as documented in
DESIGN.md §4.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, GraphError, ProbabilityError
from repro.graphs.labeled_graph import LabeledGraph, VertexId, edge_key
from repro.graphs.neighbor_edges import partition_into_neighbor_sets
from repro.probability.jpt import JointProbabilityTable
from repro.utils.rng import RandomLike, ensure_rng

EdgeKey = tuple[VertexId, VertexId]
EdgeAssignment = Mapping[EdgeKey, int]


@dataclass(frozen=True)
class NeighborEdgeFactor:
    """One neighbor edge set together with its joint probability table.

    ``edges`` is the ordered tuple of edge keys; ``jpt`` is a
    :class:`JointProbabilityTable` whose variables are exactly those keys.
    """

    edges: tuple[EdgeKey, ...]
    jpt: JointProbabilityTable

    def __post_init__(self) -> None:
        if tuple(self.jpt.variables) != tuple(self.edges):
            raise ProbabilityError(
                "factor edge ordering and JPT variable ordering must match: "
                f"{self.edges!r} vs {self.jpt.variables!r}"
            )

    def probability_of(self, assignment: EdgeAssignment) -> float:
        """Probability of the assignment restricted to this factor's edges."""
        return self.jpt.value({e: assignment[e] for e in self.edges})


class ProbabilisticGraph:
    """A labeled graph whose edges exist according to correlated JPTs."""

    def __init__(
        self,
        skeleton: LabeledGraph,
        factors: Iterable[NeighborEdgeFactor],
        name: str | None = None,
    ) -> None:
        self.skeleton = skeleton
        self.factors: list[NeighborEdgeFactor] = list(factors)
        self.name = name if name is not None else skeleton.name
        self._validate()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_probabilities(
        cls,
        skeleton: LabeledGraph,
        edge_probabilities: Mapping[EdgeKey, float],
        correlation: str = "independent",
        max_factor_size: int = 4,
        name: str | None = None,
    ) -> "ProbabilisticGraph":
        """Build a probabilistic graph from per-edge marginal probabilities.

        Parameters
        ----------
        skeleton:
            The deterministic labeled graph ``gc``.
        edge_probabilities:
            Marginal existence probability per edge key.  Every edge of the
            skeleton must be present.
        correlation:
            ``"independent"`` builds product JPTs (the IND baseline model);
            ``"max"`` builds the paper's max-dominance correlated JPTs.
        max_factor_size:
            Upper bound on edges per neighbor edge set (table size 2**k).
        """
        normalized = {}
        for key, probability in edge_probabilities.items():
            normalized[edge_key(*key)] = float(probability)
        missing = set(skeleton.edge_keys()) - set(normalized)
        if missing:
            raise ProbabilityError(
                f"missing edge probabilities for {sorted(map(repr, missing))[:5]}"
            )
        groups = partition_into_neighbor_sets(skeleton, max_size=max_factor_size)
        factors = []
        for group in groups:
            ordered = tuple(sorted(group, key=repr))
            marginals = {e: normalized[e] for e in ordered}
            if correlation == "independent":
                jpt = JointProbabilityTable.from_independent_marginals(marginals)
            elif correlation == "max":
                jpt = JointProbabilityTable.from_max_dominance(marginals)
            else:
                raise ConfigurationError(f"unknown correlation model {correlation!r}")
            factors.append(NeighborEdgeFactor(ordered, jpt))
        return cls(skeleton, factors, name=name)

    # ------------------------------------------------------------------
    # validation and basic accessors
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        skeleton_edges = set(self.skeleton.edge_keys())
        covered: set[EdgeKey] = set()
        for factor in self.factors:
            for key in factor.edges:
                if key not in skeleton_edges:
                    raise GraphError(
                        f"factor references edge {key!r} not present in the skeleton"
                    )
            covered.update(factor.edges)
        uncovered = skeleton_edges - covered
        if uncovered:
            raise GraphError(
                "every skeleton edge needs a probability factor; missing: "
                f"{sorted(map(repr, uncovered))[:5]}"
            )

    @property
    def num_vertices(self) -> int:
        return self.skeleton.num_vertices

    @property
    def num_edges(self) -> int:
        return self.skeleton.num_edges

    def edge_variables(self) -> list[EdgeKey]:
        """All uncertain edge variables (the skeleton's edge keys), sorted."""
        return sorted(self.skeleton.edge_keys(), key=repr)

    def factors_containing(self, key: EdgeKey) -> list[NeighborEdgeFactor]:
        """The factors whose neighbor edge set includes ``key``."""
        key = edge_key(*key)
        return [f for f in self.factors if key in f.edges]

    def is_edge_partition(self) -> bool:
        """True when every edge belongs to exactly one factor."""
        seen: set[EdgeKey] = set()
        for factor in self.factors:
            for key in factor.edges:
                if key in seen:
                    return False
                seen.add(key)
        return True

    def edge_marginal(self, key: EdgeKey) -> float:
        """Marginal existence probability of one edge.

        For a partitioned graph this is exact.  For overlapping factors the
        value is computed from the first factor containing the edge, which is
        exact under the paper's conditional-independence assumption.
        """
        factors = self.factors_containing(key)
        if not factors:
            raise GraphError(f"edge {key!r} has no probability factor")
        return factors[0].jpt.edge_marginal(edge_key(*key))

    def average_edge_probability(self) -> float:
        """Mean marginal edge probability (dataset diagnostic)."""
        keys = self.edge_variables()
        if not keys:
            return 0.0
        return sum(self.edge_marginal(k) for k in keys) / len(keys)

    # ------------------------------------------------------------------
    # possible-world measure
    # ------------------------------------------------------------------
    def world_weight(self, assignment: EdgeAssignment) -> float:
        """Unnormalized product weight of a full edge assignment (Equation 1)."""
        weight = 1.0
        for factor in self.factors:
            weight *= factor.probability_of(assignment)
            if weight == 0.0:
                return 0.0
        return weight

    def world_graph(self, assignment: EdgeAssignment, name: str | None = None) -> LabeledGraph:
        """Materialize the possible world graph for ``assignment``.

        Possible worlds keep all vertices (Definition 3) and the subset of
        edges whose variable is 1.
        """
        world = LabeledGraph(name=name)
        for vertex in self.skeleton.vertices():
            world.add_vertex(vertex, self.skeleton.vertex_label(vertex))
        for key in self.skeleton.edge_keys():
            if assignment.get(key, 0) == 1:
                world.add_edge(key[0], key[1], self.skeleton.edge_label(*key))
        return world

    def sample_world_assignment(self, rng: RandomLike = None) -> dict[EdgeKey, int]:
        """Draw one edge assignment.

        Factors are visited in order; each JPT is conditioned on edges already
        assigned by earlier (overlapping) factors and the remaining edges are
        sampled from the conditional.  For partitioned graphs this is exact
        sampling from the product measure; for overlapping factors it is
        exact under the conditional-independence assumption of Definition 4.
        """
        generator = ensure_rng(rng)
        assignment: dict[EdgeKey, int] = {}
        for factor in self.factors:
            already = {e: assignment[e] for e in factor.edges if e in assignment}
            pending = [e for e in factor.edges if e not in assignment]
            if not pending:
                continue
            if already:
                conditional = factor.jpt.conditional(already)
            else:
                conditional = factor.jpt
            draw = conditional.sample(generator)
            for key in pending:
                assignment[key] = draw[key]
        return assignment

    def sample_world(self, rng: RandomLike = None) -> LabeledGraph:
        """Draw one possible world graph."""
        return self.world_graph(self.sample_world_assignment(rng))

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        label = self.name if self.name is not None else "unnamed"
        return (
            f"ProbabilisticGraph({label!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, factors={len(self.factors)})"
        )
