"""Subgraph isomorphism machinery: VF2-style matching, embedding
enumeration, maximum common subgraph and subgraph distance."""

from repro.isomorphism.vf2 import (
    VF2Matcher,
    is_subgraph_isomorphic,
    find_isomorphism_mapping,
)
from repro.isomorphism.embeddings import Embedding, find_embeddings, count_embeddings
from repro.isomorphism.mcs import (
    subgraph_distance,
    is_subgraph_similar,
    maximum_common_subgraph_size,
)

__all__ = [
    "VF2Matcher",
    "is_subgraph_isomorphic",
    "find_isomorphism_mapping",
    "Embedding",
    "find_embeddings",
    "count_embeddings",
    "subgraph_distance",
    "is_subgraph_similar",
    "maximum_common_subgraph_size",
]
