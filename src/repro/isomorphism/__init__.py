"""Subgraph isomorphism machinery: the vectorized generic-join engine, the
VF2-style reference matcher, embedding enumeration, maximum common subgraph
and subgraph distance."""

from repro.isomorphism.vf2 import (
    VF2Matcher,
    connectivity_order,
    is_subgraph_isomorphic,
    find_isomorphism_mapping,
)
from repro.isomorphism.generic_join import (
    GenericJoinMatcher,
    GenericJoinOverflow,
    compile_edge_table,
    compile_join_plan,
    get_default_engine,
    match_block,
    set_default_engine,
    using_engine,
)
from repro.isomorphism.embeddings import (
    Embedding,
    EmbeddingEnumeration,
    enumerate_embeddings,
    find_embeddings,
    find_embeddings_block,
    count_embeddings,
    count_embeddings_block,
)
from repro.isomorphism.mcs import (
    subgraph_distance,
    is_subgraph_similar,
    maximum_common_subgraph_size,
)

__all__ = [
    "VF2Matcher",
    "connectivity_order",
    "is_subgraph_isomorphic",
    "find_isomorphism_mapping",
    "GenericJoinMatcher",
    "GenericJoinOverflow",
    "compile_edge_table",
    "compile_join_plan",
    "get_default_engine",
    "match_block",
    "set_default_engine",
    "using_engine",
    "Embedding",
    "EmbeddingEnumeration",
    "enumerate_embeddings",
    "find_embeddings",
    "find_embeddings_block",
    "count_embeddings",
    "count_embeddings_block",
    "subgraph_distance",
    "is_subgraph_similar",
    "maximum_common_subgraph_size",
]
