"""Embedding enumeration (the ``Ef`` sets of Section 4.1).

An *embedding* of feature ``f`` in graph ``gc`` is the subgraph of ``gc``
that one subgraph-isomorphism mapping covers (Definition 5).  Distinct
mappings that cover the same edge set (automorphisms of the feature) are the
same embedding, so embeddings are deduplicated by their edge-key sets.

Embeddings drive both bound computations of the PMI index: the lower bound
uses disjoint embeddings (Equation 17), the upper bound uses embedding cuts
derived from all embeddings (Equation 20).

Enumeration dispatches on the active matching engine (see
:mod:`repro.isomorphism.generic_join`); the returned list is always in the
canonical order (sorted by repr of the sorted edge-key set), so both engines
produce byte-identical results whenever enumeration is not truncated.
Truncation is *surfaced*: mappings stream through the matcher callback and
are deduplicated incrementally, so the cap applies to distinct embeddings
(not raw mappings — the old ``4 * limit`` mapping cap silently dropped
embeddings of features with many automorphisms), and a ``truncated`` flag
plus a module-level counter record when the cap actually bit.
"""

from __future__ import annotations

import logging
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.graphs.labeled_graph import LabeledGraph, VertexId, edge_key
from repro.isomorphism.vf2 import VF2Matcher

EdgeKey = tuple[VertexId, VertexId]

DEFAULT_EMBEDDING_LIMIT = 200

logger = logging.getLogger(__name__)

# how many enumerate_embeddings calls hit their limit with matches left over;
# read via truncation_count(), reset via reset_truncation_count()
_truncation_count = 0


def truncation_count() -> int:
    """Number of enumerations (since last reset) that were truncated."""
    return _truncation_count


def reset_truncation_count() -> None:
    global _truncation_count
    _truncation_count = 0


@dataclass(frozen=True)
class Embedding:
    """One embedding: the covered target edges and vertices."""

    edges: frozenset  # frozenset[EdgeKey]
    vertices: frozenset

    def overlaps(self, other: "Embedding") -> bool:
        """True when the two embeddings share at least one edge.

        The paper's disjointness notion for Equation 17 is on *common parts
        (edges)*; vertex sharing alone does not make embeddings overlap.
        """
        return bool(self.edges & other.edges)

    def is_edge_disjoint(self, other: "Embedding") -> bool:
        return not self.overlaps(other)

    @property
    def size(self) -> int:
        return len(self.edges)


@dataclass(frozen=True)
class EmbeddingEnumeration:
    """Result of one enumeration: the embeddings plus whether the cap bit."""

    embeddings: list
    truncated: bool


def _canonical_sort(embeddings: list) -> None:
    embeddings.sort(key=lambda e: repr(sorted(e.edges, key=repr)))


def _enumerate_vf2(
    pattern: LabeledGraph,
    target: LabeledGraph,
    limit: int | None,
    label_sensitive: bool,
) -> tuple[list[Embedding], bool]:
    """Stream VF2 mappings, deduplicating into embeddings incrementally."""
    matcher = VF2Matcher(pattern, target, label_sensitive=label_sensitive)
    pattern_edges = list(pattern.edge_keys())
    seen: set[frozenset] = set()
    embeddings: list[Embedding] = []
    truncated = False

    def visit(mapping: dict) -> bool:
        nonlocal truncated
        edge_set = frozenset(
            edge_key(mapping[u], mapping[v]) for u, v in pattern_edges
        )
        if edge_set in seen:
            return True
        if limit is not None and len(embeddings) >= limit:
            # a new distinct embedding exists beyond the cap: we really truncated
            truncated = True
            return False
        seen.add(edge_set)
        embeddings.append(
            Embedding(edges=edge_set, vertices=frozenset(mapping.values()))
        )
        return True

    matcher.for_each_mapping(visit)
    return embeddings, truncated


def enumerate_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    limit: int | None = DEFAULT_EMBEDDING_LIMIT,
    label_sensitive: bool = True,
    method: str | None = None,
) -> EmbeddingEnumeration:
    """All distinct embeddings of ``pattern`` in ``target``, with truncation flag.

    Parameters
    ----------
    limit:
        Cap on the number of distinct *embeddings*; ``None`` removes the cap.
        When the cap bites, each engine truncates in its own deterministic
        discovery order and ``truncated`` is True.
    method:
        ``"generic_join"``, ``"vf2"``, or None for the session default.

    Returns
    -------
    EmbeddingEnumeration
        ``embeddings`` sorted canonically (by repr of the sorted edge set).
    """
    global _truncation_count
    if pattern.num_edges == 0:
        return EmbeddingEnumeration(embeddings=[], truncated=False)
    from repro.isomorphism import generic_join

    if generic_join.resolve_engine(method) == "generic_join":
        try:
            pairs, truncated = generic_join.enumerate_embedding_sets(
                pattern, target, limit, label_sensitive=label_sensitive
            )
            embeddings = [Embedding(edges=e, vertices=v) for e, v in pairs]
        except generic_join.GenericJoinOverflow:
            embeddings, truncated = _enumerate_vf2(pattern, target, limit, label_sensitive)
    else:
        embeddings, truncated = _enumerate_vf2(pattern, target, limit, label_sensitive)
    _canonical_sort(embeddings)
    if truncated:
        _truncation_count += 1
        logger.debug(
            "embedding enumeration truncated at limit=%s for pattern %r in target %r",
            limit,
            pattern,
            target,
        )
    return EmbeddingEnumeration(embeddings=embeddings, truncated=truncated)


def find_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    limit: int | None = DEFAULT_EMBEDDING_LIMIT,
    label_sensitive: bool = True,
    method: str | None = None,
) -> list[Embedding]:
    """All distinct embeddings of ``pattern`` in ``target`` (canonical order).

    Thin wrapper over :func:`enumerate_embeddings` for call sites that only
    need the list; truncation is still counted and logged there.
    """
    return enumerate_embeddings(
        pattern, target, limit=limit, label_sensitive=label_sensitive, method=method
    ).embeddings


def find_embeddings_block(
    pattern: LabeledGraph,
    targets: Iterable[LabeledGraph],
    limit: int | None = DEFAULT_EMBEDDING_LIMIT,
    label_sensitive: bool = True,
    method: str | None = None,
) -> list[list[Embedding]]:
    """Embeddings of one ``pattern`` in every target of a block.

    The pattern's compiled join plan is shared across the whole block (and
    each target's edge table across future blocks), which is where the
    generic-join engine earns its keep on index builds.
    """
    return [
        enumerate_embeddings(
            pattern, target, limit=limit, label_sensitive=label_sensitive, method=method
        ).embeddings
        for target in targets
    ]


def count_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    limit: int | None = DEFAULT_EMBEDDING_LIMIT,
    label_sensitive: bool = True,
    method: str | None = None,
) -> int:
    """Number of distinct embeddings (capped at ``limit``)."""
    return len(
        find_embeddings(
            pattern, target, limit=limit, label_sensitive=label_sensitive, method=method
        )
    )


def count_embeddings_block(
    pattern: LabeledGraph,
    targets: Sequence[LabeledGraph],
    limit: int | None = DEFAULT_EMBEDDING_LIMIT,
    label_sensitive: bool = True,
    method: str | None = None,
) -> list[int]:
    """Embedding counts of one ``pattern`` across a block of targets."""
    return [
        len(embeddings)
        for embeddings in find_embeddings_block(
            pattern, targets, limit=limit, label_sensitive=label_sensitive, method=method
        )
    ]


def maximal_disjoint_embeddings(embeddings: list[Embedding]) -> list[Embedding]:
    """A greedy maximal set of pairwise edge-disjoint embeddings.

    Used by the feature-selection frequency measure (``|IN| / |Ef|`` in
    Section 4.2) where an exact maximum independent set would be overkill;
    the exact maximum-weight variant lives in :mod:`repro.pmi.embedding_graph`.
    """
    chosen: list[Embedding] = []
    order = lambda e: (len(e.edges), repr(sorted(e.edges, key=repr)))
    for embedding in sorted(embeddings, key=order):
        if all(embedding.is_edge_disjoint(existing) for existing in chosen):
            chosen.append(embedding)
    return chosen
