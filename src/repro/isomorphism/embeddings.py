"""Embedding enumeration (the ``Ef`` sets of Section 4.1).

An *embedding* of feature ``f`` in graph ``gc`` is the subgraph of ``gc``
that one subgraph-isomorphism mapping covers (Definition 5).  Distinct
mappings that cover the same edge set (automorphisms of the feature) are the
same embedding, so embeddings are deduplicated by their edge-key sets.

Embeddings drive both bound computations of the PMI index: the lower bound
uses disjoint embeddings (Equation 17), the upper bound uses embedding cuts
derived from all embeddings (Equation 20).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.labeled_graph import LabeledGraph, VertexId, edge_key
from repro.isomorphism.vf2 import VF2Matcher

EdgeKey = tuple[VertexId, VertexId]

DEFAULT_EMBEDDING_LIMIT = 200


@dataclass(frozen=True)
class Embedding:
    """One embedding: the covered target edges and vertices."""

    edges: frozenset  # frozenset[EdgeKey]
    vertices: frozenset

    def overlaps(self, other: "Embedding") -> bool:
        """True when the two embeddings share at least one edge.

        The paper's disjointness notion for Equation 17 is on *common parts
        (edges)*; vertex sharing alone does not make embeddings overlap.
        """
        return bool(self.edges & other.edges)

    def is_edge_disjoint(self, other: "Embedding") -> bool:
        return not self.overlaps(other)

    @property
    def size(self) -> int:
        return len(self.edges)


def find_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    limit: int | None = DEFAULT_EMBEDDING_LIMIT,
    label_sensitive: bool = True,
) -> list[Embedding]:
    """All distinct embeddings of ``pattern`` in ``target``.

    Parameters
    ----------
    limit:
        Cap on the number of *mappings* explored (not embeddings); features
        with pathological automorphism counts are truncated rather than
        allowed to blow up index construction.  ``None`` removes the cap.

    Returns
    -------
    list[Embedding]
        Sorted deterministically (by repr of the edge set).
    """
    if pattern.num_edges == 0:
        return []
    matcher = VF2Matcher(pattern, target, label_sensitive=label_sensitive)
    mapping_limit = None if limit is None else max(limit * 4, limit)
    seen: set[frozenset] = set()
    embeddings: list[Embedding] = []
    for mapping in matcher.all_mappings(limit=mapping_limit):
        edge_set = frozenset(
            edge_key(mapping[u], mapping[v]) for u, v in pattern.edge_keys()
        )
        if edge_set in seen:
            continue
        seen.add(edge_set)
        vertex_set = frozenset(mapping.values())
        embeddings.append(Embedding(edges=edge_set, vertices=vertex_set))
        if limit is not None and len(embeddings) >= limit:
            break
    embeddings.sort(key=lambda e: repr(sorted(e.edges, key=repr)))
    return embeddings


def count_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    limit: int | None = DEFAULT_EMBEDDING_LIMIT,
    label_sensitive: bool = True,
) -> int:
    """Number of distinct embeddings (capped at ``limit``)."""
    return len(find_embeddings(pattern, target, limit=limit, label_sensitive=label_sensitive))


def maximal_disjoint_embeddings(embeddings: list[Embedding]) -> list[Embedding]:
    """A greedy maximal set of pairwise edge-disjoint embeddings.

    Used by the feature-selection frequency measure (``|IN| / |Ef|`` in
    Section 4.2) where an exact maximum independent set would be overkill;
    the exact maximum-weight variant lives in :mod:`repro.pmi.embedding_graph`.
    """
    chosen: list[Embedding] = []
    for embedding in sorted(embeddings, key=lambda e: (len(e.edges), repr(sorted(e.edges, key=repr)))):
        if all(embedding.is_edge_disjoint(existing) for existing in chosen):
            chosen.append(embedding)
    return chosen
