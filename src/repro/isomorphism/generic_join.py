"""Vectorized generic-join subgraph matching (worst-case-optimal style).

This is the default matching engine.  Instead of recursing per candidate
vertex like :class:`~repro.isomorphism.vf2.VF2Matcher`, a pattern is compiled
**once** into a :class:`JoinPlan` — a vertex elimination order plus, per
level, the constraints that bind the new variable (vertex-label equality,
adjacency to already-bound variables with the right edge label, degree
feasibility, injectivity).  Each target graph is compiled **once** into a
columnar :class:`EdgeTable` (both directions of every edge in sorted numpy
arrays with CSR offsets and label codes), analogous to
``batch_kernel.compile_world_model``.  Executing a plan then advances all
open branches of the search one *level* at a time with whole-array gathers,
``searchsorted`` membership tests and boolean masks — no Python-level work
per candidate.

Both compiled artifacts are cached on the graph object keyed by its
``mutation_version``, so a feature matched against a block of graphs pays for
plan compilation once, and a graph probed by many features pays for its edge
table once.

Determinism contract
--------------------
The engine is pure and deterministic: no randomness, no hashing of ids
(vertices are indexed in sorted order, falling back to ``repr`` order for
heterogeneous ids).  Embedding enumeration returns results in the engine's
deterministic discovery order; :func:`repro.isomorphism.embeddings.
enumerate_embeddings` applies the canonical final sort (by repr of the sorted
edge-key set), so whenever enumeration is not truncated both engines produce
byte-identical embedding lists, answers and PMI contents.

Blow-up protection: a level whose open-branch frontier would exceed
``_MAX_OPEN_BRANCHES`` raises :class:`GenericJoinOverflow`; public wrappers
catch it and fall back to the recursive VF2 reference for that (pattern,
graph) pair, keeping worst-case memory bounded.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.graphs.labeled_graph import LabeledGraph, VertexId, edge_key
from repro.isomorphism.vf2 import VF2Matcher, connectivity_order
from repro.exceptions import ConfigurationError

__all__ = [
    "EdgeTable",
    "GenericJoinMatcher",
    "GenericJoinOverflow",
    "JoinLevel",
    "JoinPlan",
    "compile_edge_table",
    "compile_join_plan",
    "first_mapping",
    "get_default_engine",
    "match_block",
    "pattern_exists",
    "resolve_engine",
    "set_default_engine",
    "using_engine",
]

_ENGINES = ("generic_join", "vf2")
_ENGINE_ENV_VAR = "REPRO_MATCH_ENGINE"

# Hard cap on the number of simultaneously open branches at any join level.
# Beyond this the vectorized frontier would start costing real memory; the
# recursive VF2 path (constant memory, early termination) takes over instead.
_MAX_OPEN_BRANCHES = 1 << 18


class GenericJoinOverflow(RuntimeError):
    """Raised when a join level would open more branches than the cap allows."""


# ----------------------------------------------------------------------
# engine selection
# ----------------------------------------------------------------------
def _validate_engine(name: str) -> str:
    if name not in _ENGINES:
        raise ConfigurationError(f"unknown matching engine {name!r}; expected one of {_ENGINES}")
    return name


_default_engine = _validate_engine(os.environ.get(_ENGINE_ENV_VAR, "generic_join"))


def get_default_engine() -> str:
    """The engine used when a call site passes ``method=None``."""
    return _default_engine


def set_default_engine(name: str) -> None:
    """Set the process-wide default engine (``"generic_join"`` or ``"vf2"``).

    The choice is mirrored into ``REPRO_MATCH_ENGINE`` so worker processes
    spawned afterwards (sharded planners) inherit it.
    """
    global _default_engine
    _default_engine = _validate_engine(name)
    os.environ[_ENGINE_ENV_VAR] = name


def resolve_engine(method: str | None) -> str:
    """Map an explicit ``method`` argument (or None) to an engine name."""
    if method is None:
        return _default_engine
    return _validate_engine(method)


@contextmanager
def using_engine(name: str):
    """Temporarily switch the default engine (restores the prior one)."""
    previous = _default_engine
    set_default_engine(name)
    try:
        yield
    finally:
        set_default_engine(previous)


# ----------------------------------------------------------------------
# compiled artifacts
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class EdgeTable:
    """Columnar, both-directions edge table of one target graph.

    ``src``/``dst``/``elabels`` hold every edge twice (once per direction),
    lexsorted by ``(src, dst)``; ``offsets`` is the CSR row index over
    ``src`` and ``edge_codes = src * num_vertices + dst`` is strictly
    ascending, so adjacency is a slice and edge membership is a
    ``searchsorted``.
    """

    vertex_ids: tuple
    vlabels: np.ndarray
    vlabel_codes: dict
    elabel_codes: dict
    src: np.ndarray
    dst: np.ndarray
    elabels: np.ndarray
    offsets: np.ndarray
    edge_codes: np.ndarray
    degrees: np.ndarray
    verts_by_vlabel: dict
    num_vertices: int
    num_edges: int
    vertex_label_counts: dict
    edge_signature_counts: dict


@dataclass(frozen=True, eq=False)
class JoinLevel:
    """One variable of a join plan: the pattern vertex bound at this level."""

    vertex: VertexId
    vlabel: object
    degree: int
    # (earlier-level index, edge label) for every pattern edge back to an
    # already-bound variable; the first one seeds candidates via adjacency
    back_edges: tuple


@dataclass(frozen=True, eq=False)
class JoinPlan:
    """A pattern compiled into an elimination order plus per-level constraints."""

    levels: tuple
    label_sensitive: bool
    # every pattern edge as a (level_i, level_j) pair, for embedding extraction
    pattern_edges: tuple
    num_vertices: int
    num_edges: int
    vertex_label_counts: dict
    edge_signature_counts: dict


def _sorted_ids(graph: LabeledGraph) -> list:
    ids = list(graph.vertices())
    try:
        ids.sort()
    except TypeError:
        ids.sort(key=repr)
    return ids


def compile_edge_table(graph: LabeledGraph) -> EdgeTable:
    """Compile (and cache) the columnar edge table of ``graph``.

    The cache lives in the graph's ``__dict__`` keyed by ``mutation_version``
    (``LabeledGraph`` is unhashable by design, so no WeakKeyDictionary here);
    any mutation invalidates it lazily.
    """
    version = graph.mutation_version
    cached = graph.__dict__.get("_generic_join_table")
    if cached is not None and cached[0] == version:
        return cached[1]
    table = _build_edge_table(graph)
    graph.__dict__["_generic_join_table"] = (version, table)
    return table


def _build_edge_table(graph: LabeledGraph) -> EdgeTable:
    vertex_ids = tuple(_sorted_ids(graph))
    index = {vid: i for i, vid in enumerate(vertex_ids)}
    n = len(vertex_ids)

    vlabel_codes: dict = {}
    vlabels = np.empty(n, dtype=np.int64)
    for i, vid in enumerate(vertex_ids):
        label = graph.vertex_label(vid)
        code = vlabel_codes.setdefault(label, len(vlabel_codes))
        vlabels[i] = code

    elabel_codes: dict = {}
    src_list: list[int] = []
    dst_list: list[int] = []
    elabel_list: list[int] = []
    for edge in graph.edges():
        iu, iv = index[edge.u], index[edge.v]
        code = elabel_codes.setdefault(edge.label, len(elabel_codes))
        src_list.extend((iu, iv))
        dst_list.extend((iv, iu))
        elabel_list.extend((code, code))

    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    elabels = np.asarray(elabel_list, dtype=np.int64)
    order = np.lexsort((dst, src))
    src, dst, elabels = src[order], dst[order], elabels[order]
    offsets = np.searchsorted(src, np.arange(n + 1))
    edge_codes = src * n + dst
    degrees = np.diff(offsets)

    verts_by_vlabel = {
        code: np.flatnonzero(vlabels == code) for code in vlabel_codes.values()
    }
    return EdgeTable(
        vertex_ids=vertex_ids,
        vlabels=vlabels,
        vlabel_codes=vlabel_codes,
        elabel_codes=elabel_codes,
        src=src,
        dst=dst,
        elabels=elabels,
        offsets=offsets,
        edge_codes=edge_codes,
        degrees=degrees,
        verts_by_vlabel=verts_by_vlabel,
        num_vertices=n,
        num_edges=graph.num_edges,
        vertex_label_counts=dict(graph.vertex_label_counts()),
        edge_signature_counts=dict(graph.edge_signature_counts()),
    )


def compile_join_plan(pattern: LabeledGraph, label_sensitive: bool = True) -> JoinPlan:
    """Compile (and cache) the join plan of ``pattern``.

    Plans are cached per ``label_sensitive`` flag, keyed by the pattern's
    ``mutation_version``, so one feature matched against a block of graphs is
    compiled exactly once.
    """
    version = pattern.mutation_version
    cache = pattern.__dict__.setdefault("_generic_join_plans", {})
    entry = cache.get(label_sensitive)
    if entry is not None and entry[0] == version:
        return entry[1]
    plan = _build_join_plan(pattern, label_sensitive)
    cache[label_sensitive] = (version, plan)
    return plan


def _build_join_plan(pattern: LabeledGraph, label_sensitive: bool) -> JoinPlan:
    order = connectivity_order(pattern)
    level_of = {vertex: i for i, vertex in enumerate(order)}
    levels = []
    for i, vertex in enumerate(order):
        back = sorted(
            (level_of[n], pattern.edge_label(vertex, n))
            for n in pattern.neighbors(vertex)
            if level_of[n] < i
        )
        levels.append(
            JoinLevel(
                vertex=vertex,
                vlabel=pattern.vertex_label(vertex),
                degree=pattern.degree(vertex),
                back_edges=tuple(back),
            )
        )
    pattern_edges = tuple((level_of[u], level_of[v]) for u, v in pattern.edge_keys())
    return JoinPlan(
        levels=tuple(levels),
        label_sensitive=label_sensitive,
        pattern_edges=pattern_edges,
        num_vertices=pattern.num_vertices,
        num_edges=pattern.num_edges,
        vertex_label_counts=dict(pattern.vertex_label_counts()),
        edge_signature_counts=dict(pattern.edge_signature_counts()),
    )


# ----------------------------------------------------------------------
# plan execution
# ----------------------------------------------------------------------
def _quick_feasible(plan: JoinPlan, table: EdgeTable) -> bool:
    if plan.num_vertices > table.num_vertices:
        return False
    if plan.num_edges > table.num_edges:
        return False
    if not plan.label_sensitive:
        return True
    for label, count in plan.vertex_label_counts.items():
        if table.vertex_label_counts.get(label, 0) < count:
            return False
    for signature, count in plan.edge_signature_counts.items():
        if table.edge_signature_counts.get(signature, 0) < count:
            return False
    return True


def _empty(plan: JoinPlan) -> np.ndarray:
    return np.empty((0, len(plan.levels)), dtype=np.int64)


def _seed_candidates(plan: JoinPlan, level: JoinLevel, table: EdgeTable) -> np.ndarray:
    """All target vertices satisfying a level's unary constraints."""
    if plan.label_sensitive:
        code = table.vlabel_codes.get(level.vlabel)
        if code is None:
            return np.empty(0, dtype=np.int64)
        verts = table.verts_by_vlabel[code]
    else:
        verts = np.arange(table.num_vertices, dtype=np.int64)
    return verts[table.degrees[verts] >= level.degree]


def execute_join_plan(plan: JoinPlan, table: EdgeTable) -> np.ndarray:
    """All injective assignments of the plan's variables into the table.

    Returns an ``(num_mappings, num_levels)`` int array of target vertex
    *indices* (column ``i`` is the image of ``plan.levels[i].vertex``), in
    the engine's deterministic discovery order.  Raises
    :class:`GenericJoinOverflow` when any level's frontier exceeds the cap.
    """
    if not _quick_feasible(plan, table):
        return _empty(plan)
    n = table.num_vertices
    assign: np.ndarray | None = None
    for li, level in enumerate(plan.levels):
        if assign is None:
            cands = _seed_candidates(plan, level, table)
            if cands.size == 0:
                return _empty(plan)
            assign = cands[:, None]
            continue
        if not level.back_edges:
            # component start (or isolated vertex): cross product + injectivity
            cands = _seed_candidates(plan, level, table)
            if cands.size == 0 or assign.shape[0] == 0:
                return _empty(plan)
            total = assign.shape[0] * cands.size
            if total > _MAX_OPEN_BRANCHES:
                raise GenericJoinOverflow(f"{total} open branches at level {li}")
            branch_idx = np.repeat(np.arange(assign.shape[0]), cands.size)
            cand = np.tile(cands, assign.shape[0])
        else:
            # seed from adjacency of the first bound neighbour, then filter
            (b0, elabel0), *rest = level.back_edges
            bound = assign[:, b0]
            starts = table.offsets[bound]
            counts = table.offsets[bound + 1] - starts
            total = int(counts.sum())
            if total == 0:
                return _empty(plan)
            if total > _MAX_OPEN_BRANCHES:
                raise GenericJoinOverflow(f"{total} open branches at level {li}")
            branch_idx = np.repeat(np.arange(assign.shape[0]), counts)
            row_start = np.concatenate(([0], np.cumsum(counts)))[:-1]
            pos = (
                np.arange(total, dtype=np.int64)
                - np.repeat(row_start, counts)
                + np.repeat(starts, counts)
            )
            cand = table.dst[pos]
            mask = table.degrees[cand] >= level.degree
            if plan.label_sensitive:
                vcode = table.vlabel_codes.get(level.vlabel)
                ecode0 = table.elabel_codes.get(elabel0)
                if vcode is None or ecode0 is None:
                    return _empty(plan)
                mask &= table.vlabels[cand] == vcode
                mask &= table.elabels[pos] == ecode0
            # remaining back edges: membership via searchsorted on edge codes
            for bj, elabelj in rest:
                codes = assign[branch_idx, bj] * n + cand
                idx = np.minimum(
                    np.searchsorted(table.edge_codes, codes), len(table.edge_codes) - 1
                )
                hit = table.edge_codes[idx] == codes
                if plan.label_sensitive:
                    ecodej = table.elabel_codes.get(elabelj)
                    if ecodej is None:
                        return _empty(plan)
                    hit &= table.elabels[idx] == ecodej
                mask &= hit
            branch_idx = branch_idx[mask]
            cand = cand[mask]
        if cand.size == 0:
            return _empty(plan)
        prev = assign[branch_idx]
        keep = ~(prev == cand[:, None]).any(axis=1)  # injectivity
        prev = prev[keep]
        cand = cand[keep]
        if cand.size == 0:
            return _empty(plan)
        assign = np.concatenate([prev, cand[:, None]], axis=1)
    assert assign is not None
    return assign


# ----------------------------------------------------------------------
# public matching API
# ----------------------------------------------------------------------
def _run(
    pattern: LabeledGraph, target: LabeledGraph, label_sensitive: bool
) -> tuple[np.ndarray, JoinPlan, EdgeTable]:
    plan = compile_join_plan(pattern, label_sensitive)
    table = compile_edge_table(target)
    return execute_join_plan(plan, table), plan, table


def pattern_exists(
    pattern: LabeledGraph, target: LabeledGraph, label_sensitive: bool = True
) -> bool:
    """``pattern ⊆iso target`` via the generic-join engine (VF2 on overflow)."""
    if pattern.num_vertices == 0:
        return True
    try:
        assignments, _, _ = _run(pattern, target, label_sensitive)
    except GenericJoinOverflow:
        return VF2Matcher(pattern, target, label_sensitive=label_sensitive).exists()
    return assignments.shape[0] > 0


def first_mapping(
    pattern: LabeledGraph, target: LabeledGraph, label_sensitive: bool = True
) -> dict[VertexId, VertexId] | None:
    """One witnessing mapping, or None (VF2 fallback on overflow)."""
    if pattern.num_vertices == 0:
        return {}
    try:
        assignments, plan, table = _run(pattern, target, label_sensitive)
    except GenericJoinOverflow:
        return VF2Matcher(pattern, target, label_sensitive=label_sensitive).first_mapping()
    if assignments.shape[0] == 0:
        return None
    row = assignments[0]
    return {
        level.vertex: table.vertex_ids[row[i]] for i, level in enumerate(plan.levels)
    }


def all_mappings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    limit: int | None = None,
    label_sensitive: bool = True,
) -> list[dict[VertexId, VertexId]]:
    """All injective mappings (up to ``limit``), in discovery order."""
    if pattern.num_vertices == 0:
        return [{}]
    try:
        assignments, plan, table = _run(pattern, target, label_sensitive)
    except GenericJoinOverflow:
        return VF2Matcher(pattern, target, label_sensitive=label_sensitive).all_mappings(
            limit=limit
        )
    if limit is not None:
        assignments = assignments[:limit]
    ids = table.vertex_ids
    vertices = [level.vertex for level in plan.levels]
    return [
        {vertices[i]: ids[row[i]] for i in range(len(vertices))} for row in assignments
    ]


def match_block(
    pattern: LabeledGraph,
    graphs,
    label_sensitive: bool = True,
    method: str | None = None,
) -> list[bool]:
    """``pattern ⊆iso g`` for every graph in the block.

    The pattern's join plan is compiled once and shared across the block;
    per-graph edge tables come from (or populate) each graph's cache.
    """
    graphs = list(graphs)
    if pattern.num_vertices == 0:
        return [True] * len(graphs)
    if resolve_engine(method) == "vf2":
        return [
            VF2Matcher(pattern, g, label_sensitive=label_sensitive).exists()
            for g in graphs
        ]
    return [pattern_exists(pattern, g, label_sensitive=label_sensitive) for g in graphs]


class GenericJoinMatcher:
    """Drop-in sibling of :class:`VF2Matcher` backed by the join engine."""

    def __init__(
        self,
        pattern: LabeledGraph,
        target: LabeledGraph,
        label_sensitive: bool = True,
    ) -> None:
        self.pattern = pattern
        self.target = target
        self.label_sensitive = label_sensitive

    def exists(self) -> bool:
        if self.pattern.num_vertices == 0:
            return True
        return pattern_exists(self.pattern, self.target, self.label_sensitive)

    def first_mapping(self) -> dict[VertexId, VertexId] | None:
        if self.pattern.num_vertices == 0:
            return {}
        return first_mapping(self.pattern, self.target, self.label_sensitive)

    def all_mappings(self, limit: int | None = None) -> list[dict[VertexId, VertexId]]:
        if self.pattern.num_vertices == 0:
            return [{}]
        return all_mappings(self.pattern, self.target, limit, self.label_sensitive)


# ----------------------------------------------------------------------
# embedding extraction (consumed by repro.isomorphism.embeddings)
# ----------------------------------------------------------------------
def enumerate_embedding_sets(
    pattern: LabeledGraph,
    target: LabeledGraph,
    limit: int | None,
    label_sensitive: bool = True,
) -> tuple[list[tuple[frozenset, frozenset]], bool]:
    """Distinct embeddings as ``(edge_keys, vertices)`` frozenset pairs.

    Automorphic mappings that cover the same edge set are collapsed; results
    come back in discovery order (first mapping that produced each edge set)
    and are truncated at ``limit`` with a ``truncated`` flag.  Falls back to
    the recursive matcher on frontier overflow (same fallback the boolean
    wrappers use), signalled by raising :class:`GenericJoinOverflow` so the
    caller can reuse its streaming VF2 path.
    """
    assignments, plan, table = _run(pattern, target, label_sensitive)
    if assignments.shape[0] == 0:
        return [], False
    n = table.num_vertices
    columns = []
    for i, j in plan.pattern_edges:
        a = assignments[:, i]
        b = assignments[:, j]
        columns.append(np.minimum(a, b) * n + np.maximum(a, b))
    codes = np.stack(columns, axis=1)
    codes.sort(axis=1)  # edge-set signature: order within a mapping is irrelevant
    # first occurrence of each distinct signature row, in discovery order
    # (lexsort + reduceat is much cheaper than np.unique(axis=0))
    order = np.lexsort(codes.T)
    ranked = codes[order]
    boundary = np.empty(order.size, dtype=bool)
    boundary[0] = True
    np.any(ranked[1:] != ranked[:-1], axis=1, out=boundary[1:])
    first = np.minimum.reduceat(order, np.flatnonzero(boundary))
    first.sort()
    truncated = limit is not None and first.size > limit
    if truncated:
        first = first[:limit]
    ids = table.vertex_ids
    results = []
    for row_index in first:
        row = assignments[row_index]
        edges = frozenset(
            edge_key(ids[row[i]], ids[row[j]]) for i, j in plan.pattern_edges
        )
        vertices = frozenset(ids[v] for v in row)
        results.append((edges, vertices))
    return results, truncated
