"""Maximum common subgraph and subgraph distance (Definitions 7 and 8).

``dis(q, g) = |E(q)| - |mcs(q, g)|``: the minimum number of edges that must
be removed from the query so that what remains is subgraph isomorphic to
``g``.  The paper's similarity predicate is ``dis(q, g) <= δ``.

Computing the MCS exactly is NP-hard; this module searches by *relaxation
depth*: it checks whether any deletion of ``d`` query edges yields a
subgraph-isomorphic remainder, for ``d = 0, 1, ..``.  This is exact, and fast
for the query sizes and distance thresholds the evaluation uses, because the
search stops at the first feasible depth and each candidate is tested with
the label-pruned VF2 matcher.  A quick lower bound based on missing edge
signatures skips depths that cannot possibly succeed.
"""

from __future__ import annotations

from itertools import combinations

from repro.graphs.labeled_graph import LabeledGraph
from repro.isomorphism.vf2 import is_subgraph_isomorphic
from repro.exceptions import ConfigurationError

DEFAULT_MAX_COMBINATIONS = 200_000


def signature_distance_lower_bound(query: LabeledGraph, target: LabeledGraph) -> int:
    """A cheap lower bound on ``dis(query, target)``.

    Every query edge whose (endpoint labels, edge label) signature does not
    exist in the target must be deleted, and the target can absorb at most as
    many copies of a signature as it contains.
    """
    query_signatures = query.edge_signature_counts()
    target_signatures = target.edge_signature_counts()
    missing = 0
    for signature, count in query_signatures.items():
        available = target_signatures.get(signature, 0)
        if count > available:
            missing += count - available
    return missing


def subgraph_distance(
    query: LabeledGraph,
    target: LabeledGraph,
    max_distance: int | None = None,
    max_combinations: int = DEFAULT_MAX_COMBINATIONS,
) -> int | None:
    """The subgraph distance ``dis(query, target)`` (Definition 8).

    Parameters
    ----------
    max_distance:
        Stop searching beyond this depth and return ``None`` when the
        distance exceeds it.  ``None`` searches up to ``|E(query)|``.
    max_combinations:
        Safety valve on the number of deletion sets examined per depth; when
        exceeded the search falls back to a greedy (still sound, possibly
        overestimating) deletion strategy for that depth.

    Returns
    -------
    int or None
        The distance, or ``None`` when it exceeds ``max_distance``.
    """
    num_edges = query.num_edges
    limit = num_edges if max_distance is None else min(max_distance, num_edges)
    lower_bound = signature_distance_lower_bound(query, target)
    if lower_bound > limit:
        return None
    edge_keys = sorted(query.edge_keys(), key=repr)
    for depth in range(lower_bound, limit + 1):
        if depth == 0:
            if is_subgraph_isomorphic(query, target):
                return 0
            continue
        total_combos = _n_choose_k(num_edges, depth)
        if total_combos > max_combinations:
            if _greedy_relaxation_matches(query, target, depth):
                return depth
            continue
        for deletion in combinations(edge_keys, depth):
            remaining = [key for key in edge_keys if key not in set(deletion)]
            relaxed = query.subgraph_by_edges(remaining)
            if is_subgraph_isomorphic(relaxed, target):
                return depth
    return None


def is_subgraph_similar(
    query: LabeledGraph,
    target: LabeledGraph,
    distance_threshold: int,
) -> bool:
    """``query ⊆sim target``: subgraph distance at most ``distance_threshold``."""
    if distance_threshold < 0:
        raise ConfigurationError("distance_threshold must be >= 0")
    if distance_threshold >= query.num_edges:
        return True
    distance = subgraph_distance(query, target, max_distance=distance_threshold)
    return distance is not None


def maximum_common_subgraph_size(
    query: LabeledGraph, target: LabeledGraph, max_distance: int | None = None
) -> int | None:
    """``|mcs(query, target)|`` in edges (Definition 7).

    ``None`` when the distance search was capped before finding a match.
    """
    distance = subgraph_distance(query, target, max_distance=max_distance)
    if distance is None:
        return None
    return query.num_edges - distance


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _n_choose_k(n: int, k: int) -> int:
    import math

    return math.comb(n, k)


def _greedy_relaxation_matches(query: LabeledGraph, target: LabeledGraph, depth: int) -> bool:
    """Greedy fallback for huge deletion spaces.

    Repeatedly deletes the query edge whose signature is scarcest in the
    target; sound (only returns True when a real match is found) but may miss
    matches that an exhaustive search would find.
    """
    working = query.copy()
    target_signatures = target.edge_signature_counts()
    for _ in range(depth):
        worst_key = None
        worst_score = None
        for u, v in working.edge_keys():
            lu, lv = working.vertex_label(u), working.vertex_label(v)
            signature = (tuple(sorted((repr(lu), repr(lv)))), working.edge_label(u, v))
            score = target_signatures.get(signature, 0)
            if worst_score is None or score < worst_score:
                worst_score = score
                worst_key = (u, v)
        if worst_key is None:
            break
        working.remove_edge(*worst_key)
    working.remove_isolated_vertices()
    return is_subgraph_isomorphic(working, target)
