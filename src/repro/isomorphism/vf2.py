"""Labeled subgraph isomorphism in the style of VF2 (Definition 5, [10]).

The paper uses VF2 for every ``rq ⊆iso f`` / ``f ⊆iso gc`` test during
pruning and index construction.  This module implements a backtracking
matcher for *subgraph monomorphism*: an injective mapping of the pattern's
vertices into the target such that every pattern edge maps onto a target edge
with matching vertex and edge labels.  The target may contain additional
edges among the mapped vertices (this is the paper's Definition 5, which does
not require an induced match).

Pruning rules:

* vertex label equality and degree feasibility,
* consistency of already-mapped neighbours (the core VF2 feasibility rule),
* a global quick reject on vertex/edge label multisets.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.graphs.labeled_graph import LabeledGraph, VertexId

MatchCallback = Callable[[dict[VertexId, VertexId]], bool]


class VF2Matcher:
    """Reusable matcher for one (pattern, target) pair.

    Parameters
    ----------
    pattern:
        The smaller graph to embed.
    target:
        The graph to embed into.
    label_sensitive:
        When True (default) vertex and edge labels must match exactly; when
        False only the structure is matched.
    """

    def __init__(
        self,
        pattern: LabeledGraph,
        target: LabeledGraph,
        label_sensitive: bool = True,
    ) -> None:
        self.pattern = pattern
        self.target = target
        self.label_sensitive = label_sensitive
        self._pattern_order = self._matching_order()
        self._targets_by_label: dict[object, list[VertexId]] = {}
        for vertex in target.vertices():
            key = target.vertex_label(vertex) if label_sensitive else None
            self._targets_by_label.setdefault(key, []).append(vertex)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def exists(self) -> bool:
        """True when at least one subgraph isomorphism exists."""
        if not self._quick_feasible():
            return False
        found = False

        def stop_on_first(_mapping: dict) -> bool:
            nonlocal found
            found = True
            return False  # stop enumeration

        self._search({}, stop_on_first)
        return found

    def first_mapping(self) -> dict[VertexId, VertexId] | None:
        """One mapping pattern-vertex -> target-vertex, or None."""
        if not self._quick_feasible():
            return None
        result: dict[VertexId, VertexId] | None = None

        def keep_first(mapping: dict) -> bool:
            nonlocal result
            result = dict(mapping)
            return False

        self._search({}, keep_first)
        return result

    def all_mappings(self, limit: int | None = None) -> list[dict[VertexId, VertexId]]:
        """All injective mappings (up to ``limit``)."""
        if not self._quick_feasible():
            return []
        mappings: list[dict[VertexId, VertexId]] = []

        def collect(mapping: dict) -> bool:
            mappings.append(dict(mapping))
            return limit is None or len(mappings) < limit

        self._search({}, collect)
        return mappings

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _quick_feasible(self) -> bool:
        if self.pattern.num_vertices > self.target.num_vertices:
            return False
        if self.pattern.num_edges > self.target.num_edges:
            return False
        if not self.label_sensitive:
            return True
        pattern_vertex_counts = self.pattern.vertex_label_counts()
        target_vertex_counts = self.target.vertex_label_counts()
        for label, count in pattern_vertex_counts.items():
            if target_vertex_counts.get(label, 0) < count:
                return False
        pattern_edge_counts = self.pattern.edge_signature_counts()
        target_edge_counts = self.target.edge_signature_counts()
        for signature, count in pattern_edge_counts.items():
            if target_edge_counts.get(signature, 0) < count:
                return False
        return True

    def _matching_order(self) -> list[VertexId]:
        """Connectivity-aware ordering: BFS from the highest-degree vertex of
        each component, preferring vertices adjacent to already-ordered ones."""
        order: list[VertexId] = []
        placed: set[VertexId] = set()
        remaining = set(self.pattern.vertices())
        while remaining:
            start = max(remaining, key=lambda v: (self.pattern.degree(v), repr(v)))
            frontier = [start]
            while frontier:
                # pick the frontier vertex with the most already-placed neighbours
                frontier.sort(
                    key=lambda v: (
                        -sum(1 for n in self.pattern.neighbors(v) if n in placed),
                        -self.pattern.degree(v),
                        repr(v),
                    )
                )
                current = frontier.pop(0)
                if current in placed:
                    continue
                order.append(current)
                placed.add(current)
                remaining.discard(current)
                for neighbor in self.pattern.neighbors(current):
                    if neighbor not in placed and neighbor not in frontier:
                        frontier.append(neighbor)
        return order

    def _candidates(
        self, pattern_vertex: VertexId, mapping: dict[VertexId, VertexId]
    ) -> list[VertexId]:
        """Target candidates for ``pattern_vertex`` given the partial mapping."""
        used = set(mapping.values())
        mapped_neighbors = [n for n in self.pattern.neighbors(pattern_vertex) if n in mapping]
        if mapped_neighbors:
            # candidates must be neighbours of every mapped pattern-neighbour's image
            candidate_sets = []
            for neighbor in mapped_neighbors:
                image = mapping[neighbor]
                candidate_sets.append(set(self.target.neighbors(image)))
            candidates = set.intersection(*candidate_sets) - used
        else:
            key = (
                self.pattern.vertex_label(pattern_vertex) if self.label_sensitive else None
            )
            candidates = set(self._targets_by_label.get(key, [])) - used
        return sorted(candidates, key=repr)

    def _feasible(
        self,
        pattern_vertex: VertexId,
        target_vertex: VertexId,
        mapping: dict[VertexId, VertexId],
    ) -> bool:
        if self.label_sensitive and self.pattern.vertex_label(
            pattern_vertex
        ) != self.target.vertex_label(target_vertex):
            return False
        if self.pattern.degree(pattern_vertex) > self.target.degree(target_vertex):
            return False
        for neighbor in self.pattern.neighbors(pattern_vertex):
            if neighbor not in mapping:
                continue
            image = mapping[neighbor]
            if not self.target.has_edge(target_vertex, image):
                return False
            if self.label_sensitive and self.pattern.edge_label(
                pattern_vertex, neighbor
            ) != self.target.edge_label(target_vertex, image):
                return False
        return True

    def _search(self, mapping: dict[VertexId, VertexId], callback: MatchCallback) -> bool:
        """Depth-first extension of ``mapping``.  Returns False to abort."""
        if len(mapping) == self.pattern.num_vertices:
            return callback(mapping)
        pattern_vertex = self._pattern_order[len(mapping)]
        for target_vertex in self._candidates(pattern_vertex, mapping):
            if not self._feasible(pattern_vertex, target_vertex, mapping):
                continue
            mapping[pattern_vertex] = target_vertex
            keep_going = self._search(mapping, callback)
            del mapping[pattern_vertex]
            if not keep_going:
                return False
        return True


def is_subgraph_isomorphic(
    pattern: LabeledGraph, target: LabeledGraph, label_sensitive: bool = True
) -> bool:
    """``pattern ⊆iso target`` (Definition 5)."""
    if pattern.num_vertices == 0:
        return True
    return VF2Matcher(pattern, target, label_sensitive=label_sensitive).exists()


def find_isomorphism_mapping(
    pattern: LabeledGraph, target: LabeledGraph, label_sensitive: bool = True
) -> dict[VertexId, VertexId] | None:
    """One witnessing mapping for ``pattern ⊆iso target``, or None."""
    if pattern.num_vertices == 0:
        return {}
    return VF2Matcher(pattern, target, label_sensitive=label_sensitive).first_mapping()
