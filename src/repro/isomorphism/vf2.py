"""Labeled subgraph isomorphism in the style of VF2 (Definition 5, [10]).

The paper uses VF2 for every ``rq ⊆iso f`` / ``f ⊆iso gc`` test during
pruning and index construction.  This module implements a backtracking
matcher for *subgraph monomorphism*: an injective mapping of the pattern's
vertices into the target such that every pattern edge maps onto a target edge
with matching vertex and edge labels.  The target may contain additional
edges among the mapped vertices (this is the paper's Definition 5, which does
not require an induced match).

Pruning rules:

* vertex label equality and degree feasibility,
* consistency of already-mapped neighbours (the core VF2 feasibility rule),
* a global quick reject on vertex/edge label multisets.

The recursive matcher survives as the ``method="vf2"`` reference engine; the
default engine lives in :mod:`repro.isomorphism.generic_join` and the module
functions below dispatch on the active engine.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.graphs.labeled_graph import LabeledGraph, VertexId

MatchCallback = Callable[[dict[VertexId, VertexId]], bool]


def connectivity_order(pattern: LabeledGraph) -> list[VertexId]:
    """Connectivity-aware vertex elimination order, shared by both engines.

    BFS from the highest-degree vertex of each component, always taking the
    frontier vertex with the most already-placed neighbours (ties broken by
    degree, then repr).  Placed-neighbour counts are maintained incrementally
    so the whole ordering is O(V + E) selections over the frontier instead of
    re-sorting the frontier on every pop.
    """
    degree = {v: pattern.degree(v) for v in pattern.vertices()}
    neighbors = {v: tuple(pattern.neighbors(v)) for v in degree}
    placed_count = dict.fromkeys(degree, 0)
    order: list[VertexId] = []
    placed: set[VertexId] = set()
    remaining = set(degree)
    while remaining:
        start = max(remaining, key=lambda v: (degree[v], repr(v)))
        frontier = [start]
        in_frontier = {start}
        while frontier:
            current = min(
                frontier,
                key=lambda v: (-placed_count[v], -degree[v], repr(v)),
            )
            frontier.remove(current)
            in_frontier.discard(current)
            order.append(current)
            placed.add(current)
            remaining.discard(current)
            for neighbor in neighbors[current]:
                if neighbor in placed:
                    continue
                placed_count[neighbor] += 1
                if neighbor not in in_frontier:
                    frontier.append(neighbor)
                    in_frontier.add(neighbor)
    return order


class VF2Matcher:
    """Reusable matcher for one (pattern, target) pair.

    Parameters
    ----------
    pattern:
        The smaller graph to embed.
    target:
        The graph to embed into.
    label_sensitive:
        When True (default) vertex and edge labels must match exactly; when
        False only the structure is matched.
    """

    def __init__(
        self,
        pattern: LabeledGraph,
        target: LabeledGraph,
        label_sensitive: bool = True,
    ) -> None:
        self.pattern = pattern
        self.target = target
        self.label_sensitive = label_sensitive
        self._pattern_order = connectivity_order(pattern)
        self._pattern_neighbors: dict[VertexId, tuple[VertexId, ...]] = {
            v: tuple(pattern.neighbors(v)) for v in pattern.vertices()
        }
        self._targets_by_label: dict[object, list[VertexId]] = {}
        for vertex in target.vertices():
            key = target.vertex_label(vertex) if label_sensitive else None
            self._targets_by_label.setdefault(key, []).append(vertex)
        for pool in self._targets_by_label.values():
            pool.sort(key=repr)
        self._target_neighbor_cache: dict[VertexId, frozenset] = {}
        self._used: set[VertexId] = set()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def exists(self) -> bool:
        """True when at least one subgraph isomorphism exists."""
        found = False

        def stop_on_first(_mapping: dict) -> bool:
            nonlocal found
            found = True
            return False  # stop enumeration

        self.for_each_mapping(stop_on_first)
        return found

    def first_mapping(self) -> dict[VertexId, VertexId] | None:
        """One mapping pattern-vertex -> target-vertex, or None."""
        result: dict[VertexId, VertexId] | None = None

        def keep_first(mapping: dict) -> bool:
            nonlocal result
            result = dict(mapping)
            return False

        self.for_each_mapping(keep_first)
        return result

    def all_mappings(self, limit: int | None = None) -> list[dict[VertexId, VertexId]]:
        """All injective mappings (up to ``limit``)."""
        mappings: list[dict[VertexId, VertexId]] = []

        def collect(mapping: dict) -> bool:
            mappings.append(dict(mapping))
            return limit is None or len(mappings) < limit

        self.for_each_mapping(collect)
        return mappings

    def for_each_mapping(self, callback: MatchCallback) -> None:
        """Stream every injective mapping through ``callback``.

        ``callback`` receives the live partial-mapping dict (copy it if it
        must outlive the call) and returns False to abort enumeration.
        Mappings arrive in the matcher's deterministic depth-first order.
        """
        if not self._quick_feasible():
            return
        self._used.clear()
        self._search({}, callback)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _quick_feasible(self) -> bool:
        if self.pattern.num_vertices > self.target.num_vertices:
            return False
        if self.pattern.num_edges > self.target.num_edges:
            return False
        if not self.label_sensitive:
            return True
        pattern_vertex_counts = self.pattern.vertex_label_counts()
        target_vertex_counts = self.target.vertex_label_counts()
        for label, count in pattern_vertex_counts.items():
            if target_vertex_counts.get(label, 0) < count:
                return False
        pattern_edge_counts = self.pattern.edge_signature_counts()
        target_edge_counts = self.target.edge_signature_counts()
        for signature, count in pattern_edge_counts.items():
            if target_edge_counts.get(signature, 0) < count:
                return False
        return True

    def _target_neighbors(self, vertex: VertexId) -> frozenset:
        cached = self._target_neighbor_cache.get(vertex)
        if cached is None:
            cached = frozenset(self.target.neighbors(vertex))
            self._target_neighbor_cache[vertex] = cached
        return cached

    def _candidates(
        self, pattern_vertex: VertexId, mapping: dict[VertexId, VertexId]
    ) -> list[VertexId]:
        """Target candidates for ``pattern_vertex`` given the partial mapping."""
        used = self._used
        mapped_neighbors = [
            n for n in self._pattern_neighbors[pattern_vertex] if n in mapping
        ]
        if not mapped_neighbors:
            key = (
                self.pattern.vertex_label(pattern_vertex) if self.label_sensitive else None
            )
            pool = self._targets_by_label.get(key, [])
            return [t for t in pool if t not in used]  # pool is presorted by repr
        # candidates must be neighbours of every mapped pattern-neighbour's image
        neighbor_sets = [self._target_neighbors(mapping[n]) for n in mapped_neighbors]
        neighbor_sets.sort(key=len)
        base, rest = neighbor_sets[0], neighbor_sets[1:]
        candidates = [
            t for t in base if t not in used and all(t in s for s in rest)
        ]
        return sorted(candidates, key=repr)

    def _feasible(
        self,
        pattern_vertex: VertexId,
        target_vertex: VertexId,
        mapping: dict[VertexId, VertexId],
    ) -> bool:
        if self.label_sensitive and self.pattern.vertex_label(
            pattern_vertex
        ) != self.target.vertex_label(target_vertex):
            return False
        if self.pattern.degree(pattern_vertex) > self.target.degree(target_vertex):
            return False
        for neighbor in self._pattern_neighbors[pattern_vertex]:
            if neighbor not in mapping:
                continue
            image = mapping[neighbor]
            if not self.target.has_edge(target_vertex, image):
                return False
            if self.label_sensitive and self.pattern.edge_label(
                pattern_vertex, neighbor
            ) != self.target.edge_label(target_vertex, image):
                return False
        return True

    def _search(self, mapping: dict[VertexId, VertexId], callback: MatchCallback) -> bool:
        """Depth-first extension of ``mapping``.  Returns False to abort."""
        if len(mapping) == self.pattern.num_vertices:
            return callback(mapping)
        pattern_vertex = self._pattern_order[len(mapping)]
        for target_vertex in self._candidates(pattern_vertex, mapping):
            if not self._feasible(pattern_vertex, target_vertex, mapping):
                continue
            mapping[pattern_vertex] = target_vertex
            self._used.add(target_vertex)
            keep_going = self._search(mapping, callback)
            del mapping[pattern_vertex]
            self._used.discard(target_vertex)
            if not keep_going:
                return False
        return True


def is_subgraph_isomorphic(
    pattern: LabeledGraph,
    target: LabeledGraph,
    label_sensitive: bool = True,
    method: str | None = None,
) -> bool:
    """``pattern ⊆iso target`` (Definition 5).

    ``method`` picks the engine (``"generic_join"`` or ``"vf2"``); None uses
    the session default (see :mod:`repro.isomorphism.generic_join`).
    """
    if pattern.num_vertices == 0:
        return True
    from repro.isomorphism import generic_join

    if generic_join.resolve_engine(method) == "generic_join":
        return generic_join.pattern_exists(pattern, target, label_sensitive=label_sensitive)
    return VF2Matcher(pattern, target, label_sensitive=label_sensitive).exists()


def find_isomorphism_mapping(
    pattern: LabeledGraph,
    target: LabeledGraph,
    label_sensitive: bool = True,
    method: str | None = None,
) -> dict[VertexId, VertexId] | None:
    """One witnessing mapping for ``pattern ⊆iso target``, or None."""
    if pattern.num_vertices == 0:
        return {}
    from repro.isomorphism import generic_join

    if generic_join.resolve_engine(method) == "generic_join":
        return generic_join.first_mapping(pattern, target, label_sensitive=label_sensitive)
    return VF2Matcher(pattern, target, label_sensitive=label_sensitive).first_mapping()
