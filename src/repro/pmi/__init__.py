"""Probabilistic Matrix Index (PMI): subgraph-isomorphism-probability bounds,
embedding/cut machinery, feature selection and the index itself."""

from repro.pmi.max_clique import maximum_weight_clique
from repro.pmi.embedding_graph import build_embedding_graph, best_disjoint_embeddings
from repro.pmi.cuts import (
    enumerate_embedding_cuts,
    build_parallel_graph,
    best_disjoint_cuts,
)
from repro.pmi.bounds import SipBounds, compute_sip_bounds, BoundConfig
from repro.pmi.features import Feature, FeatureMiner, FeatureSelectionConfig
from repro.pmi.index import ProbabilisticMatrixIndex, PMIEntry, PMIRow

__all__ = [
    "maximum_weight_clique",
    "build_embedding_graph",
    "best_disjoint_embeddings",
    "enumerate_embedding_cuts",
    "build_parallel_graph",
    "best_disjoint_cuts",
    "SipBounds",
    "compute_sip_bounds",
    "BoundConfig",
    "Feature",
    "FeatureMiner",
    "FeatureSelectionConfig",
    "ProbabilisticMatrixIndex",
    "PMIEntry",
    "PMIRow",
]
