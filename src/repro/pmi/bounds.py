"""Lower and upper bounds of the subgraph isomorphism probability (SIP).

For a feature ``f`` and a probabilistic graph ``g`` the SIP is
``Pr(f ⊆iso g)`` (Definition 6) — #P-complete to compute exactly.  Section 4.1
of the paper derives:

* ``LowerB(f) = 1 - Π_{i∈IN} (1 - Pr(Bfi | COR))``  (Equation 17), where
  ``IN`` is a set of pairwise edge-disjoint embeddings and ``COR`` is the
  event that every embedding overlapping ``fi`` is absent;
* ``UpperB(f) = Π_{i∈IN'} (1 - Pr(Bci | COM))``  (Equation 20), where ``IN'``
  is a set of pairwise disjoint embedding *cuts* and ``COM`` is the event
  that every cut overlapping ``ci`` does not materialize.

Both "tightest" variants pick their disjoint sets by solving a maximum-weight
clique problem (:mod:`repro.pmi.embedding_graph`, :mod:`repro.pmi.cuts`).
The conditional probabilities are estimated with the paper's Algorithm 3
(shared-batch Monte Carlo) or computed exactly by possible-world enumeration
for small graphs (used in tests and the exact baseline).

The product forms above are exact only under the conditional-independence
argument the paper makes for its correlation model; under arbitrary
neighbor-edge factors they can overshoot the true SIP.  The conditionals are
therefore used as *selection weights* (the clique objective), while the
reported bounds are the measured probabilities of the witness events over the
same world collection:

* ``LowerB(f) = Pr(⋃_{i∈IN} Bfi)`` — a union over a subset of embeddings,
  always a valid lower bound;
* ``UpperB(f) = Pr(⋂_{i∈IN'} ¬Bci)`` — a present feature defeats every
  embedding cut, so this is always a valid upper bound.

This keeps the bounds sound for any correlation structure without giving up
the paper's optimized disjoint-set selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError, VerificationError
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.possible_worlds import enumerate_possible_worlds
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.isomorphism.embeddings import Embedding, find_embeddings
from repro.pmi.cuts import (
    Cut,
    best_disjoint_cuts,
    cuts_are_disjoint,
    enumerate_embedding_cuts,
)
from repro.pmi.embedding_graph import best_disjoint_embeddings
from repro.probability.sampling import WorldSampler, monte_carlo_sample_size
from repro.utils.rng import RandomLike, ensure_rng


@dataclass(frozen=True)
class BoundConfig:
    """Tuning knobs for SIP bound computation.

    Attributes
    ----------
    embedding_limit:
        Cap on enumerated embeddings per (feature, graph) pair.
    max_cuts, max_cut_size:
        Caps for minimal embedding-cut enumeration.
    num_samples:
        Monte-Carlo sample count for Algorithm 3; ``None`` uses the paper's
        ``(4 ln(2/ξ)) / τ²`` rule with ``xi``/``tau``.
    xi, tau:
        Monte-Carlo confidence/accuracy parameters.
    method:
        ``"sampling"`` (Algorithm 3) or ``"exact"`` (possible-world
        enumeration, small graphs only).
    optimize:
        True computes the tightest bounds via maximum-weight cliques
        (OPT-SIPBound in the paper's experiments); False uses a single
        arbitrary embedding / cut (the plain SIPBound baseline).
    """

    embedding_limit: int = 64
    max_cuts: int = 32
    max_cut_size: int = 4
    num_samples: int | None = 200
    xi: float = 0.05
    tau: float = 0.1
    method: str = "sampling"
    optimize: bool = True

    def resolved_sample_count(self) -> int:
        if self.num_samples is not None:
            return self.num_samples
        return monte_carlo_sample_size(self.xi, self.tau)


@dataclass(frozen=True)
class SipBounds:
    """The PMI cell for one (feature, graph) pair."""

    lower: float
    upper: float
    num_embeddings: int
    num_cuts: int
    chosen_embeddings: tuple[int, ...] = field(default=())
    chosen_cuts: tuple[int, ...] = field(default=())

    def is_empty(self) -> bool:
        """True when the feature does not occur in the graph at all."""
        return self.num_embeddings == 0

    def as_pair(self) -> tuple[float, float]:
        return (self.lower, self.upper)


def compute_sip_bounds(
    feature: LabeledGraph,
    graph: ProbabilisticGraph,
    config: BoundConfig | None = None,
    rng: RandomLike = None,
    embeddings: list[Embedding] | None = None,
) -> SipBounds:
    """Compute ``(LowerB(f), UpperB(f))`` for feature ``f`` against ``g``.

    ``embeddings`` optionally short-circuits enumeration with a precomputed
    list (must be the canonical-order output of :func:`find_embeddings` for
    this pair); block callers use it to batch the matching work per feature.
    """
    cfg = config or BoundConfig()
    generator = ensure_rng(rng)
    if embeddings is None:
        embeddings = find_embeddings(feature, graph.skeleton, limit=cfg.embedding_limit)
    if not embeddings:
        return SipBounds(lower=0.0, upper=0.0, num_embeddings=0, num_cuts=0)

    cuts = enumerate_embedding_cuts(
        embeddings, max_cuts=cfg.max_cuts, max_cut_size=cfg.max_cut_size
    )

    weighted_worlds = _weighted_worlds(graph, cfg, generator)
    embedding_probs, cut_probs = _conditional_probabilities(
        weighted_worlds, embeddings, cuts
    )

    if cfg.optimize:
        chosen_embeddings, _ = best_disjoint_embeddings(embeddings, embedding_probs)
        chosen_cuts, _ = best_disjoint_cuts(cuts, cut_probs)
    else:
        # plain SIPBound: a single arbitrary embedding / cut
        chosen_embeddings = _first_fit_disjoint_embeddings(embeddings)
        chosen_cuts = _first_fit_disjoint_cuts(cuts)

    lower, upper = _witness_event_probabilities(
        weighted_worlds, embeddings, chosen_embeddings, cuts, chosen_cuts
    )

    lower = min(1.0, max(0.0, lower))
    upper = min(1.0, max(lower, upper))  # keep the interval consistent
    return SipBounds(
        lower=lower,
        upper=upper,
        num_embeddings=len(embeddings),
        num_cuts=len(cuts),
        chosen_embeddings=tuple(chosen_embeddings),
        chosen_cuts=tuple(chosen_cuts),
    )


# ----------------------------------------------------------------------
# world collection and conditional probability estimation
# ----------------------------------------------------------------------
MAX_EXACT_BOUND_EDGES = 20


def _weighted_worlds(
    graph: ProbabilisticGraph, cfg: BoundConfig, rng
) -> list[tuple[frozenset, float]]:
    """The shared world collection: ``(present edges, weight)`` pairs.

    ``"exact"`` enumerates every possible world with its probability;
    ``"sampling"`` draws Algorithm 3's shared Monte-Carlo batch with unit
    weights.  Both the conditional estimates and the final witness-event
    probabilities are measured over this single collection.
    """
    if cfg.method == "exact":
        if graph.num_edges > MAX_EXACT_BOUND_EDGES:
            raise VerificationError(
                f"exact bound computation limited to {MAX_EXACT_BOUND_EDGES} "
                f"uncertain edges; graph has {graph.num_edges}"
            )
        return [(w.present_edges(), w.probability) for w in enumerate_possible_worlds(graph)]
    if cfg.method == "sampling":
        sampler = WorldSampler(graph, rng=rng)
        num_samples = cfg.resolved_sample_count()
        return [(sampler.sample_present_edges(), 1.0) for _ in range(num_samples)]
    raise ConfigurationError(f"unknown bound method {cfg.method!r}")


def _conditional_probabilities(
    weighted_worlds: list[tuple[frozenset, float]],
    embeddings: list[Embedding],
    cuts: list[Cut],
) -> tuple[list[float], list[float]]:
    """``Pr(Bfi | COR)`` and ``Pr(Bci | COM)`` over the world collection."""
    overlapping = _overlapping_embeddings(embeddings)
    embedding_probs: list[float] = []
    for index, embedding in enumerate(embeddings):
        others = overlapping[index]
        joint = 0.0
        conditioning = 0.0
        for present, weight in weighted_worlds:
            if all(not (embeddings[j].edges <= present) for j in others):
                conditioning += weight
                if embedding.edges <= present:
                    joint += weight
        embedding_probs.append(joint / conditioning if conditioning > 0 else 0.0)

    overlapping_cuts = _overlapping_cuts(cuts)
    cut_probs: list[float] = []
    for index, cut in enumerate(cuts):
        others = overlapping_cuts[index]
        joint = 0.0
        conditioning = 0.0
        for present, weight in weighted_worlds:
            # a cut "materializes" when every one of its edges is absent
            if all(cuts[j] & present for j in others):
                conditioning += weight
                if not (cut & present):
                    joint += weight
        cut_probs.append(joint / conditioning if conditioning > 0 else 0.0)
    return embedding_probs, cut_probs


def _witness_event_probabilities(
    weighted_worlds: list[tuple[frozenset, float]],
    embeddings: list[Embedding],
    chosen_embeddings: list[int],
    cuts: list[Cut],
    chosen_cuts: list[int],
) -> tuple[float, float]:
    """Measured probabilities of the two witness events over the worlds.

    The lower bound is the probability that at least one chosen embedding is
    fully present; the upper bound is the probability that every chosen cut
    keeps at least one edge present (no cut materializes).  With no cuts the
    upper bound degenerates to 1.0.
    """
    total = sum(weight for _, weight in weighted_worlds)
    if total <= 0.0:
        return 0.0, 1.0
    lower_mass = 0.0
    upper_mass = 0.0
    for present, weight in weighted_worlds:
        if any(embeddings[i].edges <= present for i in chosen_embeddings):
            lower_mass += weight
        if chosen_cuts and all(cuts[i] & present for i in chosen_cuts):
            upper_mass += weight
    lower = lower_mass / total
    upper = upper_mass / total if chosen_cuts else 1.0
    return lower, upper


def exact_sip(graph: ProbabilisticGraph, feature: LabeledGraph, max_edges: int = 20) -> float:
    """Exact ``Pr(f ⊆iso g)`` by possible-world enumeration (tests/baselines)."""
    if graph.num_edges > max_edges:
        raise VerificationError(
            f"exact SIP limited to {max_edges} uncertain edges; graph has {graph.num_edges}"
        )
    embeddings = find_embeddings(feature, graph.skeleton, limit=None)
    if not embeddings:
        return 0.0
    total = 0.0
    for world in enumerate_possible_worlds(graph):
        present = world.present_edges()
        if any(embedding.edges <= present for embedding in embeddings):
            total += world.probability
    return total


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _overlapping_embeddings(embeddings: list[Embedding]) -> list[list[int]]:
    """For each embedding, the indices of embeddings sharing an edge with it."""
    result: list[list[int]] = []
    for i, embedding in enumerate(embeddings):
        result.append(
            [j for j, other in enumerate(embeddings) if j != i and embedding.overlaps(other)]
        )
    return result


def _overlapping_cuts(cuts: list[Cut]) -> list[list[int]]:
    """For each cut, the indices of cuts sharing an edge with it."""
    result: list[list[int]] = []
    for i, cut in enumerate(cuts):
        result.append(
            [j for j, other in enumerate(cuts) if j != i and not cuts_are_disjoint(cut, other)]
        )
    return result


def _first_fit_disjoint_embeddings(embeddings: list[Embedding]) -> list[int]:
    """Non-optimized selection (plain SIPBound): keep only the first embedding,
    which is deliberately looser than the maximum-weight-clique choice."""
    return [0] if embeddings else []


def _first_fit_disjoint_cuts(cuts: list[Cut]) -> list[int]:
    """Non-optimized cut selection (plain SIPBound): first cut only."""
    return [0] if cuts else []
