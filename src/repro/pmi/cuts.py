"""Embedding cuts and the parallel graph ``cG`` (Section 4.1.2, Figure 8).

An *embedding cut* of feature ``f`` in skeleton ``gc`` is a set of ``gc``
edges whose removal destroys every embedding of ``f``; a cut is minimal when
no proper subset is also a cut.  Theorem 6 identifies minimal embedding cuts
with the minimal s-t edge cuts of a "parallel graph" ``cG`` in which each
embedding becomes a parallel s→t path of its edges.  Cutting every parallel
path means hitting at least one edge of every embedding, so minimal embedding
cuts are exactly the *minimal hitting sets (transversals)* of the embeddings'
edge sets — which is how we enumerate them.

The explicit ``cG`` construction is also provided so tests can exercise the
paper's transformation literally.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from itertools import combinations

from repro.graphs.labeled_graph import LabeledGraph
from repro.isomorphism.embeddings import Embedding
from repro.pmi.max_clique import maximum_weight_clique
from repro.exceptions import ConfigurationError

EdgeKey = tuple
Cut = frozenset

DEFAULT_MAX_CUTS = 64
DEFAULT_MAX_CUT_SIZE = 4


def build_parallel_graph(embeddings: Sequence[Embedding]) -> LabeledGraph:
    """Materialize the parallel graph ``cG`` of Figure 8.

    Each embedding with k edges becomes a line of k labeled edges between
    fresh nodes, spliced between the shared terminals ``s`` and ``t`` through
    unlabeled connector edges.  Edge labels carry the original edge keys so a
    cut of ``cG`` can be mapped back to skeleton edges.
    """
    graph = LabeledGraph(name="parallel-graph")
    graph.add_vertex("s", "terminal")
    graph.add_vertex("t", "terminal")
    for index, embedding in enumerate(embeddings):
        ordered = sorted(embedding.edges, key=repr)
        if not ordered:
            continue
        # k edges need k + 1 line nodes
        line_nodes = [("line", index, position) for position in range(len(ordered) + 1)]
        for node in line_nodes:
            graph.add_vertex(node, "line-node")
        for position, key in enumerate(ordered):
            graph.add_edge(line_nodes[position], line_nodes[position + 1], key)
        graph.add_edge("s", line_nodes[0], None)  # connector edges carry no label
        graph.add_edge(line_nodes[-1], "t", None)
    return graph


def enumerate_embedding_cuts(
    embeddings: Sequence[Embedding],
    max_cuts: int = DEFAULT_MAX_CUTS,
    max_cut_size: int = DEFAULT_MAX_CUT_SIZE,
) -> list[Cut]:
    """Minimal embedding cuts = minimal hitting sets of the embedding edge sets.

    Enumerates by increasing cut size so that the small (and therefore most
    probable and most useful) cuts are found first; stops after ``max_cuts``
    cuts or ``max_cut_size`` edges per cut.

    Returns
    -------
    list[frozenset]:
        Minimal cuts, each a frozenset of skeleton edge keys.
    """
    if not embeddings:
        return []
    edge_sets = [set(e.edges) for e in embeddings]
    universe = sorted({key for edges in edge_sets for key in edges}, key=repr)
    cuts: list[Cut] = []
    for size in range(1, min(max_cut_size, len(universe)) + 1):
        for candidate in combinations(universe, size):
            candidate_set = frozenset(candidate)
            if any(existing <= candidate_set for existing in cuts):
                continue  # not minimal: contains a smaller cut
            if all(candidate_set & edges for edges in edge_sets):
                cuts.append(candidate_set)
                if len(cuts) >= max_cuts:
                    return cuts
    return cuts


def cuts_are_disjoint(cut_a: Cut, cut_b: Cut) -> bool:
    """Cuts are disjoint when they share no skeleton edge."""
    return not (cut_a & cut_b)


def build_cut_graph(
    cuts: Sequence[Cut], probabilities: Sequence[float]
) -> tuple[dict[int, set], dict[int, float]]:
    """Compatibility graph over cuts, analogous to the embedding graph ``fG``.

    Node weights are ``-ln(1 - Pr(Bci | COM))``; links join edge-disjoint
    cuts.  The maximum-weight clique with weight ``v`` yields the tightest
    upper bound ``UpperB(f) = e^{-v}`` (Equation 20).
    """
    if len(cuts) != len(probabilities):
        raise ConfigurationError("cuts and probabilities must be index-aligned")
    adjacency: dict[int, set] = {i: set() for i in range(len(cuts))}
    for i in range(len(cuts)):
        for j in range(i + 1, len(cuts)):
            if cuts_are_disjoint(cuts[i], cuts[j]):
                adjacency[i].add(j)
                adjacency[j].add(i)
    clamp = 1e-12
    weights = {
        i: -math.log(1.0 - min(1.0 - clamp, max(0.0, p))) for i, p in enumerate(probabilities)
    }
    return adjacency, weights


def best_disjoint_cuts(
    cuts: Sequence[Cut], probabilities: Sequence[float]
) -> tuple[list[int], float]:
    """Select the disjoint cut set giving the tightest upper bound.

    Returns
    -------
    (indices, upper_bound):
        Selected cut indices and ``e^{-v}`` for the clique weight ``v``.
        With no cuts the bound degenerates to 1.0 (no pruning power).
    """
    if not cuts:
        return [], 1.0
    adjacency, weights = build_cut_graph(cuts, probabilities)
    clique, weight = maximum_weight_clique(adjacency, weights)
    upper_bound = math.exp(-weight)
    return clique, min(1.0, max(0.0, upper_bound))


def upper_bound_from_probabilities(probabilities: Sequence[float]) -> float:
    """``Π (1 - p_i)`` for an already-chosen disjoint cut set (Equation 20)."""
    product = 1.0
    for p in probabilities:
        product *= 1.0 - min(1.0, max(0.0, p))
    return product
