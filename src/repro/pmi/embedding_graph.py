"""The embedding compatibility graph ``fG`` (Section 4.1.1, Figure 7).

Nodes are the embeddings of a feature ``f`` in a probabilistic graph's
skeleton; two nodes are linked when the embeddings are edge-disjoint; node
weights are ``-ln(1 - Pr(Bfi | COR))``.  A maximum-weight clique of ``fG``
with total weight ``v`` yields the tightest lower bound
``LowerB(f) = 1 - e^{-v}`` of Equation 17.

This module builds ``fG`` and selects the best disjoint embedding set; the
conditional probabilities themselves are estimated in
:mod:`repro.pmi.bounds`.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.isomorphism.embeddings import Embedding
from repro.pmi.max_clique import maximum_weight_clique
from repro.exceptions import ConfigurationError

# Probabilities are clamped away from 1.0 so that -ln(1 - p) stays finite;
# an embedding that is "certain" still contributes a very large finite weight.
PROBABILITY_CLAMP = 1e-12


def disjointness_weight(probability: float) -> float:
    """Node weight ``-ln(1 - p)`` with clamping to keep the value finite."""
    p = min(1.0 - PROBABILITY_CLAMP, max(0.0, probability))
    return -math.log(1.0 - p)


def build_embedding_graph(
    embeddings: Sequence[Embedding],
    probabilities: Sequence[float],
) -> tuple[dict[int, set], dict[int, float]]:
    """Build the embedding graph ``fG``.

    Parameters
    ----------
    embeddings:
        The embeddings ``Ef`` of a feature in one data graph.
    probabilities:
        ``Pr(Bfi | COR)`` for each embedding, index-aligned with
        ``embeddings``.

    Returns
    -------
    (adjacency, weights):
        Node identifiers are embedding indices; adjacency links edge-disjoint
        embeddings; weights are ``-ln(1 - p_i)``.
    """
    if len(embeddings) != len(probabilities):
        raise ConfigurationError("embeddings and probabilities must be index-aligned")
    adjacency: dict[int, set] = {i: set() for i in range(len(embeddings))}
    for i in range(len(embeddings)):
        for j in range(i + 1, len(embeddings)):
            if embeddings[i].is_edge_disjoint(embeddings[j]):
                adjacency[i].add(j)
                adjacency[j].add(i)
    weights = {i: disjointness_weight(p) for i, p in enumerate(probabilities)}
    return adjacency, weights


def best_disjoint_embeddings(
    embeddings: Sequence[Embedding],
    probabilities: Sequence[float],
) -> tuple[list[int], float]:
    """The maximum-weight clique of ``fG`` and the implied lower bound.

    Returns
    -------
    (indices, lower_bound):
        The selected embedding indices and ``1 - e^{-v}`` where ``v`` is the
        clique weight.
    """
    if not embeddings:
        return [], 0.0
    adjacency, weights = build_embedding_graph(embeddings, probabilities)
    clique, weight = maximum_weight_clique(adjacency, weights)
    lower_bound = 1.0 - math.exp(-weight)
    return clique, min(1.0, max(0.0, lower_bound))


def lower_bound_from_probabilities(probabilities: Mapping[int, float] | Sequence[float]) -> float:
    """``1 - Π (1 - p_i)`` for an already-chosen disjoint set (Equation 17)."""
    if isinstance(probabilities, Mapping):
        values = list(probabilities.values())
    else:
        values = list(probabilities)
    survival = 1.0
    for p in values:
        survival *= 1.0 - min(1.0, max(0.0, p))
    return 1.0 - survival
