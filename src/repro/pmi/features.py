"""Feature mining and selection (Section 4.2, Algorithm 4).

The PMI index rows are *features*: small deterministic graphs mined from the
deterministic skeletons ``Dc``.  The paper selects features that are

* **frequent** under a disjointness-aware frequency,
  ``frq(f) = |{g : f ⊆iso gc and |IN|/|Ef| ≥ α}| / |D| ≥ β`` — a graph only
  counts towards the support of ``f`` when a sufficiently large fraction of
  ``f``'s embeddings in it are pairwise edge-disjoint (Rule 1: disjoint
  embeddings make tight bounds), and
* **discriminative**, ``dis(f) = |∩ {Df' : f' ⊆iso f}| / |Df| > γ`` — a
  feature is only worth indexing when it prunes graphs its indexed
  sub-features cannot (following gIndex [37]),
* **small**, controlled by ``max_vertices`` (the paper's ``maxL``;
  Rule 2: small features give large conditional probabilities).

Mining proceeds by pattern growth: single-edge seeds are extended one edge at
a time along their embeddings in the data graphs, deduplicated by canonical
form, and scored level by level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphs.canonical import canonical_form
from repro.graphs.labeled_graph import LabeledGraph, edge_key
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.isomorphism.embeddings import (
    find_embeddings_block,
    maximal_disjoint_embeddings,
)


@dataclass(frozen=True)
class FeatureSelectionConfig:
    """Parameters of Algorithm 4 (defaults follow the paper's 0.1/0.15 range)."""

    alpha: float = 0.15
    beta: float = 0.15
    gamma: float = 0.15
    max_vertices: int = 4
    max_features: int = 60
    max_candidates_per_level: int = 200
    embedding_limit: int = 64


@dataclass
class Feature:
    """One indexed feature: its graph, identifier and supporting graphs."""

    feature_id: int
    graph: LabeledGraph
    support: frozenset = field(default_factory=frozenset)
    canonical: str = ""

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def __repr__(self) -> str:
        return (
            f"Feature(id={self.feature_id}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, support={len(self.support)})"
        )


class FeatureMiner:
    """Frequent-and-discriminative feature mining over a graph database."""

    def __init__(self, config: FeatureSelectionConfig | None = None) -> None:
        self.config = config or FeatureSelectionConfig()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def mine(self, database: list[ProbabilisticGraph]) -> list[Feature]:
        """Run Algorithm 4 over the database's deterministic skeletons."""
        skeletons = {index: graph.skeleton for index, graph in enumerate(database)}
        if not skeletons:
            return []
        selected: list[Feature] = []
        selected_supports: dict[str, frozenset] = {}

        level_graphs = self._single_edge_seeds(skeletons)
        next_feature_id = 0
        current_vertices = 2
        while level_graphs and current_vertices <= self.config.max_vertices:
            scored = []
            for candidate in level_graphs:
                support, qualified = self._support(candidate, skeletons)
                if not support:
                    continue
                frequency = len(qualified) / len(skeletons)
                if frequency < self.config.beta:
                    continue
                if not self._is_discriminative(candidate, support, selected, selected_supports):
                    continue
                scored.append((candidate, support, frequency))
            # prefer frequent candidates; small ones are generated first anyway
            scored.sort(key=lambda item: (-item[2], item[0].num_edges, canonical_form(item[0])))
            for candidate, support, _frequency in scored:
                if len(selected) >= self.config.max_features:
                    break
                feature = Feature(
                    feature_id=next_feature_id,
                    graph=candidate,
                    support=support,
                    canonical=canonical_form(candidate),
                )
                selected.append(feature)
                selected_supports[feature.canonical] = support
                next_feature_id += 1
            if len(selected) >= self.config.max_features:
                break
            level_graphs = self._grow(
                [item[0] for item in scored], skeletons
            )
            current_vertices += 1
        return selected

    # ------------------------------------------------------------------
    # candidate generation
    # ------------------------------------------------------------------
    def _single_edge_seeds(self, skeletons: dict[int, LabeledGraph]) -> list[LabeledGraph]:
        """All distinct single-edge features present in the database."""
        seen: dict[str, LabeledGraph] = {}
        for skeleton in skeletons.values():
            for edge in skeleton.edges():
                seed = LabeledGraph()
                seed.add_vertex(0, skeleton.vertex_label(edge.u))
                seed.add_vertex(1, skeleton.vertex_label(edge.v))
                seed.add_edge(0, 1, edge.label)
                key = canonical_form(seed)
                if key not in seen:
                    seen[key] = seed
        return sorted(seen.values(), key=canonical_form)

    def _grow(
        self, parents: list[LabeledGraph], skeletons: dict[int, LabeledGraph]
    ) -> list[LabeledGraph]:
        """Extend parent features by one edge along their data-graph embeddings."""
        candidates: dict[str, LabeledGraph] = {}
        skeleton_list = list(skeletons.values())
        for parent in parents:
            embeddings_per_skeleton = find_embeddings_block(
                parent, skeleton_list, limit=self.config.embedding_limit
            )
            for skeleton, embeddings in zip(skeleton_list, embeddings_per_skeleton):
                for embedding in embeddings:
                    extensions = self._extensions_of(embedding.edges, skeleton)
                    for extension_edges in extensions:
                        candidate = _rebuild_feature(skeleton, extension_edges)
                        if candidate.num_vertices > self.config.max_vertices:
                            continue
                        key = canonical_form(candidate)
                        if key not in candidates:
                            candidates[key] = candidate
                        if len(candidates) >= self.config.max_candidates_per_level:
                            return sorted(candidates.values(), key=canonical_form)
        return sorted(candidates.values(), key=canonical_form)

    @staticmethod
    def _extensions_of(embedding_edges: frozenset, skeleton: LabeledGraph) -> list[frozenset]:
        """Edge sets that extend an embedding by one adjacent skeleton edge."""
        vertices = set()
        for u, v in embedding_edges:
            vertices.add(u)
            vertices.add(v)
        extensions = []
        # sorted: extension order decides which candidates land before the
        # per-level cap, and raw set order is hash-seed dependent for str ids
        for vertex in sorted(vertices, key=repr):
            for neighbor in skeleton.neighbors(vertex):
                key = edge_key(vertex, neighbor)
                if key not in embedding_edges:
                    extensions.append(frozenset(embedding_edges | {key}))
        return extensions

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def _support(
        self, candidate: LabeledGraph, skeletons: dict[int, LabeledGraph]
    ) -> tuple[frozenset, frozenset]:
        """(support, qualified-support) of a candidate feature.

        ``support`` is every graph containing the feature; ``qualified`` only
        counts graphs where the disjoint-embedding ratio reaches ``alpha``
        (the frequency of Algorithm 4 uses the qualified set).
        """
        containing = set()
        qualified = set()
        embeddings_per_skeleton = find_embeddings_block(
            candidate, skeletons.values(), limit=self.config.embedding_limit
        )
        for (index, _skeleton), embeddings in zip(skeletons.items(), embeddings_per_skeleton):
            if not embeddings:
                continue
            containing.add(index)
            disjoint = maximal_disjoint_embeddings(embeddings)
            if len(disjoint) / len(embeddings) >= self.config.alpha:
                qualified.add(index)
        return frozenset(containing), frozenset(qualified)

    def _is_discriminative(
        self,
        candidate: LabeledGraph,
        support: frozenset,
        selected: list[Feature],
        selected_supports: dict[str, frozenset],
    ) -> bool:
        """``dis(f) = |∩ Df'| / |Df| > γ`` over indexed sub-features of f."""
        if not support:
            return False
        subfeature_supports = [
            selected_supports[feature.canonical]
            for feature in selected
            if feature.num_edges < candidate.num_edges
            and _is_subfeature(feature.graph, candidate)
        ]
        if not subfeature_supports:
            return True
        intersection = set(subfeature_supports[0])
        for other in subfeature_supports[1:]:
            intersection &= other
        return (len(intersection) / len(support)) > self.config.gamma


def _is_subfeature(small: LabeledGraph, large: LabeledGraph) -> bool:
    from repro.isomorphism.vf2 import is_subgraph_isomorphic

    return is_subgraph_isomorphic(small, large)


def _rebuild_feature(skeleton: LabeledGraph, edges: frozenset) -> LabeledGraph:
    """Copy an edge-induced subgraph of a data graph with fresh vertex ids."""
    sub = skeleton.subgraph_by_edges(edges)
    mapping = {vertex: index for index, vertex in enumerate(sorted(sub.vertices(), key=repr))}
    return sub.relabel_vertices(mapping)
