"""The Probabilistic Matrix Index (PMI) itself (Section 3.1, Figure 4).

Rows are indexed features, columns are probabilistic graphs; each cell holds
``(LowerB(f), UpperB(f))`` — the SIP bounds of the feature against that
graph — or the empty entry when the feature does not occur in the graph's
skeleton at all.  The index also remembers which relaxed-query-to-feature
relationships it can answer quickly (sub/super-feature tests are delegated to
VF2 at query time; the index caches per-feature metadata to keep those tests
cheap).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.exceptions import IndexError_
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.pmi.bounds import BoundConfig, SipBounds, compute_sip_bounds
from repro.pmi.features import Feature, FeatureMiner, FeatureSelectionConfig
from repro.utils.rng import RandomLike, ensure_rng
from repro.utils.timer import Timer


@dataclass(frozen=True)
class PMIEntry:
    """One PMI cell: feature id, graph id, and the SIP bounds."""

    feature_id: int
    graph_id: int
    bounds: SipBounds


class ProbabilisticMatrixIndex:
    """Feature-by-graph matrix of SIP bounds.

    Typical usage::

        index = ProbabilisticMatrixIndex()
        index.build(database)                      # mines features, fills cells
        entries = index.bounds_for_graph(graph_id) # {feature_id: SipBounds}
    """

    def __init__(
        self,
        feature_config: FeatureSelectionConfig | None = None,
        bound_config: BoundConfig | None = None,
    ) -> None:
        self.feature_config = feature_config or FeatureSelectionConfig()
        self.bound_config = bound_config or BoundConfig()
        self.features: list[Feature] = []
        self._matrix: dict[int, dict[int, SipBounds]] = {}
        self._built = False
        self.build_seconds = 0.0
        self.database_size = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(
        self,
        database: list[ProbabilisticGraph],
        features: list[Feature] | None = None,
        rng: RandomLike = None,
    ) -> "ProbabilisticMatrixIndex":
        """Mine features (unless provided) and fill every PMI cell."""
        generator = ensure_rng(rng)
        timer = Timer()
        with timer:
            if features is None:
                miner = FeatureMiner(self.feature_config)
                self.features = miner.mine(database)
            else:
                self.features = list(features)
            self._matrix = {}
            for graph_id, graph in enumerate(database):
                row: dict[int, SipBounds] = {}
                for feature in self.features:
                    bounds = compute_sip_bounds(
                        feature.graph, graph, config=self.bound_config, rng=generator
                    )
                    if not bounds.is_empty():
                        row[feature.feature_id] = bounds
                self._matrix[graph_id] = row
        self.build_seconds = timer.elapsed
        self.database_size = len(database)
        self._built = True
        return self

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def _require_built(self) -> None:
        if not self._built:
            raise IndexError_("the PMI has not been built yet; call build() first")

    @property
    def num_features(self) -> int:
        return len(self.features)

    def feature_by_id(self, feature_id: int) -> Feature:
        self._require_built()
        for feature in self.features:
            if feature.feature_id == feature_id:
                return feature
        raise IndexError_(f"unknown feature id {feature_id!r}")

    def bounds_for_graph(self, graph_id: int) -> dict[int, SipBounds]:
        """The ``Dg`` of Section 3.1: {feature_id: bounds} for one graph."""
        self._require_built()
        if graph_id not in self._matrix:
            raise IndexError_(f"graph id {graph_id!r} is not indexed")
        return dict(self._matrix[graph_id])

    def bounds(self, graph_id: int, feature_id: int) -> SipBounds | None:
        """Bounds for one cell, or None when the feature is absent from the graph."""
        self._require_built()
        return self._matrix.get(graph_id, {}).get(feature_id)

    def entries(self) -> list[PMIEntry]:
        """Every non-empty cell as a flat list (useful for inspection/tests)."""
        self._require_built()
        result = []
        for graph_id, row in self._matrix.items():
            for feature_id, bounds in row.items():
                result.append(PMIEntry(feature_id=feature_id, graph_id=graph_id, bounds=bounds))
        return result

    def graphs_containing_feature(self, feature_id: int) -> list[int]:
        """Graph ids whose skeleton contains the feature (non-empty cell)."""
        self._require_built()
        return sorted(
            graph_id for graph_id, row in self._matrix.items() if feature_id in row
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def size_in_bytes(self) -> int:
        """Rough in-memory footprint of the matrix (Figure 12(d) metric)."""
        self._require_built()
        total = sys.getsizeof(self._matrix)
        for row in self._matrix.values():
            total += sys.getsizeof(row)
            # each cell stores two floats plus bookkeeping; a fixed per-cell
            # estimate keeps the metric stable across Python versions
            total += 64 * len(row)
        for feature in self.features:
            total += 48 * (feature.num_vertices + feature.num_edges)
        return total

    def summary(self) -> dict:
        """Human-readable build summary used by examples and benchmarks."""
        self._require_built()
        cells = sum(len(row) for row in self._matrix.values())
        return {
            "database_size": self.database_size,
            "num_features": self.num_features,
            "non_empty_cells": cells,
            "build_seconds": round(self.build_seconds, 4),
            "index_bytes": self.size_in_bytes(),
        }

    def __repr__(self) -> str:
        state = "built" if self._built else "unbuilt"
        return (
            f"ProbabilisticMatrixIndex({state}, features={len(self.features)}, "
            f"graphs={self.database_size})"
        )
