"""The Probabilistic Matrix Index (PMI) itself (Section 3.1, Figure 4).

Rows are indexed features, columns are probabilistic graphs; each cell holds
``(LowerB(f), UpperB(f))`` — the SIP bounds of the feature against that
graph — or the empty entry when the feature does not occur in the graph's
skeleton at all.

The matrix is stored *columnar*: dense ``float64`` arrays
``lower[graph, feature]`` / ``upper[graph, feature]`` plus a boolean presence
mask, with per-cell embedding/cut counts in parallel ``int32`` arrays and the
(rare, variable-length) chosen embedding/cut index tuples in a sparse side
table.  The dict-of-dicts view of Section 3.1 is still available through
:meth:`bounds_for_graph`, but the query hot path reads zero-copy row views
(:class:`PMIRow`) so probabilistic pruning never materializes per-graph
dictionaries.  Feature lookup by id is a dict hit, and the whole index can be
persisted with :meth:`save` (``.npz`` arrays + JSON feature metadata) and
rebuilt with :meth:`load` so one expensive build can serve many processes.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import IndexError_
from repro.graphs.io import labeled_graph_from_dict, labeled_graph_to_dict
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.pmi.bounds import BoundConfig, SipBounds, compute_sip_bounds
from repro.pmi.features import Feature, FeatureMiner, FeatureSelectionConfig
from repro.utils.atomic_io import atomic_write_text, atomic_writer
from repro.utils.rng import BUILD_STREAM, RandomLike, derive_rng, rng_root
from repro.utils.rows import resolve_row_selector
from repro.utils.timer import Timer

# BUILD_STREAM (re-exported from repro.utils.rng): each graph's SIP-bound
# sampling draws from derive_rng(root, BUILD_STREAM, stable graph id), so
# building a row slice in a worker process — or appending a delta row to a
# mutable catalog years later — yields cells identical to the same rows of a
# sequential full build under the same root.

PERSIST_FORMAT_VERSION = 1
ARRAYS_FILENAME = "pmi_arrays.npz"
META_FILENAME = "pmi_meta.json"


@dataclass(frozen=True)
class PMIEntry:
    """One PMI cell: feature id, graph id, and the SIP bounds."""

    feature_id: int
    graph_id: int
    bounds: SipBounds


@dataclass(frozen=True)
class PMIRow:
    """Zero-copy view of one graph's PMI row.

    ``lower``/``upper``/``present`` are views into the index's column-major
    storage (never copies); ``feature_ids`` is the shared feature-id vector,
    index-aligned with the three value arrays.
    """

    graph_id: int
    feature_ids: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    present: np.ndarray

    def interval(self, column: int) -> tuple[float, float]:
        return (float(self.lower[column]), float(self.upper[column]))


class ProbabilisticMatrixIndex:
    """Feature-by-graph matrix of SIP bounds.

    Typical usage::

        index = ProbabilisticMatrixIndex()
        index.build(database)                      # mines features, fills cells
        entries = index.bounds_for_graph(graph_id) # {feature_id: SipBounds}
        row = index.row(graph_id)                  # zero-copy columnar view
    """

    def __init__(
        self,
        feature_config: FeatureSelectionConfig | None = None,
        bound_config: BoundConfig | None = None,
    ) -> None:
        self.feature_config = feature_config or FeatureSelectionConfig()
        self.bound_config = bound_config or BoundConfig()
        self.features: list[Feature] = []
        self._feature_ids: np.ndarray = np.empty(0, dtype=np.int64)
        self._feature_pos: dict[int, int] = {}
        self._features_by_id: dict[int, Feature] = {}
        self._lower: np.ndarray = np.empty((0, 0))
        self._upper: np.ndarray = np.empty((0, 0))
        self._present: np.ndarray = np.empty((0, 0), dtype=bool)
        self._num_embeddings: np.ndarray = np.empty((0, 0), dtype=np.int32)
        self._num_cuts: np.ndarray = np.empty((0, 0), dtype=np.int32)
        # (graph_id, feature_id) -> (chosen embedding indices, chosen cut indices)
        self._chosen: dict[tuple[int, int], tuple[tuple[int, ...], tuple[int, ...]]] = {}
        self._built = False
        self.build_seconds = 0.0
        self.database_size = 0
        # 64-bit root of the build streams; delta appends (GraphCatalog) must
        # reuse it so appended rows equal a from-scratch build's rows
        self.build_root: int | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(
        self,
        database: list[ProbabilisticGraph],
        features: list[Feature] | None = None,
        rng: RandomLike = None,
        graph_id_offset: int = 0,
        graph_ids=None,
    ) -> "ProbabilisticMatrixIndex":
        """Mine features (unless provided) and fill every PMI cell.

        Monte-Carlo SIP-bound sampling derives one RNG stream per graph from
        ``(rng, BUILD_STREAM, stable graph id)``, where the stable id of row
        ``k`` is ``graph_ids[k]`` when given and ``graph_id_offset + k``
        otherwise.  A shard build over ``database[start:stop]`` with
        ``graph_id_offset=start`` (and the globally mined ``features``)
        therefore produces exactly the rows a sequential full build would —
        regardless of which worker process runs it — and a build with
        explicit ``graph_ids`` produces exactly the rows a
        :class:`~repro.core.catalog.GraphCatalog` assembles for the same
        (id → graph) mapping under the same root.
        """
        if graph_ids is not None and graph_id_offset != 0:
            raise IndexError_("pass graph_ids or graph_id_offset, not both")
        root = rng_root(rng)
        timer = Timer()
        with timer:
            if features is None:
                miner = FeatureMiner(self.feature_config)
                self.features = miner.mine(database)
            else:
                self.features = list(features)
            self._index_features()
            num_graphs = len(database)
            if graph_ids is None:
                stable_ids = [graph_id_offset + row for row in range(num_graphs)]
            else:
                stable_ids = [int(gid) for gid in graph_ids]
                if len(stable_ids) != num_graphs:
                    raise IndexError_(
                        f"graph_ids has {len(stable_ids)} entries for "
                        f"{num_graphs} graphs"
                    )
            num_features = len(self.features)
            self._allocate(num_graphs, num_features)
            for graph_id, graph in enumerate(database):
                self._fill_row(graph_id, graph, root, stable_ids[graph_id])
        self.build_seconds = timer.elapsed
        self.database_size = len(database)
        self._built = True
        self.build_root = root
        return self

    def _fill_row(self, row: int, graph: ProbabilisticGraph, root: int, stable_id: int) -> None:
        """Compute one graph's cells with its private BUILD_STREAM generator."""
        graph_rng = derive_rng(root, BUILD_STREAM, stable_id)
        for column, feature in enumerate(self.features):
            bounds = compute_sip_bounds(
                feature.graph, graph, config=self.bound_config, rng=graph_rng
            )
            if not bounds.is_empty():
                self._store_cell(row, column, feature.feature_id, bounds)

    @classmethod
    def empty(
        cls,
        features: list[Feature],
        feature_config: FeatureSelectionConfig | None = None,
        bound_config: BoundConfig | None = None,
    ) -> "ProbabilisticMatrixIndex":
        """A built, zero-row index over a pinned feature set.

        This is the seed of a catalog delta segment: rows arrive later via
        :meth:`append`, one per mutation, against the same feature columns as
        the immutable base matrix.
        """
        index = cls(feature_config=feature_config, bound_config=bound_config)
        index.features = list(features)
        index._index_features()
        index._allocate(0, len(index.features))
        index._built = True
        return index

    def append(
        self, graphs: list[ProbabilisticGraph], graph_ids, rng: RandomLike = None
    ) -> "ProbabilisticMatrixIndex":
        """Append one row per graph, keeping the existing feature columns.

        ``graph_ids[k]`` is the stable id of appended graph ``k``; its cells
        are computed with ``derive_rng(rng, BUILD_STREAM, graph_ids[k])`` —
        the exact generator :meth:`build` would use for that id — so an
        append under the same root as the base build yields rows
        byte-identical to a from-scratch build over the grown database.
        Existing rows are never touched (append-only).
        """
        self._require_built()
        stable_ids = [int(gid) for gid in graph_ids]
        if len(stable_ids) != len(graphs):
            raise IndexError_(
                f"graph_ids has {len(stable_ids)} entries for {len(graphs)} graphs"
            )
        root = rng_root(rng)
        old_rows = self._present.shape[0]
        grow = len(graphs)
        num_features = len(self.features)
        self._lower = np.vstack([self._lower, np.zeros((grow, num_features))])
        self._upper = np.vstack([self._upper, np.zeros((grow, num_features))])
        self._present = np.vstack(
            [self._present, np.zeros((grow, num_features), dtype=bool)]
        )
        self._num_embeddings = np.vstack(
            [self._num_embeddings, np.zeros((grow, num_features), dtype=np.int32)]
        )
        self._num_cuts = np.vstack(
            [self._num_cuts, np.zeros((grow, num_features), dtype=np.int32)]
        )
        for offset, graph in enumerate(graphs):
            self._fill_row(old_rows + offset, graph, root, stable_ids[offset])
        self.database_size = self._present.shape[0]
        return self

    @classmethod
    def concat_rows(
        cls, parts: list["ProbabilisticMatrixIndex"]
    ) -> "ProbabilisticMatrixIndex":
        """Row-stack built indexes sharing one feature set into a fresh index.

        This is :meth:`~repro.core.catalog.GraphCatalog.compact`'s merge
        step: base and delta segments (already :meth:`subset` down to their
        live rows) become one new dense base matrix.  All parts must carry
        identical feature lists and build configurations.
        """
        if not parts:
            raise IndexError_("concat_rows() needs at least one part")
        first = parts[0]
        first._require_built()
        fingerprint = [(f.feature_id, f.canonical) for f in first.features]
        for part in parts[1:]:
            part._require_built()
            if (
                [(f.feature_id, f.canonical) for f in part.features] != fingerprint
                or part.feature_config != first.feature_config
                or part.bound_config != first.bound_config
            ):
                raise IndexError_(
                    "concat_rows() requires identical features and configs in every part"
                )
        merged = cls(
            feature_config=first.feature_config, bound_config=first.bound_config
        )
        merged.features = list(first.features)
        merged._index_features()
        merged._lower = np.vstack([part._lower for part in parts])
        merged._upper = np.vstack([part._upper for part in parts])
        merged._present = np.vstack([part._present for part in parts])
        merged._num_embeddings = np.vstack([part._num_embeddings for part in parts])
        merged._num_cuts = np.vstack([part._num_cuts for part in parts])
        merged._chosen = {}
        row_offset = 0
        for part in parts:
            for (row, feature_id), chosen in part._chosen.items():
                merged._chosen[(row + row_offset, feature_id)] = chosen
            row_offset += part._present.shape[0]
        merged.database_size = merged._present.shape[0]
        merged.build_root = first.build_root
        merged._built = True
        return merged

    # ------------------------------------------------------------------
    # shared-memory arena interchange
    # ------------------------------------------------------------------
    ARENA_ARRAY_KEYS = ("lower", "upper", "present", "num_embeddings", "num_cuts")

    def arena_arrays(self) -> dict[str, np.ndarray]:
        """The five dense matrices, keyed for a shard-arena pack.

        Together with :meth:`arena_meta` this is everything
        :meth:`from_arrays` needs to reassemble an equivalent index without
        copying a single cell (the arena stores the arrays; the meta blob
        carries the rest).
        """
        self._require_built()
        return {
            "lower": self._lower,
            "upper": self._upper,
            "present": self._present,
            "num_embeddings": self._num_embeddings,
            "num_cuts": self._num_cuts,
        }

    def arena_meta(self) -> dict:
        """The non-array state of a built index (goes into the meta blob)."""
        self._require_built()
        return {
            "chosen": dict(self._chosen),
            "database_size": self.database_size,
            "build_root": self.build_root,
        }

    @classmethod
    def from_arrays(
        cls,
        arrays,
        features: list[Feature],
        feature_config: FeatureSelectionConfig,
        bound_config: BoundConfig,
        meta: dict,
    ) -> "ProbabilisticMatrixIndex":
        """Adopt dense matrices *without copying* — the worker attach path.

        ``arrays`` maps the :data:`ARENA_ARRAY_KEYS` to (typically read-only,
        shared-memory-backed) matrices of identical ``(rows, features)``
        shape; ``meta`` is :meth:`arena_meta`'s dict.  The resulting index is
        read-only by convention: every query path only ever reads rows, and
        mutation paths (:meth:`append`) replace the arrays wholesale via
        ``vstack`` rather than writing in place, so even they stay safe.
        """
        index = cls(feature_config=feature_config, bound_config=bound_config)
        index.features = list(features)
        index._index_features()
        rows = int(meta["database_size"])
        expected = (rows, len(index.features))
        for key in cls.ARENA_ARRAY_KEYS:
            if key not in arrays:
                raise IndexError_(f"from_arrays() is missing the {key!r} matrix")
            if arrays[key].shape != expected:
                raise IndexError_(
                    f"from_arrays() got {key!r} with shape {arrays[key].shape}, "
                    f"expected {expected}"
                )
        index._lower = arrays["lower"]
        index._upper = arrays["upper"]
        index._present = arrays["present"]
        index._num_embeddings = arrays["num_embeddings"]
        index._num_cuts = arrays["num_cuts"]
        index._chosen = {
            (int(graph_id), int(feature_id)): (tuple(embeddings), tuple(cuts))
            for (graph_id, feature_id), (embeddings, cuts) in meta["chosen"].items()
        }
        index.database_size = rows
        index.build_root = meta.get("build_root")
        index._built = True
        return index

    def _index_features(self) -> None:
        self._feature_ids = np.array(
            [feature.feature_id for feature in self.features], dtype=np.int64
        )
        self._feature_pos = {
            feature.feature_id: column for column, feature in enumerate(self.features)
        }
        self._features_by_id = {feature.feature_id: feature for feature in self.features}

    def _allocate(self, num_graphs: int, num_features: int) -> None:
        self._lower = np.zeros((num_graphs, num_features))
        self._upper = np.zeros((num_graphs, num_features))
        self._present = np.zeros((num_graphs, num_features), dtype=bool)
        self._num_embeddings = np.zeros((num_graphs, num_features), dtype=np.int32)
        self._num_cuts = np.zeros((num_graphs, num_features), dtype=np.int32)
        self._chosen = {}

    def _store_cell(
        self, graph_id: int, column: int, feature_id: int, bounds: SipBounds
    ) -> None:
        self._lower[graph_id, column] = bounds.lower
        self._upper[graph_id, column] = bounds.upper
        self._present[graph_id, column] = True
        self._num_embeddings[graph_id, column] = bounds.num_embeddings
        self._num_cuts[graph_id, column] = bounds.num_cuts
        if bounds.chosen_embeddings or bounds.chosen_cuts:
            self._chosen[(graph_id, feature_id)] = (
                tuple(bounds.chosen_embeddings),
                tuple(bounds.chosen_cuts),
            )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def _require_built(self) -> None:
        if not self._built:
            raise IndexError_("the PMI has not been built yet; call build() first")

    @property
    def num_features(self) -> int:
        return len(self.features)

    @property
    def num_graphs(self) -> int:
        return self._present.shape[0]

    def feature_by_id(self, feature_id: int) -> Feature:
        self._require_built()
        feature = self._features_by_id.get(feature_id)
        if feature is None:
            raise IndexError_(f"unknown feature id {feature_id!r}")
        return feature

    def row(self, graph_id: int) -> PMIRow:
        """Zero-copy columnar view of one graph's row (the pruning hot path)."""
        self._require_built()
        if not 0 <= graph_id < self._present.shape[0]:
            raise IndexError_(f"graph id {graph_id!r} is not indexed")
        return PMIRow(
            graph_id=graph_id,
            feature_ids=self._feature_ids,
            lower=self._lower[graph_id],
            upper=self._upper[graph_id],
            present=self._present[graph_id],
        )

    def rows(self, graph_ids) -> list[PMIRow]:
        """Zero-copy row views for a whole candidate batch, in input order.

        Convenience over looping :meth:`row` — same per-row work, but it
        accepts numpy id arrays directly (the pipeline's candidate sets),
        handling the ``int()`` coercion in one place.
        """
        return [self.row(int(graph_id)) for graph_id in graph_ids]

    def _cell(self, graph_id: int, column: int, feature_id: int) -> SipBounds:
        chosen_embeddings, chosen_cuts = self._chosen.get((graph_id, feature_id), ((), ()))
        return SipBounds(
            lower=float(self._lower[graph_id, column]),
            upper=float(self._upper[graph_id, column]),
            num_embeddings=int(self._num_embeddings[graph_id, column]),
            num_cuts=int(self._num_cuts[graph_id, column]),
            chosen_embeddings=chosen_embeddings,
            chosen_cuts=chosen_cuts,
        )

    def bounds_for_graph(self, graph_id: int) -> dict[int, SipBounds]:
        """The ``Dg`` of Section 3.1: {feature_id: bounds} for one graph.

        Reconstructs :class:`SipBounds` cells from the columnar storage; use
        :meth:`row` on hot paths instead.
        """
        row = self.row(graph_id)
        return {
            int(self._feature_ids[column]): self._cell(
                graph_id, column, int(self._feature_ids[column])
            )
            for column in np.flatnonzero(row.present)
        }

    def bounds(self, graph_id: int, feature_id: int) -> SipBounds | None:
        """Bounds for one cell, or None when the feature is absent from the graph."""
        self._require_built()
        column = self._feature_pos.get(feature_id)
        if column is None or not 0 <= graph_id < self._present.shape[0]:
            return None
        if not self._present[graph_id, column]:
            return None
        return self._cell(graph_id, column, feature_id)

    def entries(self) -> list[PMIEntry]:
        """Every non-empty cell as a flat list (useful for inspection/tests)."""
        self._require_built()
        result = []
        for graph_id, column in zip(*np.nonzero(self._present)):
            feature_id = int(self._feature_ids[column])
            result.append(
                PMIEntry(
                    feature_id=feature_id,
                    graph_id=int(graph_id),
                    bounds=self._cell(int(graph_id), int(column), feature_id),
                )
            )
        return result

    def graphs_containing_feature(self, feature_id: int) -> list[int]:
        """Graph ids whose skeleton contains the feature (non-empty cell)."""
        self._require_built()
        column = self._feature_pos.get(feature_id)
        if column is None:
            return []
        return [int(graph_id) for graph_id in np.flatnonzero(self._present[:, column])]

    # ------------------------------------------------------------------
    # slicing
    # ------------------------------------------------------------------
    def subset(self, graph_ids) -> "ProbabilisticMatrixIndex":
        """A new index over the given rows; features and configs are shared.

        ``graph_ids`` is any sequence (or range) of indexed graph ids; row
        ``k`` of the subset is the old row ``graph_ids[k]``.  This is how a
        prebuilt or loaded full PMI is split into shard slices without
        recomputing any SIP bounds.  Contiguous ascending ranges slice the
        columnar arrays zero-copy; arbitrary id lists fall back to a fancy-
        indexed copy.
        """
        self._require_built()
        try:
            ids, selector = resolve_row_selector(graph_ids, self._present.shape[0])
        except ValueError as error:
            raise IndexError_(str(error)) from None
        sub = ProbabilisticMatrixIndex(
            feature_config=self.feature_config, bound_config=self.bound_config
        )
        sub.features = list(self.features)
        sub._index_features()
        sub._lower = self._lower[selector]
        sub._upper = self._upper[selector]
        sub._present = self._present[selector]
        sub._num_embeddings = self._num_embeddings[selector]
        sub._num_cuts = self._num_cuts[selector]
        chosen_by_graph: dict[int, list[tuple[int, tuple]]] = {}
        for (graph_id, feature_id), chosen in self._chosen.items():
            chosen_by_graph.setdefault(graph_id, []).append((feature_id, chosen))
        # keyed per output row, so duplicated ids keep their entries too
        sub._chosen = {
            (new_id, feature_id): chosen
            for new_id, old_id in enumerate(ids)
            for feature_id, chosen in chosen_by_graph.get(old_id, [])
        }
        sub.database_size = len(ids)
        sub.build_seconds = 0.0
        sub.build_root = self.build_root
        sub._built = True
        return sub

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the built index to ``path`` (a directory).

        Numeric columns go to ``pmi_arrays.npz``; features, configs and the
        sparse chosen-set table go to ``pmi_meta.json``.  Both files are
        written atomically (tmp + fsync + rename), so a crash mid-save leaves
        the previous payload intact rather than a torn one.
        """
        self._require_built()
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        with atomic_writer(directory / ARRAYS_FILENAME) as handle:
            np.savez_compressed(
                handle,
                lower=self._lower,
                upper=self._upper,
                present=self._present,
                num_embeddings=self._num_embeddings,
                num_cuts=self._num_cuts,
                feature_ids=self._feature_ids,
            )
        meta = {
            "type": "probabilistic_matrix_index",
            "version": PERSIST_FORMAT_VERSION,
            "database_size": self.database_size,
            "build_seconds": self.build_seconds,
            "build_root": self.build_root,
            "feature_config": asdict(self.feature_config),
            "bound_config": asdict(self.bound_config),
            "features": [
                {
                    "feature_id": feature.feature_id,
                    "graph": labeled_graph_to_dict(feature.graph),
                    "support": sorted(feature.support),
                    "canonical": feature.canonical,
                }
                for feature in self.features
            ],
            "chosen": {
                f"{graph_id}:{feature_id}": [list(embeddings), list(cuts)]
                for (graph_id, feature_id), (embeddings, cuts) in self._chosen.items()
            },
        }
        atomic_write_text(directory / META_FILENAME, json.dumps(meta))

    @classmethod
    def load(cls, path: str | Path) -> "ProbabilisticMatrixIndex":
        """Rebuild an index persisted by :meth:`save`."""
        directory = Path(path)
        meta_path = directory / META_FILENAME
        arrays_path = directory / ARRAYS_FILENAME
        if not meta_path.exists() or not arrays_path.exists():
            raise IndexError_(f"no persisted PMI at {str(directory)!r}")
        try:
            meta = json.loads(meta_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
            raise IndexError_(
                f"corrupt PMI metadata at {str(meta_path)!r}: {error}; the "
                "payload was probably torn by a crash mid-write — restore the "
                "directory from a catalog snapshot or rebuild the index"
            ) from error
        if meta.get("type") != "probabilistic_matrix_index":
            raise IndexError_(f"not a PMI payload: {meta.get('type')!r}")
        if meta.get("version") != PERSIST_FORMAT_VERSION:
            raise IndexError_(
                f"unsupported PMI format version {meta.get('version')!r}; "
                f"this build reads version {PERSIST_FORMAT_VERSION}"
            )
        index = cls(
            feature_config=FeatureSelectionConfig(**meta["feature_config"]),
            bound_config=BoundConfig(**meta["bound_config"]),
        )
        index.features = [
            Feature(
                feature_id=entry["feature_id"],
                graph=labeled_graph_from_dict(entry["graph"]),
                support=frozenset(entry["support"]),
                canonical=entry["canonical"],
            )
            for entry in meta["features"]
        ]
        index._index_features()
        try:
            with np.load(arrays_path) as arrays:
                saved_feature_ids = arrays["feature_ids"]
                expected_shape = (meta["database_size"], len(index.features))
                if arrays["lower"].shape != expected_shape or not np.array_equal(
                    saved_feature_ids, index._feature_ids
                ):
                    raise IndexError_(
                        f"inconsistent PMI payload at {str(directory)!r}: array shapes "
                        "or feature ids disagree with the JSON metadata"
                    )
                index._lower = arrays["lower"]
                index._upper = arrays["upper"]
                index._present = arrays["present"]
                index._num_embeddings = arrays["num_embeddings"]
                index._num_cuts = arrays["num_cuts"]
        except (zipfile.BadZipFile, KeyError, ValueError, EOFError, OSError) as error:
            # np.load surfaces truncation as any of these depending on where
            # the bytes stop; a bare propagated error used to leave no hint of
            # *which* file died or what to do about it
            raise IndexError_(
                f"corrupt PMI arrays at {str(arrays_path)!r}: {error}; the npz "
                "payload is truncated or damaged — restore the directory from "
                "a catalog snapshot or rebuild the index"
            ) from error
        index._chosen = {}
        for key, (embeddings, cuts) in meta["chosen"].items():
            graph_id, feature_id = key.split(":")
            index._chosen[(int(graph_id), int(feature_id))] = (
                tuple(embeddings),
                tuple(cuts),
            )
        index.database_size = meta["database_size"]
        index.build_seconds = meta["build_seconds"]
        # absent in payloads written before the mutable-catalog layer
        index.build_root = meta.get("build_root")
        index._built = True
        return index

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def size_in_bytes(self) -> int:
        """In-memory footprint of the columnar matrix (Figure 12(d) metric)."""
        self._require_built()
        total = (
            self._lower.nbytes
            + self._upper.nbytes
            + self._present.nbytes
            + self._num_embeddings.nbytes
            + self._num_cuts.nbytes
            + self._feature_ids.nbytes
        )
        total += 64 * len(self._chosen)
        for feature in self.features:
            total += 48 * (feature.num_vertices + feature.num_edges)
        return total

    def summary(self) -> dict:
        """Human-readable build summary used by examples and benchmarks."""
        self._require_built()
        return {
            "database_size": self.database_size,
            "num_features": self.num_features,
            "non_empty_cells": int(self._present.sum()),
            "build_seconds": round(self.build_seconds, 4),
            "index_bytes": self.size_in_bytes(),
        }

    def __repr__(self) -> str:
        state = "built" if self._built else "unbuilt"
        return (
            f"ProbabilisticMatrixIndex({state}, features={len(self.features)}, "
            f"graphs={self.database_size})"
        )
