"""Maximum weight clique search.

Section 4.1 of the paper turns "pick the set of pairwise-disjoint embeddings
(or cuts) that yields the tightest bound" into a maximum *weight* clique
problem on a compatibility graph whose nodes are embeddings/cuts and whose
links join disjoint pairs, with node weight ``-ln(1 - Pr(·|·))``.  The paper
uses the branch-and-bound solver of Balas & Xue [7]; we implement a compact
exact branch-and-bound with a greedy warm start and fall back to the greedy
solution when the instance exceeds a node budget.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from repro.exceptions import ConfigurationError

Node = Hashable

DEFAULT_NODE_BUDGET = 200_000


def maximum_weight_clique(
    adjacency: Mapping[Node, set],
    weights: Mapping[Node, float],
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> tuple[list[Node], float]:
    """Find a maximum-weight clique.

    Parameters
    ----------
    adjacency:
        Undirected adjacency mapping node -> set of adjacent nodes.  Nodes
        absent from some neighbour set are simply not adjacent; the mapping
        must contain every node as a key.
    weights:
        Non-negative node weights.
    node_budget:
        Rough cap on branch-and-bound recursion steps; beyond it the best
        clique found so far (at least as good as the greedy warm start) is
        returned.

    Returns
    -------
    (clique, weight):
        The chosen nodes (sorted by repr) and their total weight.  The empty
        clique with weight 0.0 is returned for an empty input.
    """
    nodes = sorted(adjacency, key=repr)
    if not nodes:
        return [], 0.0
    for node in nodes:
        if weights.get(node, 0.0) < 0:
            raise ConfigurationError(f"negative weight for node {node!r}")

    greedy_clique = _greedy_clique(adjacency, weights)
    best = {
        "clique": list(greedy_clique),
        "weight": sum(weights.get(n, 0.0) for n in greedy_clique),
        "steps": 0,
    }

    # order candidates by decreasing weight for better pruning
    ordered = sorted(nodes, key=lambda n: (-weights.get(n, 0.0), repr(n)))

    def expand(current: list[Node], current_weight: float, candidates: list[Node]) -> None:
        best["steps"] += 1
        if best["steps"] > node_budget:
            return
        remaining_weight = sum(weights.get(n, 0.0) for n in candidates)
        if current_weight + remaining_weight <= best["weight"]:
            return
        if not candidates:
            if current_weight > best["weight"]:
                best["weight"] = current_weight
                best["clique"] = list(current)
            return
        for index, node in enumerate(candidates):
            # prune: even taking every remaining candidate cannot beat best
            rest_weight = sum(weights.get(n, 0.0) for n in candidates[index:])
            if current_weight + rest_weight <= best["weight"]:
                break
            new_candidates = [
                other for other in candidates[index + 1 :] if other in adjacency[node]
            ]
            expand([*current, node], current_weight + weights.get(node, 0.0), new_candidates)

    expand([], 0.0, ordered)
    if not best["clique"] and nodes:
        # all weights are zero: return a single arbitrary node for stability
        best["clique"] = [ordered[0]]
        best["weight"] = weights.get(ordered[0], 0.0)
    clique = sorted(best["clique"], key=repr)
    return clique, best["weight"]


def _greedy_clique(adjacency: Mapping[Node, set], weights: Mapping[Node, float]) -> list[Node]:
    """Greedy warm start: repeatedly add the heaviest compatible node."""
    ordered = sorted(adjacency, key=lambda n: (-weights.get(n, 0.0), repr(n)))
    clique: list[Node] = []
    for node in ordered:
        if all(node in adjacency[member] for member in clique):
            clique.append(node)
    return clique


def is_clique(adjacency: Mapping[Node, set], nodes: list[Node]) -> bool:
    """Check that every pair in ``nodes`` is adjacent (used in tests)."""
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if v not in adjacency[u]:
                return False
    return True
