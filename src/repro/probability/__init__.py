"""Probability engine: joint probability tables, factor algebra, variable
elimination, possible-world sampling and Karp-Luby DNF estimation."""

from repro.probability.factors import Factor
from repro.probability.jpt import JointProbabilityTable
from repro.probability.junction_tree import VariableEliminationEngine
from repro.probability.sampling import monte_carlo_sample_size, WorldSampler
from repro.probability.dnf import estimate_union_probability, exact_union_probability
from repro.probability.batch_kernel import (
    BatchWorldSampler,
    compile_world_model,
    estimate_union_probability_batch,
)

__all__ = [
    "Factor",
    "JointProbabilityTable",
    "VariableEliminationEngine",
    "WorldSampler",
    "BatchWorldSampler",
    "compile_world_model",
    "monte_carlo_sample_size",
    "estimate_union_probability",
    "estimate_union_probability_batch",
    "exact_union_probability",
]
