"""The vectorized batch verification kernel: array-at-a-time possible-world
sampling and the batched Karp-Luby coverage estimator.

The scalar pipeline (``probability.sampling.WorldSampler`` driving
``probability.dnf.estimate_union_probability``) evaluates one world at a
time: every sample builds a Python dict, conditions joint probability tables
through ``Factor.condition``, and tests events with frozenset containment.
This module restructures that inner loop into numpy kernels:

* :func:`compile_world_model` compiles a graph once into integer edge-index
  arrays plus per-factor probability tables
  (:class:`CompiledWorldModel` / :class:`CompiledFactor`);
* :class:`BatchWorldSampler` draws an ``S x E`` edge-presence matrix in one
  shot — a single uniform matrix compare on the independent-edge fast path,
  and a per-factor categorical draw (grouped by the conditioning pattern of
  already-assigned overlap/evidence edges) on the correlated path;
* :func:`estimate_union_probability_batch` runs Algorithm 5's Karp-Luby
  coverage estimator over those matrices: one vectorized weighted event
  choice for all samples, one conditioned world batch per chosen event, and
  a boolean matrix product for the canonical-clause coverage test.

**Determinism contract.**  The kernel defines one *canonical draw order*
anchored on the caller's ``random.Random`` stream (in the query pipeline:
``derive_rng(root, VERIFY_STREAM, global graph id)``): the stream is
collapsed into a numpy ``Generator`` via :func:`repro.utils.rng.numpy_generator`,
event picks are drawn first as one array, then conditioned world batches are
drawn per chosen event in ascending event order, walking factors in graph
order and conditioning patterns in ascending code order.  Every step is a
pure function of the generator and the (graph, events) pair — never of
frozenset iteration order, shard layout, block composition, or how many
candidates ran before — so a graph's estimate is byte-identical across
sequential, sharded, top-k-replay, and catalog executions.

The canonical order is *not* the scalar sampler's interleaved order, so
batched estimates differ (both unbiased) from ``method="sampling_scalar"``.
For testing, ``scalar_replay=True`` generates the uniforms in the scalar
sampler's exact interleaved order (and conditions through the same
``Factor.condition`` code path) before evaluating vectorized, reproducing
``estimate_union_probability`` bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from weakref import WeakKeyDictionary

import numpy as np

from repro.exceptions import ConfigurationError, ProbabilityError
from repro.probability.dnf import _bisect, normalize_events
from repro.probability.junction_tree import VariableEliminationEngine
from repro.probability.sampling import (
    DEFAULT_TAU,
    DEFAULT_XI,
    monte_carlo_sample_size,
)
from repro.utils.rng import RandomLike, ensure_rng, numpy_generator

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.graphs.probabilistic_graph import ProbabilisticGraph

__all__ = [
    "BatchWorldSampler",
    "CompiledFactor",
    "CompiledWorldModel",
    "compile_events",
    "compile_world_model",
    "estimate_union_probability_batch",
]

# Widest factor for which the independent-product structure test enumerates
# the full assignment grid; wider factors always take the general path.
_MAX_PRODUCT_CHECK_WIDTH = 12


@dataclass(frozen=True, eq=False)
class CompiledFactor:
    """One neighbor-edge factor, flattened into arrays.

    ``positions`` maps the factor's edges (in ``factor.edges`` order) to
    columns of the model's presence matrix; ``assignments``/``values`` list
    the JPT's non-zero entries in table insertion order, which is also the
    order the scalar ``Factor.sample`` walks — keeping the two samplers
    interchangeable for the replay mode.
    """

    positions: np.ndarray  # (w,) int64 — model column of each factor edge
    assignments: np.ndarray  # (n_entries, w) uint8, table insertion order
    values: np.ndarray  # (n_entries,) float64
    cumulative: np.ndarray  # (n_entries,) float64 running sum of values
    # conditional-distribution cache: (fixed local slots, pattern code) ->
    # (entry indices, cumulative values, total mass)
    _conditionals: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def width(self) -> int:
        return int(self.positions.size)

    def conditional(
        self, fixed_local: tuple[int, ...], code: int
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Entries compatible with the fixed slots taking the code's bits.

        ``fixed_local`` holds slot indices into this factor's edge tuple and
        ``code`` packs their 0/1 values (slot ``j`` in bit ``j``).  Raises
        :class:`ProbabilityError` on zero conditional mass, mirroring the
        scalar sampler.
        """
        key = (fixed_local, code)
        cached = self._conditionals.get(key)
        if cached is not None:
            return cached
        slots = np.array(fixed_local, dtype=np.int64)
        bits = (code >> np.arange(len(fixed_local), dtype=np.int64)) & 1
        keep = np.flatnonzero((self.assignments[:, slots] == bits).all(axis=1))
        values = self.values[keep]
        total = float(values.sum())
        if total <= 0.0:
            raise ProbabilityError(
                f"conditioning pattern {bits.tolist()!r} on factor slots "
                f"{fixed_local!r} has zero probability mass"
            )
        result = (keep, np.cumsum(values), total)
        self._conditionals[key] = result
        return result


@dataclass(frozen=True, eq=False)
class CompiledWorldModel:
    """A probabilistic graph compiled for array-at-a-time world sampling."""

    edges: tuple  # canonical edge-key order (graph.edge_variables())
    index: dict  # EdgeKey -> column
    factors: tuple  # CompiledFactor per graph factor, in graph order
    marginals: np.ndarray | None  # (E,) — set iff the fast path is valid

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def is_independent(self) -> bool:
        """True when the graph partitions into product-form factors."""
        return self.marginals is not None

    def columns(self, keys) -> np.ndarray:
        """Ascending column indices of an edge-key collection."""
        return np.array(sorted(self.index[key] for key in keys), dtype=np.int64)


_MODEL_CACHE: "WeakKeyDictionary[ProbabilisticGraph, CompiledWorldModel]" = (
    WeakKeyDictionary()
)


def compile_world_model(
    graph: "ProbabilisticGraph", allow_fast_path: bool = True
) -> CompiledWorldModel:
    """Compile (and cache) a graph's factors into the kernel representation.

    Compilation happens once per graph per process; repeated verification of
    the same candidate (different queries, different events) reuses the
    arrays.  ``allow_fast_path=False`` forces the general factor-conditioned
    sampler even for independent-product graphs (used by tests to exercise
    both paths on the same input).
    """
    if allow_fast_path:
        cached = _MODEL_CACHE.get(graph)
        if cached is not None:
            return cached
    edges = tuple(graph.edge_variables())
    index = {key: column for column, key in enumerate(edges)}
    compiled = []
    for factor in graph.factors:
        entries = list(factor.jpt.table.items())
        assignments = np.array([a for a, _ in entries], dtype=np.uint8)
        values = np.array([v for _, v in entries], dtype=np.float64)
        compiled.append(
            CompiledFactor(
                positions=np.array([index[e] for e in factor.edges], dtype=np.int64),
                assignments=assignments,
                values=values,
                cumulative=np.cumsum(values),
            )
        )
    marginals = None
    if allow_fast_path and graph.is_edge_partition():
        marginals = _independent_marginals(compiled, len(edges))
    model = CompiledWorldModel(
        edges=edges, index=index, factors=tuple(compiled), marginals=marginals
    )
    if allow_fast_path:
        _MODEL_CACHE[graph] = model
    return model


def _independent_marginals(
    factors: list[CompiledFactor], num_edges: int
) -> np.ndarray | None:
    """Per-edge marginals when every factor is an independent product table."""
    marginals = np.empty(num_edges, dtype=np.float64)
    for cf in factors:
        w = cf.width
        if w > _MAX_PRODUCT_CHECK_WIDTH:
            return None
        total = float(cf.values.sum())
        p = (cf.values @ cf.assignments) / total  # marginal P(edge = 1) per slot
        codes = cf.assignments @ (1 << np.arange(w, dtype=np.int64))
        dense = np.zeros(1 << w, dtype=np.float64)
        dense[codes] = cf.values / total
        grid = (np.arange(1 << w)[:, None] >> np.arange(w)) & 1
        expected = np.where(grid == 1, p, 1.0 - p).prod(axis=1)
        if not np.allclose(dense, expected, rtol=1e-9, atol=1e-12):
            return None
        marginals[cf.positions] = p
    return marginals


class BatchWorldSampler:
    """Draws many possible worlds of one graph as an ``S x E`` boolean matrix.

    The vectorized counterpart of :class:`~repro.probability.sampling.
    WorldSampler`: independent-product graphs take one uniform-matrix
    compare; correlated graphs walk factors in graph order, condition each
    JPT on the already-assigned overlap/evidence columns, and draw each
    conditioning-pattern group with one categorical batch.  The draw order
    is canonical (see the module docstring), so equal generators yield equal
    matrices in every process.
    """

    def __init__(self, source) -> None:
        if isinstance(source, CompiledWorldModel):
            self.model = source
        else:
            self.model = compile_world_model(source)

    def sample_presence(
        self,
        generator: np.random.Generator,
        num_samples: int,
        evidence=None,
    ) -> np.ndarray:
        """``(num_samples, num_edges)`` boolean edge-presence matrix.

        ``evidence`` maps edge keys to forced 0/1 values (the Karp-Luby
        conditioning step passes the chosen event's edges as 1).  Raises
        :class:`ProbabilityError` when the evidence is impossible under some
        factor, mirroring the scalar sampler.
        """
        model = self.model
        if num_samples < 0:
            raise ConfigurationError(f"num_samples must be >= 0, got {num_samples!r}")
        ev_cols, ev_vals = _evidence_arrays(model, evidence)
        if model.is_independent:
            return self._sample_independent(generator, num_samples, ev_cols, ev_vals)
        return self._sample_general(generator, num_samples, ev_cols, ev_vals)

    # ------------------------------------------------------------------
    # fast path: every factor is a product of per-edge Bernoullis
    # ------------------------------------------------------------------
    def _sample_independent(self, generator, num_samples, ev_cols, ev_vals):
        marginals = self.model.marginals
        impossible = (marginals[ev_cols] <= 0.0) & (ev_vals == 1)
        impossible |= (marginals[ev_cols] >= 1.0) & (ev_vals == 0)
        if impossible.any():
            column = int(ev_cols[np.flatnonzero(impossible)[0]])
            raise ProbabilityError(
                f"evidence on edge {self.model.edges[column]!r} has zero probability"
            )
        present = generator.random((num_samples, self.model.num_edges)) < marginals
        present[:, ev_cols] = ev_vals.astype(bool)
        return present

    # ------------------------------------------------------------------
    # general path: factor-conditioned categorical batches
    # ------------------------------------------------------------------
    def _sample_general(self, generator, num_samples, ev_cols, ev_vals):
        model = self.model
        worlds = np.zeros((num_samples, model.num_edges), dtype=np.uint8)
        worlds[:, ev_cols] = ev_vals
        assigned = np.zeros(model.num_edges, dtype=bool)
        assigned[ev_cols] = True
        for cf in model.factors:
            fixed_slots = np.flatnonzero(assigned[cf.positions])
            pending_slots = np.flatnonzero(~assigned[cf.positions])
            if pending_slots.size == 0:
                continue
            pending_cols = cf.positions[pending_slots]
            if fixed_slots.size == 0:
                picks = generator.random(num_samples) * cf.cumulative[-1]
                entry = _categorical(cf.cumulative, picks)
                worlds[:, pending_cols] = cf.assignments[entry][:, pending_slots]
            else:
                fixed_key = tuple(int(slot) for slot in fixed_slots)
                patterns = worlds[:, cf.positions[fixed_slots]].astype(np.int64)
                codes = patterns @ (1 << np.arange(fixed_slots.size, dtype=np.int64))
                for code in np.unique(codes):
                    rows = np.flatnonzero(codes == code)
                    keep, cumulative, total = cf.conditional(fixed_key, int(code))
                    picks = generator.random(rows.size) * total
                    entry = keep[_categorical(cumulative, picks)]
                    worlds[np.ix_(rows, pending_cols)] = cf.assignments[entry][
                        :, pending_slots
                    ]
            assigned[cf.positions] = True
        return worlds.astype(bool)


def _evidence_arrays(model: CompiledWorldModel, evidence):
    """Evidence as (ascending column array, value array) — order-canonical."""
    if not evidence:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.uint8)
    pairs = sorted((model.index[key], int(value)) for key, value in evidence.items())
    if any(value not in (0, 1) for _, value in pairs):
        raise ProbabilityError(f"evidence values must be 0/1, got {dict(evidence)!r}")
    cols = np.array([column for column, _ in pairs], dtype=np.int64)
    vals = np.array([value for _, value in pairs], dtype=np.uint8)
    return cols, vals


def _categorical(cumulative: np.ndarray, picks: np.ndarray) -> np.ndarray:
    """First index with ``cumulative >= pick`` — ``Factor.sample`` semantics."""
    return np.minimum(
        np.searchsorted(cumulative, picks, side="left"), cumulative.size - 1
    )


# ----------------------------------------------------------------------
# the batched Karp-Luby coverage estimator (Algorithm 5)
# ----------------------------------------------------------------------
def compile_events(model: CompiledWorldModel, events) -> np.ndarray:
    """Events as an ``(m, E)`` boolean requirement matrix over model columns."""
    required = np.zeros((len(events), model.num_edges), dtype=bool)
    for row, event in enumerate(events):
        for key in event:
            required[row, model.index[key]] = True
    return required


def estimate_union_probability_batch(
    graph: "ProbabilisticGraph",
    events,
    xi: float = DEFAULT_XI,
    tau: float = DEFAULT_TAU,
    num_samples: int | None = None,
    rng: RandomLike = None,
    scalar_replay: bool = False,
) -> float:
    """Batched Karp-Luby coverage estimate of the union probability.

    The drop-in vectorized counterpart of :func:`repro.probability.dnf.
    estimate_union_probability`: same inputs, same unbiased ``V * Cnt / N``
    estimator, same [0, 1] clamp — but every per-sample step is an array
    operation and the draw order is the kernel's canonical one (module
    docstring).  With ``scalar_replay=True`` the uniforms are generated in
    the scalar sampler's interleaved order instead, reproducing its output
    bit-for-bit (testing hook; slower, still vectorized evaluation).
    """
    clean = normalize_events(events)
    if not clean:
        return 0.0
    generator = ensure_rng(rng)
    engine = VariableEliminationEngine(graph)
    weights = [engine.probability_all_present(event) for event in clean]
    total_weight = sum(weights)
    if total_weight <= 0.0:
        return 0.0
    n = num_samples if num_samples is not None else monte_carlo_sample_size(xi, tau)
    model = compile_world_model(graph)
    required = compile_events(model, clean)

    if scalar_replay:
        count = _count_scalar_replay(
            graph, model, clean, required, weights, total_weight, n, generator
        )
    else:
        count = _count_canonical(
            model, clean, required, weights, total_weight, n, generator
        )
    estimate = total_weight * count / n
    return min(1.0, max(0.0, estimate))


def _coverage_count(worlds: np.ndarray, required: np.ndarray, event_index: int) -> int:
    """Samples counting for ``event_index``: no earlier event fully present.

    ``(~worlds) @ required[:i].T`` is a boolean matrix product: entry
    ``(s, j)`` is True iff some edge event ``j`` requires is absent in world
    ``s`` — so event ``j`` covers world ``s`` exactly when the entry is
    False (the canonical-clause check of Algorithm 5, vectorized).
    """
    if event_index == 0:
        return int(worlds.shape[0])
    missing_any = ~worlds @ required[:event_index].T
    covered_by_earlier = ~missing_any
    return int(worlds.shape[0] - covered_by_earlier.any(axis=1).sum())


def _count_canonical(model, clean, required, weights, total_weight, n, generator):
    """Canonical draw order: event picks first, then per-event world batches."""
    np_generator = numpy_generator(generator)
    cumulative = np.cumsum(np.asarray(weights, dtype=np.float64))
    picks = np_generator.random(n) * total_weight
    chosen = _categorical(cumulative, picks)
    sampler = BatchWorldSampler(model)
    count = 0
    for event_index in np.unique(chosen):
        event_index = int(event_index)
        group = int((chosen == event_index).sum())
        evidence = {key: 1 for key in clean[event_index]}
        worlds = sampler.sample_presence(np_generator, group, evidence)
        count += _coverage_count(worlds, required, event_index)
    return count


def _count_scalar_replay(
    graph, model, clean, required, weights, total_weight, n, generator
):
    """Generate uniforms in the scalar sampler's exact interleaved order.

    Per sample the scalar path draws one event pick, then one uniform per
    factor that still has unassigned edges given the chosen event's evidence
    — a consumption pattern that depends only on the event.  Replaying it
    means one cheap Python pass to collect the uniforms, after which worlds
    are evaluated with the same vectorized machinery as the canonical mode,
    conditioning through the original ``Factor.condition`` objects so every
    float matches the scalar estimator bit-for-bit.
    """
    cumulative: list[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)
    consuming_factors = [_consuming_factors(graph, event) for event in clean]
    chosen = np.empty(n, dtype=np.int64)
    factor_uniforms = np.full((len(graph.factors), n), np.nan)
    for sample in range(n):
        pick = generator.random() * total_weight
        event_index = _bisect(cumulative, pick)
        chosen[sample] = event_index
        for factor_position in consuming_factors[event_index]:
            factor_uniforms[factor_position, sample] = generator.random()
    count = 0
    for event_index in np.unique(chosen):
        event_index = int(event_index)
        rows = np.flatnonzero(chosen == event_index)
        worlds = _replay_worlds(
            graph, model, clean[event_index], factor_uniforms[:, rows]
        )
        count += _coverage_count(worlds, required, event_index)
    return count


def _consuming_factors(graph, event) -> list[int]:
    """Factor positions that draw one uniform per sample for this event."""
    assigned = set(event)
    consuming = []
    for position, factor in enumerate(graph.factors):
        if any(key not in assigned for key in factor.edges):
            consuming.append(position)
            assigned.update(factor.edges)
    return consuming


def _replay_worlds(graph, model, event, uniforms) -> np.ndarray:
    """Worlds for one event group from pre-collected scalar-order uniforms.

    ``uniforms[f, s]`` is the uniform the scalar sampler would feed
    ``Factor.sample`` for factor ``f`` of (local) sample ``s``; conditional
    tables are built by the very ``Factor.condition`` call the scalar path
    uses, so entry order, partial sums, and tie behaviour are identical.
    """
    group = uniforms.shape[1]
    worlds = np.zeros((group, model.num_edges), dtype=np.uint8)
    worlds[:, model.columns(event)] = 1
    assigned = set(event)
    for position, factor in enumerate(graph.factors):
        fixed_keys = [key for key in factor.edges if key in assigned]
        pending = [key for key in factor.edges if key not in assigned]
        if not pending:
            continue
        group_uniforms = uniforms[position]
        if fixed_keys:
            fixed_cols = np.array([model.index[key] for key in fixed_keys])
            patterns = worlds[:, fixed_cols].astype(np.int64)
            codes = patterns @ (1 << np.arange(len(fixed_keys), dtype=np.int64))
            for code in np.unique(codes):
                rows = np.flatnonzero(codes == code)
                fixed = {
                    key: int((int(code) >> slot) & 1)
                    for slot, key in enumerate(fixed_keys)
                }
                conditional = factor.jpt.condition(fixed)
                if conditional.total() <= 0:
                    raise ProbabilityError(
                        f"evidence {fixed!r} has zero probability under factor "
                        f"{factor.edges!r}"
                    )
                _scatter_factor_draws(
                    worlds, model, conditional, rows, group_uniforms[rows]
                )
        else:
            rows = np.arange(group)
            _scatter_factor_draws(worlds, model, factor.jpt, rows, group_uniforms)
        assigned.update(factor.edges)
    return worlds.astype(bool)


def _scatter_factor_draws(worlds, model, conditional, rows, uniforms) -> None:
    """Vectorized ``Factor.sample`` over one (factor, pattern) sample group."""
    entries = list(conditional.table.items())
    values = np.array([value for _, value in entries], dtype=np.float64)
    cumulative = np.cumsum(values)
    picks = uniforms * conditional.total()
    entry = _categorical(cumulative, picks)
    assignment_rows = np.array([a for a, _ in entries], dtype=np.uint8)
    columns = np.array([model.index[v] for v in conditional.variables], dtype=np.int64)
    worlds[np.ix_(rows, columns)] = assignment_rows[entry]
