"""Union-of-conjunctions probabilities: exact inclusion-exclusion and the
Karp-Luby estimator.

Theorem 2 of the paper reduces #DNF to subgraph-similarity-probability
computation; conversely, the SSP of a query is exactly the probability of a
DNF formula whose clauses are the embeddings of the relaxed queries
(Lemma 1 + Equation 22).  Each clause (event) here is a set of edge keys that
must all be present in the sampled world.

* :func:`exact_union_probability` — inclusion-exclusion over the events
  (Equation 21); exponential in the number of events, guarded by a cap, used
  by the ``Exact`` verification baseline and by tests.
* :func:`estimate_union_probability` — the Karp-Luby coverage estimator that
  Algorithm 5 instantiates.  The paper's pseudo-code returns ``Cnt/N``; the
  unbiased coverage estimator is ``V * Cnt / N`` with ``V = Σ Pr(Bfi)``, which
  is what this function returns (clamped to [0, 1]); see DESIGN.md §4.

The estimator here is the *scalar reference implementation* (one world at a
time; ``method="sampling_scalar"`` in :class:`~repro.core.verification.
VerificationConfig`).  The production path is the vectorized batch kernel in
:mod:`repro.probability.batch_kernel`, whose ``scalar_replay`` mode
reproduces this function bit-for-bit from the same rng.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING

from repro.exceptions import VerificationError
from repro.probability.junction_tree import VariableEliminationEngine
from repro.probability.sampling import (
    DEFAULT_TAU,
    DEFAULT_XI,
    WorldSampler,
    monte_carlo_sample_size,
)
from repro.utils.rng import RandomLike, ensure_rng

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.graphs.probabilistic_graph import EdgeKey, ProbabilisticGraph

Event = frozenset  # frozenset[EdgeKey]

DEFAULT_EXACT_EVENT_LIMIT = 20


def _vertex_sort_key(vertex) -> tuple:
    """Total order over vertex ids of mixed types (class name, then value).

    Mirrors :func:`repro.graphs.labeled_graph.edge_key`: hashable-but-
    unorderable vertex ids fall back to comparing their ``repr`` (the
    discriminator slot keeps orderable and fallback keys from ever being
    compared value-against-repr).
    """
    try:
        vertex < vertex  # orderability probe  # noqa: B015
        return (type(vertex).__name__, 0, vertex)
    except TypeError:
        return (type(vertex).__name__, 1, repr(vertex))


def _edge_sort_key(edge) -> tuple:
    """Canonical sort key of one edge key: its vertices' sort keys in order."""
    return tuple(_vertex_sort_key(vertex) for vertex in edge)


def canonical_event_key(event) -> tuple:
    """Canonical sort key of one event: (size, sorted edge-key tuple).

    Built from the edge keys' own values — never from ``repr`` strings, whose
    formatting is not part of any contract — so the estimator's event order
    (and therefore its draw sequence under a fixed seed) is pinned by graph
    structure alone.
    """
    edges = sorted(event, key=_edge_sort_key)
    return (len(edges), tuple(_edge_sort_key(edge) for edge in edges))


def normalize_events(events: list[frozenset | set]) -> list[Event]:
    """Deduplicate events and drop ones absorbed by a weaker event.

    An event is the conjunction "all of these edges are present", so if
    A ⊆ B (B requires a superset of A's edges) then B implies A and the
    disjunction A ∨ B collapses to A.  Supersets are therefore dropped, which
    keeps both the exact and the sampled estimators cheaper without changing
    the union probability.  Empty events are dropped too (the caller treats
    "no events" as probability zero).  The surviving events come back in
    :func:`canonical_event_key` order, which both estimators (scalar and
    batched) treat as the clause order of Algorithm 5.
    """
    unique = {Event(e) for e in events if e}
    kept: list[Event] = []
    for event in sorted(unique, key=canonical_event_key):
        if any(existing <= event for existing in kept):
            continue
        kept.append(event)
    return kept


DEFAULT_EXACT_TOLERANCE = 1e-6


def exact_union_probability(
    graph: ProbabilisticGraph,
    events: list[frozenset | set],
    max_events: int = DEFAULT_EXACT_EVENT_LIMIT,
    tolerance: float = DEFAULT_EXACT_TOLERANCE,
) -> float:
    """``Pr(∨_i  all edges of event_i present)`` by inclusion-exclusion.

    A correct inclusion-exclusion total is a probability; floating-point
    cancellation may push it a hair outside [0, 1], which the return value
    clamps away.  A total outside ``[-tolerance, 1 + tolerance]``, however,
    signals a sign or term-enumeration bug (or inconsistent factor tables)
    and raises :class:`VerificationError` instead of being silently clamped.
    """
    clean = normalize_events(events)
    if not clean:
        return 0.0
    if len(clean) > max_events:
        raise VerificationError(
            f"inclusion-exclusion over {len(clean)} events (limit {max_events}); "
            "use estimate_union_probability instead"
        )
    engine = VariableEliminationEngine(graph)
    total = 0.0
    for size in range(1, len(clean) + 1):
        sign = 1.0 if size % 2 == 1 else -1.0
        for subset in combinations(clean, size):
            union_edges: set[EdgeKey] = set()
            for event in subset:
                union_edges.update(event)
            total += sign * engine.probability_all_present(union_edges)
    if total < -tolerance or total > 1.0 + tolerance:
        raise VerificationError(
            f"inclusion-exclusion total {total!r} leaves [0, 1] by more than "
            f"{tolerance!r}; the event terms cancel inconsistently"
        )
    return min(1.0, max(0.0, total))


def estimate_union_probability(
    graph: ProbabilisticGraph,
    events: list[frozenset | set],
    xi: float = DEFAULT_XI,
    tau: float = DEFAULT_TAU,
    num_samples: int | None = None,
    rng: RandomLike = None,
) -> float:
    """Karp-Luby coverage estimate of the union probability (Algorithm 5).

    Parameters
    ----------
    graph:
        The probabilistic graph whose worlds are sampled.
    events:
        Each event is a set of edge keys that must all be present.
    xi, tau:
        Failure probability and accuracy of the Monte-Carlo bound; the sample
        count defaults to ``(4 ln(2/ξ)) / τ²``.
    num_samples:
        Explicit override of the sample count.
    """
    clean = normalize_events(events)
    if not clean:
        return 0.0
    generator = ensure_rng(rng)
    engine = VariableEliminationEngine(graph)
    weights = [engine.probability_all_present(event) for event in clean]
    total_weight = sum(weights)
    if total_weight <= 0.0:
        return 0.0

    sampler = WorldSampler(graph, rng=generator)
    n = num_samples if num_samples is not None else monte_carlo_sample_size(xi, tau)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)

    count = 0
    for _ in range(n):
        pick = generator.random() * total_weight
        index = _bisect(cumulative, pick)
        event = clean[index]
        evidence = {key: 1 for key in event}
        present = sampler.sample_present_edges(evidence)
        # canonical-clause check: count only when no earlier event is satisfied
        if not any(clean[j] <= present for j in range(index)):
            count += 1
    estimate = total_weight * count / n
    return min(1.0, max(0.0, estimate))


def _bisect(cumulative: list[float], value: float) -> int:
    """Index of the first cumulative weight >= value."""
    low, high = 0, len(cumulative) - 1
    while low < high:
        mid = (low + high) // 2
        if cumulative[mid] < value:
            low = mid + 1
        else:
            high = mid
    return low
