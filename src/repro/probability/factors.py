"""Discrete factors over binary variables.

A :class:`Factor` maps assignments of a fixed tuple of binary variables to
non-negative reals.  Factors are the work-horse of the probability engine:
joint probability tables (:mod:`repro.probability.jpt`) are normalized
factors, the possible-world measure of a probabilistic graph is a product of
factors, and variable elimination multiplies and marginalizes factors to
compute edge-set marginals such as ``Pr(Bf)`` in Algorithm 5 of the paper.

Variables are arbitrary hashable identifiers (edge keys in practice); values
are 0 (edge absent) and 1 (edge present).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from itertools import product as iter_product

from repro.exceptions import FactorError

Variable = Hashable
Assignment = tuple[int, ...]


class Factor:
    """A non-negative function over assignments of binary variables.

    Parameters
    ----------
    variables:
        Ordered tuple of variable identifiers.
    table:
        Mapping from assignment tuples (one 0/1 value per variable, in the
        same order) to non-negative floats.  Missing assignments default to
        value 0.0.
    """

    def __init__(
        self,
        variables: Iterable[Variable],
        table: Mapping[Assignment, float],
    ) -> None:
        self.variables: tuple[Variable, ...] = tuple(variables)
        if len(set(self.variables)) != len(self.variables):
            raise FactorError(f"duplicate variables in factor: {self.variables!r}")
        self.table: dict[Assignment, float] = {}
        width = len(self.variables)
        for assignment, value in table.items():
            key = tuple(int(v) for v in assignment)
            if len(key) != width:
                raise FactorError(
                    f"assignment {assignment!r} has {len(key)} values, expected {width}"
                )
            if any(v not in (0, 1) for v in key):
                raise FactorError(f"assignment {assignment!r} contains non-binary values")
            if value < 0:
                raise FactorError(f"negative factor value {value!r} for {assignment!r}")
            if value != 0.0:
                self.table[key] = float(value)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def unit(cls) -> "Factor":
        """The multiplicative identity: no variables, value 1."""
        return cls((), {(): 1.0})

    @classmethod
    def from_bernoulli(cls, variable: Variable, probability: float) -> "Factor":
        """A single-variable factor P(x=1)=p, P(x=0)=1-p."""
        if not 0.0 <= probability <= 1.0:
            raise FactorError(f"probability {probability!r} outside [0, 1]")
        return cls((variable,), {(1,): probability, (0,): 1.0 - probability})

    @classmethod
    def full_table(
        cls, variables: Iterable[Variable], values: Iterable[float]
    ) -> "Factor":
        """Build a factor from values listed in lexicographic assignment order
        (all-zeros first, counting up in binary with the last variable as the
        least significant bit)."""
        variables = tuple(variables)
        values = list(values)
        expected = 2 ** len(variables)
        if len(values) != expected:
            raise FactorError(f"expected {expected} values, got {len(values)}")
        table = {}
        for index, assignment in enumerate(iter_product((0, 1), repeat=len(variables))):
            table[assignment] = values[index]
        return cls(variables, table)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def value(self, assignment: Mapping[Variable, int]) -> float:
        """Value for a (full) assignment given as a mapping."""
        key = tuple(int(assignment[v]) for v in self.variables)
        return self.table.get(key, 0.0)

    def assignments(self) -> Iterable[tuple[Assignment, float]]:
        """Iterate over (assignment, value) pairs with non-zero value."""
        return self.table.items()

    def total(self) -> float:
        """Sum of all values (the partition function of this factor alone)."""
        return sum(self.table.values())

    def is_normalized(self, tolerance: float = 1e-9) -> bool:
        return abs(self.total() - 1.0) <= tolerance

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def normalize(self) -> "Factor":
        """Return a copy scaled to sum to 1.  Raises on an all-zero factor."""
        z = self.total()
        if z <= 0:
            raise FactorError("cannot normalize a factor whose total mass is zero")
        return Factor(self.variables, {a: v / z for a, v in self.table.items()})

    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product, joining on shared variables."""
        merged_vars = list(self.variables)
        for var in other.variables:
            if var not in self.variables:
                merged_vars.append(var)
        self_pos = {v: i for i, v in enumerate(self.variables)}
        other_pos = {v: i for i, v in enumerate(other.variables)}
        table: dict[Assignment, float] = {}
        for a1, v1 in self.table.items():
            for a2, v2 in other.table.items():
                compatible = True
                for var in other.variables:
                    if var in self_pos and a1[self_pos[var]] != a2[other_pos[var]]:
                        compatible = False
                        break
                if not compatible:
                    continue
                merged = []
                for var in merged_vars:
                    if var in self_pos:
                        merged.append(a1[self_pos[var]])
                    else:
                        merged.append(a2[other_pos[var]])
                # each compatible (a1, a2) pair yields a distinct merged key,
                # so direct assignment (no accumulation) is correct here
                table[tuple(merged)] = v1 * v2
        return Factor(merged_vars, table)

    def marginalize(self, variables_to_remove: Iterable[Variable]) -> "Factor":
        """Sum out ``variables_to_remove``."""
        remove = set(variables_to_remove)
        unknown = remove - set(self.variables)
        if unknown:
            raise FactorError(f"cannot marginalize unknown variables: {sorted(map(repr, unknown))}")
        keep = [v for v in self.variables if v not in remove]
        keep_idx = [i for i, v in enumerate(self.variables) if v not in remove]
        table: dict[Assignment, float] = {}
        for assignment, value in self.table.items():
            key = tuple(assignment[i] for i in keep_idx)
            table[key] = table.get(key, 0.0) + value
        return Factor(keep, table)

    def condition(self, evidence: Mapping[Variable, int]) -> "Factor":
        """Restrict to assignments consistent with ``evidence`` and drop those
        variables.  The result is *not* renormalized (it is a slice)."""
        relevant = {v: int(val) for v, val in evidence.items() if v in self.variables}
        if not relevant:
            return Factor(self.variables, dict(self.table))
        keep = [v for v in self.variables if v not in relevant]
        keep_idx = [i for i, v in enumerate(self.variables) if v not in relevant]
        fixed_idx = {i: relevant[v] for i, v in enumerate(self.variables) if v in relevant}
        table: dict[Assignment, float] = {}
        for assignment, value in self.table.items():
            if any(assignment[i] != val for i, val in fixed_idx.items()):
                continue
            key = tuple(assignment[i] for i in keep_idx)
            table[key] = table.get(key, 0.0) + value
        return Factor(keep, table)

    def marginal_probability(self, variable: Variable, value: int = 1) -> float:
        """Marginal probability that ``variable == value`` under the
        normalized version of this factor."""
        if variable not in self.variables:
            raise FactorError(f"unknown variable {variable!r}")
        normalized = self.normalize()
        keep = normalized.marginalize([v for v in self.variables if v != variable])
        return keep.table.get((int(value),), 0.0)

    # ------------------------------------------------------------------
    # sampling support
    # ------------------------------------------------------------------
    def sample(self, rng) -> dict[Variable, int]:
        """Draw one assignment with probability proportional to its value."""
        total = self.total()
        if total <= 0:
            raise FactorError("cannot sample from a factor whose total mass is zero")
        pick = rng.random() * total
        cumulative = 0.0
        last_assignment: Assignment | None = None
        for assignment, value in self.table.items():
            cumulative += value
            last_assignment = assignment
            if pick <= cumulative:
                return dict(zip(self.variables, assignment))
        # numerical edge case: fall back to the last assignment
        assert last_assignment is not None
        return dict(zip(self.variables, last_assignment))

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __mul__(self, other: "Factor") -> "Factor":
        return self.multiply(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Factor):
            return NotImplemented
        if set(self.variables) != set(other.variables):
            return False
        # compare on a common variable order
        other_pos = {v: i for i, v in enumerate(other.variables)}
        reorder = [other_pos[v] for v in self.variables]
        remapped = {}
        for assignment, value in other.table.items():
            remapped[tuple(assignment[i] for i in reorder)] = value
        keys = set(self.table) | set(remapped)
        return all(abs(self.table.get(k, 0.0) - remapped.get(k, 0.0)) < 1e-12 for k in keys)

    def __hash__(self) -> int:  # pragma: no cover - factors are mutable-ish
        raise TypeError("Factor is not hashable")

    def __repr__(self) -> str:
        return f"Factor(variables={self.variables!r}, entries={len(self.table)})"
