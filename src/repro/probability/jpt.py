"""Joint probability tables (JPTs) over neighbor edge sets.

A :class:`JointProbabilityTable` is a normalized :class:`~repro.probability.
factors.Factor` over the binary existence variables of one neighbor edge set
(Definition 2 and Figure 1 of the paper).  Besides validation, this module
provides the two constructions used throughout the library:

* :meth:`JointProbabilityTable.from_independent_marginals` — product of
  per-edge Bernoulli marginals (the classic independent-edge model, used by
  the ``IND`` baseline of Figure 14).
* :meth:`JointProbabilityTable.from_max_dominance` — the paper's experimental
  construction for correlated PPIs: each joint assignment is weighted by the
  *strongest* participating interaction, ``Pr(x_ne) = max_i Pr(x_i)``, and the
  resulting table is normalized (Section 6, "Real Probabilistic Graph
  Dataset").
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from itertools import product as iter_product

from repro.exceptions import ProbabilityError
from repro.probability.factors import Assignment, Factor, Variable


class JointProbabilityTable(Factor):
    """A normalized factor: a proper joint distribution over its variables."""

    def __init__(
        self,
        variables: Iterable[Variable],
        table: Mapping[Assignment, float],
        tolerance: float = 1e-6,
        normalize: bool = False,
    ) -> None:
        super().__init__(variables, table)
        total = self.total()
        if total <= 0:
            raise ProbabilityError("joint probability table has zero total mass")
        if normalize:
            self.table = {a: v / total for a, v in self.table.items()}
        elif abs(total - 1.0) > tolerance:
            raise ProbabilityError(
                f"joint probability table sums to {total!r}; pass normalize=True to rescale"
            )

    # ------------------------------------------------------------------
    # constructions
    # ------------------------------------------------------------------
    @classmethod
    def from_independent_marginals(
        cls, marginals: Mapping[Variable, float]
    ) -> "JointProbabilityTable":
        """Joint table equal to the product of independent edge marginals."""
        variables = tuple(marginals)
        table: dict[Assignment, float] = {}
        for assignment in iter_product((0, 1), repeat=len(variables)):
            probability = 1.0
            for var, value in zip(variables, assignment):
                p = marginals[var]
                if not 0.0 <= p <= 1.0:
                    raise ProbabilityError(f"marginal {p!r} for {var!r} outside [0, 1]")
                probability *= p if value == 1 else (1.0 - p)
            table[assignment] = probability
        return cls(variables, table, normalize=True)

    @classmethod
    def from_max_dominance(
        cls, marginals: Mapping[Variable, float]
    ) -> "JointProbabilityTable":
        """The paper's correlated construction for neighbor PPIs.

        For each joint assignment ``x``, the unnormalized weight is
        ``max_i Pr(x_i)`` where ``Pr(x_i)`` is the marginal probability of
        edge ``i`` taking its value in ``x`` (``p_i`` if present, ``1 - p_i``
        if absent).  Weights are then normalized into a distribution.  This
        makes neighbor edges positively correlated through their strongest
        member, as described in Section 6 of the paper.
        """
        variables = tuple(marginals)
        if not variables:
            raise ProbabilityError("max-dominance table needs at least one variable")
        table: dict[Assignment, float] = {}
        for assignment in iter_product((0, 1), repeat=len(variables)):
            weights = []
            for var, value in zip(variables, assignment):
                p = marginals[var]
                if not 0.0 <= p <= 1.0:
                    raise ProbabilityError(f"marginal {p!r} for {var!r} outside [0, 1]")
                weights.append(p if value == 1 else 1.0 - p)
            table[assignment] = max(weights)
        return cls(variables, table, normalize=True)

    @classmethod
    def from_factor(cls, factor: Factor, normalize: bool = True) -> "JointProbabilityTable":
        """Promote a factor to a JPT (optionally normalizing it)."""
        return cls(factor.variables, dict(factor.table), normalize=normalize)

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    def edge_marginal(self, variable: Variable) -> float:
        """Marginal existence probability of one edge variable."""
        return self.marginal_probability(variable, 1)

    def conditional(
        self, evidence: Mapping[Variable, int]
    ) -> "JointProbabilityTable":
        """Distribution of the remaining variables given ``evidence``.

        Raises :class:`ProbabilityError` when the evidence has probability
        zero under this table.
        """
        sliced = self.condition(evidence)
        if sliced.total() <= 0:
            raise ProbabilityError(f"evidence {dict(evidence)!r} has zero probability")
        if not sliced.variables:
            return JointProbabilityTable((), {(): 1.0})
        return JointProbabilityTable(sliced.variables, dict(sliced.table), normalize=True)

    def entropy(self) -> float:
        """Shannon entropy in bits; useful for dataset diagnostics."""
        import math

        h = 0.0
        for value in self.table.values():
            if value > 0:
                h -= value * math.log2(value)
        return h

    def __repr__(self) -> str:
        return f"JointProbabilityTable(variables={self.variables!r}, entries={len(self.table)})"
