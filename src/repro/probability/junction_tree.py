"""Exact inference over a probabilistic graph's edge factors.

Algorithm 5 of the paper needs ``Pr(Bf)`` — the probability that every edge
of an embedding exists — which the authors compute with a junction-tree
procedure [17].  This module provides the equivalent capability through
variable elimination over the graph's neighbor-edge factors:

* :meth:`VariableEliminationEngine.probability_all_present` — marginal
  probability that a set of edges all exist.
* :meth:`VariableEliminationEngine.probability_of_event` — marginal
  probability of an arbitrary partial edge assignment.

Factors outside the connected factor component of the queried edges cancel
between numerator and denominator, so only the touched component is ever
multiplied out.  For edge-partitioned graphs (the common case produced by the
dataset generators) each factor is its own component and the computation is a
simple product of per-factor marginals.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import TYPE_CHECKING

from repro.exceptions import ProbabilityError
from repro.probability.factors import Factor

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.graphs.probabilistic_graph import EdgeKey, ProbabilisticGraph


class VariableEliminationEngine:
    """Exact marginal computation over a probabilistic graph's factors."""

    def __init__(self, graph: ProbabilisticGraph) -> None:
        self.graph = graph
        self._factor_index: dict[EdgeKey, list[int]] = {}
        for position, factor in enumerate(graph.factors):
            for key in factor.edges:
                self._factor_index.setdefault(key, []).append(position)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def probability_all_present(self, edges: Iterable[EdgeKey]) -> float:
        """``Pr(∧_{e in edges} x_e = 1)`` — the Pr(Bf) of Algorithm 5."""
        evidence = {key: 1 for key in edges}
        return self.probability_of_event(evidence)

    def probability_of_event(self, evidence: Mapping[EdgeKey, int]) -> float:
        """Marginal probability of a partial edge assignment."""
        if not evidence:
            return 1.0
        unknown = [key for key in evidence if key not in self._factor_index]
        if unknown:
            raise ProbabilityError(
                f"edges without probability factors: {sorted(map(repr, unknown))[:5]}"
            )
        component_positions = self._touched_component(evidence.keys())
        factors = [self.graph.factors[i] for i in sorted(component_positions)]
        raw_factors = [Factor(f.edges, dict(f.jpt.table)) for f in factors]
        numerator = _partition_function(
            [f.condition(evidence) for f in raw_factors]
        )
        denominator = _partition_function(raw_factors)
        if denominator <= 0:
            raise ProbabilityError("zero partition function; the factor component is degenerate")
        return min(1.0, max(0.0, numerator / denominator))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _touched_component(self, edges: Iterable[EdgeKey]) -> set[int]:
        """Factor positions in the connected factor components of ``edges``.

        Factors are connected when they share an edge variable; the union of
        the components touched by the evidence is sufficient (and necessary)
        for an exact answer.
        """
        pending: list[int] = []
        for key in edges:
            pending.extend(self._factor_index.get(key, []))
        visited: set[int] = set()
        while pending:
            position = pending.pop()
            if position in visited:
                continue
            visited.add(position)
            for key in self.graph.factors[position].edges:
                for neighbor_position in self._factor_index[key]:
                    if neighbor_position not in visited:
                        pending.append(neighbor_position)
        return visited


def _partition_function(factors: list[Factor]) -> float:
    """Sum over all assignments of the product of ``factors``.

    Uses variable elimination with a min-fill-ish (smallest-degree-first)
    ordering.  Constant factors (no variables) are multiplied directly.
    """
    constants = 1.0
    working: list[Factor] = []
    for factor in factors:
        if not factor.variables:
            constants *= factor.total()
        else:
            working.append(factor)
    if not working:
        return constants

    variables: set = set()
    for factor in working:
        variables.update(factor.variables)

    while variables:
        # choose the variable appearing in the fewest factors (cheap heuristic)
        def cost(variable) -> tuple[int, int]:
            involved = [f for f in working if variable in f.variables]
            width = len({v for f in involved for v in f.variables})
            return (len(involved), width)

        variable = min(sorted(variables, key=repr), key=cost)
        involved = [f for f in working if variable in f.variables]
        untouched = [f for f in working if variable not in f.variables]
        product = involved[0]
        for factor in involved[1:]:
            product = product.multiply(factor)
        summed = product.marginalize([variable])
        if summed.variables:
            working = [*untouched, summed]
        else:
            constants *= summed.total()
            working = untouched
        variables.discard(variable)

    for factor in working:  # pragma: no cover - defensive, should be empty
        constants *= factor.total()
    return constants
