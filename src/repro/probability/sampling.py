"""Possible-world sampling and Monte-Carlo helpers.

Two pieces of the paper live here:

* the sample-size rule ``N = (4 ln(2/ξ)) / τ²`` used by Algorithms 3 and 5
  (Section 4.1.1 / Section 5, following Mitzenmacher & Upfal [26]);
* :class:`WorldSampler`, which draws possible worlds of a probabilistic
  graph, optionally *conditioned* on a partial edge assignment (needed by the
  Karp–Luby verification sampler, which conditions on one embedding being
  present).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError, ProbabilityError
from repro.utils.rng import RandomLike, ensure_rng

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.graphs.probabilistic_graph import EdgeKey, ProbabilisticGraph

DEFAULT_XI = 0.05
DEFAULT_TAU = 0.1


def monte_carlo_sample_size(xi: float = DEFAULT_XI, tau: float = DEFAULT_TAU) -> int:
    """The paper's cycling number ``m = (4 ln(2/ξ)) / τ²``.

    ``ξ`` bounds the failure probability and must be in (0, 1); ``τ`` is the
    *relative error* of the estimator (Monte-Carlo theory, [26]) and must be
    in (0, 1] — a relative error above 1 is meaningless for a probability
    and silently degenerated into a 1-sample estimate before this check
    existed.
    """
    if not 0.0 < xi < 1.0:
        raise ConfigurationError(f"xi must be in (0, 1), got {xi!r}")
    if not 0.0 < tau <= 1.0:
        raise ConfigurationError(f"tau must be in (0, 1], got {tau!r}")
    return max(1, math.ceil((4.0 * math.log(2.0 / xi)) / (tau * tau)))


class WorldSampler:
    """Draws possible worlds of one probabilistic graph.

    The sampler walks the graph's factors in a fixed order, conditioning each
    joint probability table on the edges already fixed (either by earlier
    overlapping factors or by the caller's evidence), and samples the
    remaining edges of the factor from the conditional distribution.
    """

    def __init__(self, graph: ProbabilisticGraph, rng: RandomLike = None) -> None:
        self.graph = graph
        self.rng = ensure_rng(rng)

    def sample_assignment(
        self, evidence: Mapping[EdgeKey, int] | None = None
    ) -> dict[EdgeKey, int]:
        """One full edge assignment, optionally conditioned on ``evidence``.

        Raises :class:`ProbabilityError` when the evidence is impossible
        under some factor (zero conditional mass).
        """
        assignment: dict[EdgeKey, int] = dict(evidence or {})
        for factor in self.graph.factors:
            fixed = {e: assignment[e] for e in factor.edges if e in assignment}
            pending = [e for e in factor.edges if e not in assignment]
            if not pending:
                continue
            jpt = factor.jpt
            if fixed:
                conditional = jpt.condition(fixed)
                if conditional.total() <= 0:
                    raise ProbabilityError(
                        f"evidence {fixed!r} has zero probability under factor {factor.edges!r}"
                    )
            else:
                conditional = jpt
            draw = conditional.sample(self.rng)
            for key in pending:
                assignment[key] = draw[key]
        return assignment

    def sample_present_edges(
        self, evidence: Mapping[EdgeKey, int] | None = None
    ) -> frozenset:
        """The set of present edges of one sampled world."""
        assignment = self.sample_assignment(evidence)
        return frozenset(key for key, value in assignment.items() if value == 1)

    def estimate_event_probability(
        self,
        predicate: Callable[[frozenset], bool],
        num_samples: int | None = None,
        xi: float = DEFAULT_XI,
        tau: float = DEFAULT_TAU,
    ) -> float:
        """Monte-Carlo estimate of ``Pr(predicate(world))``.

        ``predicate`` receives the frozenset of present edge keys of each
        sampled world.  ``num_samples`` defaults to the paper's cycling
        number for the supplied ``(ξ, τ)``.
        """
        n = num_samples if num_samples is not None else monte_carlo_sample_size(xi, tau)
        hits = 0
        for _ in range(n):
            if predicate(self.sample_present_edges()):
                hits += 1
        return hits / n

    def estimate_conditional_probability(
        self,
        event: Callable[[frozenset], bool],
        condition: Callable[[frozenset], bool],
        num_samples: int | None = None,
        xi: float = DEFAULT_XI,
        tau: float = DEFAULT_TAU,
    ) -> float:
        """Ratio estimator for ``Pr(event | condition)`` (Algorithm 3 shape).

        Samples unconditioned worlds; counts ``n1`` = worlds satisfying both
        event and condition, ``n2`` = worlds satisfying the condition, and
        returns ``n1 / n2``.  Returns 0.0 when the condition never occurred
        in the sample (the caller should then treat the estimate as
        uninformative).
        """
        n = num_samples if num_samples is not None else monte_carlo_sample_size(xi, tau)
        joint_hits = 0
        condition_hits = 0
        for _ in range(n):
            present = self.sample_present_edges()
            if condition(present):
                condition_hits += 1
                if event(present):
                    joint_hits += 1
        if condition_hits == 0:
            return 0.0
        return joint_hits / condition_hits
