"""Always-on asyncio query service over the mutable graph catalog.

The service keeps one :class:`~repro.core.catalog.GraphCatalog` hot behind
an NDJSON-over-TCP front end (plus an in-process client for tests),
coalesces concurrent requests into ``query_many`` micro-batches without
changing a single answer byte, caches seeded answers keyed on the catalog's
mutation generation, and applies admission control — bounded queue,
per-request deadlines, graceful drain.  See :mod:`repro.service.server`
for the execution model.
"""

from repro.service.cache import AnswerCache, CacheStats
from repro.service.client import ServiceClient, TcpServiceClient
from repro.service.protocol import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    ERROR_CODES,
    INTERNAL,
    OVERLOADED,
    SHUTTING_DOWN,
    Request,
    canonical_query_key,
    decode_frame,
    encode_frame,
    parse_request,
)
from repro.service.server import QueryService, ServiceConfig

__all__ = [
    "AnswerCache",
    "CacheStats",
    "ServiceClient",
    "TcpServiceClient",
    "QueryService",
    "ServiceConfig",
    "Request",
    "canonical_query_key",
    "parse_request",
    "encode_frame",
    "decode_frame",
    "ERROR_CODES",
    "BAD_REQUEST",
    "OVERLOADED",
    "DEADLINE_EXCEEDED",
    "SHUTTING_DOWN",
    "INTERNAL",
]
