"""LRU answer cache for the query service.

Entries are keyed on ``(group key, canonical query form, rng root,
catalog generation)`` — see :meth:`repro.service.protocol.Request.cache_key`.
The generation component alone already guarantees a stale answer is never
*served* (a lookup after any mutation uses a new generation and misses);
:meth:`invalidate` additionally drops the dead entries so memory does not
accumulate one whole answer set per historical generation.

Only seeded query requests participate: an unseeded request draws a fresh
RNG root per call, so its answers are legitimately non-reproducible and a
hit could never occur anyway.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from threading import Lock
from repro.exceptions import ConfigurationError


@dataclass
class CacheStats:
    """Monotonic counters; ``hit_rate`` is derived on demand."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries_invalidated: int = 0

    def as_dict(self) -> dict:
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / lookups, 6) if lookups else 0.0,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries_invalidated": self.entries_invalidated,
        }


class AnswerCache:
    """A bounded LRU of serialized query results.

    Values are the JSON-ready ``QueryResult.as_dict()`` payloads — caching
    the wire form (not the dataclass) means a hit is returned byte-identical
    to the original response without re-serialization, and the cache never
    aliases mutable result objects between requests.

    Thread-safe: lookups happen on the event loop while the dispatcher's
    backend thread inserts results.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 0:
            raise ConfigurationError(f"max_entries must be >= 0, got {max_entries!r}")
        self._max_entries = max_entries
        self._entries: OrderedDict[tuple, dict] = OrderedDict()
        self._lock = Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple | None) -> dict | None:
        """The cached payload, or ``None``; uncacheable keys count as misses."""
        if key is None:
            with self._lock:
                self.stats.misses += 1
            return None
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return payload

    def put(self, key: tuple | None, payload: dict) -> None:
        if key is None or self._max_entries == 0:
            return
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self) -> int:
        """Drop everything (a catalog mutation happened); returns the count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += 1
            self.stats.entries_invalidated += dropped
            return dropped
