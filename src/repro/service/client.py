"""Clients for the query service: in-process and NDJSON-over-TCP.

Both speak the exact frames defined in :mod:`repro.service.protocol` and
decode results through :meth:`QueryResult.from_dict`, so a test can swap
one for the other and the bytes on the wire (or the dicts that would have
been those bytes) are identical.  Error frames surface as
:class:`~repro.exceptions.ServiceError` with the server's machine-readable
``code`` intact.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.core.results import QueryResult
from repro.exceptions import ServiceError
from repro.graphs.io import labeled_graph_to_dict, probabilistic_graph_to_dict
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.probabilistic_graph import ProbabilisticGraph
from repro.service.protocol import encode_frame
from repro.service.server import QueryService


class _RequestBuilder:
    """Frame construction and response decoding shared by both transports."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)

    def _frame(self, op: str, *, rng=None, deadline=None, **fields) -> dict:
        frame = {"id": next(self._ids), "op": op, **fields}
        if rng is not None:
            frame["rng"] = rng
        if deadline is not None:
            frame["deadline"] = deadline
        return frame

    @staticmethod
    def _unwrap(response: dict) -> dict:
        if response.get("ok"):
            return response["result"]
        error = response.get("error") or {}
        raise ServiceError(
            error.get("code", "internal"), error.get("message", "unknown service error")
        )

    # -- frame builders ------------------------------------------------
    def query_frame(
        self,
        query: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        rng=None,
        deadline=None,
    ) -> dict:
        return self._frame(
            "query",
            query=labeled_graph_to_dict(query),
            probability_threshold=probability_threshold,
            distance_threshold=distance_threshold,
            rng=rng,
            deadline=deadline,
        )

    def query_top_k_frame(
        self,
        query: LabeledGraph,
        k: int,
        distance_threshold: int,
        rng=None,
        deadline=None,
    ) -> dict:
        return self._frame(
            "query_top_k",
            query=labeled_graph_to_dict(query),
            k=k,
            distance_threshold=distance_threshold,
            rng=rng,
            deadline=deadline,
        )


class ServiceClient(_RequestBuilder):
    """In-process client: frames go straight to :meth:`QueryService.submit`.

    The request/response dicts are the same objects a TCP client would
    serialize, so in-process tests exercise the full protocol layer minus
    only the socket.  ``last_response`` keeps the raw frame of the most
    recent call for assertions on ``cached`` and error metadata.
    """

    def __init__(self, service: QueryService) -> None:
        super().__init__()
        self._service = service
        self.last_response: dict | None = None

    async def _call(self, frame: dict) -> dict:
        self.last_response = await self._service.submit(frame)
        return self._unwrap(self.last_response)

    async def query(
        self,
        query: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        rng=None,
        deadline=None,
    ) -> QueryResult:
        result = await self._call(
            self.query_frame(query, probability_threshold, distance_threshold, rng, deadline)
        )
        return QueryResult.from_dict(result)

    async def query_top_k(
        self,
        query: LabeledGraph,
        k: int,
        distance_threshold: int,
        rng=None,
        deadline=None,
    ) -> QueryResult:
        result = await self._call(
            self.query_top_k_frame(query, k, distance_threshold, rng, deadline)
        )
        return QueryResult.from_dict(result)

    async def add_graph(self, graph: ProbabilisticGraph, external_id: int | None = None) -> dict:
        fields = {"graph": probabilistic_graph_to_dict(graph)}
        if external_id is not None:
            fields["external_id"] = external_id
        return await self._call(self._frame("add_graph", **fields))

    async def remove_graph(self, external_id: int) -> dict:
        return await self._call(self._frame("remove_graph", external_id=external_id))

    async def update_graph(self, external_id: int, graph: ProbabilisticGraph) -> dict:
        return await self._call(
            self._frame(
                "update_graph",
                external_id=external_id,
                graph=probabilistic_graph_to_dict(graph),
            )
        )

    async def compact(self) -> dict:
        return await self._call(self._frame("compact"))

    async def health(self) -> dict:
        return await self._call(self._frame("health"))

    async def stats(self) -> dict:
        return await self._call(self._frame("stats"))


class TcpServiceClient(_RequestBuilder):
    """NDJSON pipelined client over an asyncio TCP connection.

    Requests are written as single lines; a reader task routes response
    lines back to their waiters by ``id``, so many coroutines can share one
    connection and their requests coalesce into server-side micro-batches.
    """

    def __init__(self) -> None:
        super().__init__()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._waiting: dict[object, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()

    async def connect(self, host: str, port: int) -> "TcpServiceClient":
        self._reader, self._writer = await asyncio.open_connection(host, port)
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass
            self._writer = None
        self._fail_waiters(ServiceError("internal", "connection closed"))

    async def __aenter__(self) -> "TcpServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def _fail_waiters(self, error: Exception) -> None:
        waiting, self._waiting = self._waiting, {}
        for future in waiting.values():
            if not future.done():
                future.set_exception(error)

    async def _read_loop(self) -> None:
        import json

        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._waiting.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, OSError, ValueError) as exc:
            self._fail_waiters(ServiceError("internal", f"connection lost: {exc}"))
            return
        self._fail_waiters(ServiceError("internal", "server closed the connection"))

    async def _call(self, frame: dict) -> dict:
        if self._writer is None:
            raise ServiceError("internal", "client is not connected")
        future = asyncio.get_running_loop().create_future()
        self._waiting[frame["id"]] = future
        async with self._write_lock:
            self._writer.write(encode_frame(frame))
            await self._writer.drain()
        try:
            return self._unwrap(await future)
        finally:
            self._waiting.pop(frame["id"], None)

    async def query(
        self,
        query: LabeledGraph,
        probability_threshold: float,
        distance_threshold: int,
        rng=None,
        deadline=None,
    ) -> QueryResult:
        result = await self._call(
            self.query_frame(query, probability_threshold, distance_threshold, rng, deadline)
        )
        return QueryResult.from_dict(result)

    async def query_top_k(
        self,
        query: LabeledGraph,
        k: int,
        distance_threshold: int,
        rng=None,
        deadline=None,
    ) -> QueryResult:
        result = await self._call(
            self.query_top_k_frame(query, k, distance_threshold, rng, deadline)
        )
        return QueryResult.from_dict(result)

    async def add_graph(self, graph: ProbabilisticGraph, external_id: int | None = None) -> dict:
        fields = {"graph": probabilistic_graph_to_dict(graph)}
        if external_id is not None:
            fields["external_id"] = external_id
        return await self._call(self._frame("add_graph", **fields))

    async def remove_graph(self, external_id: int) -> dict:
        return await self._call(self._frame("remove_graph", external_id=external_id))

    async def update_graph(self, external_id: int, graph: ProbabilisticGraph) -> dict:
        return await self._call(
            self._frame(
                "update_graph",
                external_id=external_id,
                graph=probabilistic_graph_to_dict(graph),
            )
        )

    async def compact(self) -> dict:
        return await self._call(self._frame("compact"))

    async def health(self) -> dict:
        return await self._call(self._frame("health"))

    async def stats(self) -> dict:
        return await self._call(self._frame("stats"))
