"""Wire protocol for the query service: NDJSON frames, typed errors, and
the canonical query form used as the answer-cache key.

One request or response per line of UTF-8 JSON.  The same frames flow over
the asyncio TCP transport and through the in-process
:class:`~repro.service.client.ServiceClient`, so both paths exercise the
identical encode/validate/decode pipeline — which is what lets the parity
suite hold the service to byte-identical answers against library mode.

Request frame::

    {"id": 7, "op": "query", "query": {<labeled_graph dict>},
     "probability_threshold": 0.3, "distance_threshold": 1,
     "rng": 1234, "deadline": 2.5}

``op`` is one of ``query`` / ``query_top_k`` (batchable reads),
``add_graph`` / ``remove_graph`` / ``update_graph`` / ``compact``
(exclusive mutations), or ``health`` / ``stats`` (introspection; never
queued).  ``rng`` is an optional integer seed: seeded requests are
cacheable and reproducible, unseeded ones draw a fresh root at admission
and bypass the cache.  ``deadline`` is an optional per-request budget in
seconds, measured from admission.

Success responses carry ``{"id", "ok": true, "result", "cached"}``;
failures carry ``{"id", "ok": false, "error": {"code", "message"}}`` where
``code`` is one of :data:`ERROR_CODES`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.exceptions import ServiceError
from repro.graphs.io import labeled_graph_from_dict, labeled_graph_to_dict
from repro.graphs.labeled_graph import LabeledGraph
from repro.utils.rng import rng_root

# Stable machine-readable error codes (mirrored on ServiceError.code).
BAD_REQUEST = "bad_request"
OVERLOADED = "overloaded"
DEADLINE_EXCEEDED = "deadline_exceeded"
SHUTTING_DOWN = "shutting_down"
INTERNAL = "internal"
ERROR_CODES = (BAD_REQUEST, OVERLOADED, DEADLINE_EXCEEDED, SHUTTING_DOWN, INTERNAL)

# Request classes: batchable reads, exclusive mutations, queue-bypassing
# introspection.  Parsing rejects anything else with ``bad_request``.
QUERY_OPS = ("query", "query_top_k")
MUTATION_OPS = ("add_graph", "remove_graph", "update_graph", "compact")
CONTROL_OPS = ("health", "stats")


def canonical_query_key(query: LabeledGraph) -> str:
    """A deterministic string identity for a query graph.

    Uses the sorted-vertex/sorted-edge dict form with the display ``name``
    stripped: two queries that differ only in name answer identically, so
    they must share a cache entry.  ``sort_keys`` pins the key order, making
    the string a stable dictionary key across processes.
    """
    payload = labeled_graph_to_dict(query)
    payload.pop("name", None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(BAD_REQUEST, message)


def _number(frame: dict, field: str) -> float:
    value = frame.get(field)
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{field!r} must be a number, got {value!r}",
    )
    return value


@dataclass
class Request:
    """A parsed, validated request frame.

    ``root`` is pinned at parse time — ``rng_root(seed)`` for seeded
    requests, a fresh nondeterministic draw otherwise — so a request's
    random streams are fixed before it ever enters a batch, and batch
    composition can never leak into its answers.  ``cache_key`` is ``None``
    exactly when the request is unseeded or not a query.
    """

    request_id: object
    op: str
    query: LabeledGraph | None = None
    payload: dict | None = None  # mutation arguments, verbatim
    probability_threshold: float | None = None
    distance_threshold: int | None = None
    k: int | None = None
    seeded: bool = False
    root: int = 0
    deadline: float | None = None

    def group_key(self) -> tuple:
        """Requests with equal group keys may share one backend micro-batch.

        Thresholds/k are part of the key because ``query_many`` takes them
        once per batch; the RNG root is *not* — per-request roots ride along
        via the ``rngs`` parameter.
        """
        if self.op == "query":
            return ("query", self.probability_threshold, self.distance_threshold)
        if self.op == "query_top_k":
            return ("query_top_k", self.k, self.distance_threshold)
        return (self.op, id(self))  # mutations never coalesce

    def cache_key(self, generation: int) -> tuple | None:
        """The answer-cache key under catalog generation ``generation``."""
        if not self.seeded or self.op not in QUERY_OPS:
            return None
        return (self.group_key(), canonical_query_key(self.query), self.root, generation)


def parse_request(frame: object) -> Request:
    """Validate one decoded frame into a :class:`Request`.

    Raises :class:`ServiceError` with code ``bad_request`` on any shape
    problem; the request id (when present) is still echoed by the server so
    pipelined clients can match the failure to its request.
    """
    _require(isinstance(frame, dict), f"request frame must be an object, got {type(frame).__name__}")
    op = frame.get("op")
    _require(
        op in QUERY_OPS + MUTATION_OPS + CONTROL_OPS,
        f"unknown op {op!r}",
    )
    request = Request(request_id=frame.get("id"), op=op)
    seed = frame.get("rng")
    if seed is not None:
        _require(
            isinstance(seed, int) and not isinstance(seed, bool),
            f"'rng' must be an integer seed, got {seed!r}",
        )
        request.seeded = True
    request.root = rng_root(seed)
    deadline = frame.get("deadline")
    if deadline is not None:
        deadline = _number(frame, "deadline")
        _require(deadline > 0, f"'deadline' must be positive, got {deadline!r}")
        request.deadline = float(deadline)
    if op in QUERY_OPS:
        query_payload = frame.get("query")
        _require(isinstance(query_payload, dict), "'query' must be a labeled-graph object")
        try:
            request.query = labeled_graph_from_dict(query_payload)
        except Exception as exc:
            raise ServiceError(BAD_REQUEST, f"malformed query graph: {exc}") from exc
        request.distance_threshold = int(_number(frame, "distance_threshold"))
        if op == "query":
            request.probability_threshold = float(_number(frame, "probability_threshold"))
        else:
            request.k = int(_number(frame, "k"))
    elif op in MUTATION_OPS:
        request.payload = dict(frame)
    return request


def error_frame(request_id: object, code: str, message: str) -> dict:
    return {"id": request_id, "ok": False, "error": {"code": code, "message": message}}


def result_frame(request_id: object, result: dict, cached: bool) -> dict:
    return {"id": request_id, "ok": True, "result": result, "cached": cached}


def encode_frame(frame: dict) -> bytes:
    """One NDJSON line.  ``json.dumps`` emits ``repr``-shortest floats, so
    probabilities survive the wire bit-for-bit (the byte-parity contract)."""
    return json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> object:
    try:
        return json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(BAD_REQUEST, f"undecodable frame: {exc}") from exc
