"""The always-on query service: micro-batching, admission control, caching.

:class:`QueryService` wraps a :class:`~repro.core.catalog.GraphCatalog` (or
anything with the same ``query_many`` / ``query_top_k_many`` / mutation
surface) behind an asyncio front end.  Requests enter through
:meth:`QueryService.submit` — called directly by the in-process
:class:`~repro.service.client.ServiceClient` and per-line by the NDJSON TCP
handler — pass admission control, and wait on a future that a single
dispatcher loop resolves.

**Micro-batching.**  The dispatcher takes the oldest pending request, waits
up to ``batch_window`` seconds for company, then coalesces every queued
request with the same group key (op + thresholds/k) into one backend
``query_many()`` / ``query_top_k_many()`` call, up to ``max_batch_size``
requests.  Each request's RNG root is pinned at parse time and rides along
via the ``rngs`` parameter, so answers are byte-identical to a sequential
library-mode call with the same seed — batch composition never leaks in.

**Ordering.**  Execution is a single serialized lane (one
``asyncio.to_thread`` call at a time): queries may coalesce and reorder
among themselves — they are pure reads of the catalog — but a mutation runs
alone, and no queued request ever jumps over a mutation that was admitted
before it.  That pair of rules keeps every answer consistent with *some*
admission-order serialization, which is exactly the guarantee the parity
suite checks against a twin catalog.

**Admission control.**  The pending queue is bounded by ``max_queue_depth``;
beyond it requests fail fast with ``overloaded``.  Per-request deadlines
(request field or ``default_deadline``) expire with ``deadline_exceeded``
and expired or disconnected requests are dropped *before* execution when
possible.  :meth:`stop` drains: queued work completes (bounded by
``drain_timeout``), new work is refused with ``shutting_down``.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field

from repro.core.catalog import GraphCatalog
from repro.exceptions import ConfigurationError, ReproError, ServiceError
from repro.graphs.io import probabilistic_graph_from_dict
from repro.service.cache import AnswerCache
from repro.service.protocol import (
    BAD_REQUEST,
    CONTROL_OPS,
    DEADLINE_EXCEEDED,
    INTERNAL,
    MUTATION_OPS,
    OVERLOADED,
    SHUTTING_DOWN,
    Request,
    decode_frame,
    encode_frame,
    error_frame,
    parse_request,
    result_frame,
)


@dataclass
class ServiceConfig:
    """Tuning knobs for :class:`QueryService`.

    ``batch_window`` is how long the dispatcher lingers for more requests
    before executing a query batch (0 disables coalescing delay — batches
    then only form from already-queued requests); ``max_batch_size`` caps
    one backend call.  ``max_queue_depth`` bounds admission;
    ``default_deadline`` (seconds) applies to requests that carry none, and
    ``None`` means wait forever.  ``drain_timeout`` bounds :meth:`QueryService.stop`.
    ``search_config`` is the server-side pipeline configuration applied to
    every query — the wire protocol deliberately does not let clients vary
    it per request, since answers cached under one configuration must never
    be served under another.
    """

    batch_window: float = 0.002
    max_batch_size: int = 16
    max_queue_depth: int = 64
    default_deadline: float | None = None
    drain_timeout: float = 5.0
    cache_entries: int = 1024
    stats_window: int = 2048
    search_config: object | None = None

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise ConfigurationError(f"batch_window must be >= 0, got {self.batch_window!r}")
        if self.max_batch_size < 1:
            raise ConfigurationError(f"max_batch_size must be >= 1, got {self.max_batch_size!r}")
        if self.max_queue_depth < 1:
            raise ConfigurationError(f"max_queue_depth must be >= 1, got {self.max_queue_depth!r}")


@dataclass
class _Pending:
    """One admitted request waiting in the dispatch queue."""

    request: Request
    future: asyncio.Future
    admitted_at: float
    expires_at: float | None
    cancelled: bool = False


@dataclass
class _Counters:
    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0
    rejected_bad_request: int = 0
    rejected_overloaded: int = 0
    rejected_shutting_down: int = 0
    deadline_expired: int = 0
    dropped_before_execution: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_batch_size: int = 0
    mutations: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class QueryService:
    """See the module docstring for the execution model.

    Lifecycle: ``await start()`` → submit traffic (in-process or via
    :meth:`serve_tcp`) → ``await stop()``.  The service does not own the
    catalog — closing it remains the caller's job — but it is the only
    writer while running: route mutations through the service so they
    serialize with query traffic and invalidate the answer cache.
    """

    def __init__(self, catalog: GraphCatalog, config: ServiceConfig | None = None) -> None:
        self._catalog = catalog
        self._config = config or ServiceConfig()
        self._cache = AnswerCache(self._config.cache_entries)
        self._counters = _Counters()
        self._pending: deque[_Pending] = deque()
        self._wake = asyncio.Event()
        self._accepting = False
        self._draining = False
        self._dispatcher: asyncio.Task | None = None
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        # Latency ring buffers (seconds): admission→dispatch, backend call,
        # admission→resolution.  Bounded so /stats stays O(window).
        window = self._config.stats_window
        self._queue_seconds: deque[float] = deque(maxlen=window)
        self._execute_seconds: deque[float] = deque(maxlen=window)
        self._total_seconds: deque[float] = deque(maxlen=window)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "QueryService":
        if self._dispatcher is not None:
            raise ServiceError(INTERNAL, "service already started")
        self._loop = asyncio.get_running_loop()
        self._accepting = True
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def stop(self) -> None:
        """Graceful drain: finish queued work, refuse new work, stop.

        Idempotent.  Queued requests still complete (a batch already in the
        backend always runs to completion); if the drain exceeds
        ``drain_timeout`` the dispatcher is cancelled and whatever is left
        fails with ``shutting_down``.
        """
        if self._dispatcher is None:
            return
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._draining = True
        self._wake.set()
        dispatcher, self._dispatcher = self._dispatcher, None
        try:
            await asyncio.wait_for(asyncio.shield(dispatcher), self._config.drain_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            dispatcher.cancel()
            try:
                await dispatcher
            except (asyncio.CancelledError, Exception):
                pass
        while self._pending:
            item = self._pending.popleft()
            self._resolve(
                item,
                error_frame(
                    item.request.request_id,
                    SHUTTING_DOWN,
                    "service stopped before the request could run",
                ),
            )

    async def __aenter__(self) -> "QueryService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # request entry (in-process and TCP share this path)
    # ------------------------------------------------------------------
    async def submit(self, frame: object) -> dict:
        """Run one request frame through parse → admission → dispatch.

        Always returns a response frame — typed errors included — and never
        raises for request-level failures, so a TCP handler can write the
        return value straight to the socket.
        """
        self._counters.submitted += 1
        try:
            request = parse_request(frame)
        except ServiceError as exc:
            self._counters.rejected_bad_request += 1
            request_id = frame.get("id") if isinstance(frame, dict) else None
            return error_frame(request_id, exc.code, str(exc))
        if request.op in CONTROL_OPS:
            payload = self.health() if request.op == "health" else self.stats()
            return result_frame(request.request_id, payload, cached=False)
        if not self._accepting:
            self._counters.rejected_shutting_down += 1
            return error_frame(
                request.request_id, SHUTTING_DOWN, "service is not accepting requests"
            )
        if len(self._pending) >= self._config.max_queue_depth:
            self._counters.rejected_overloaded += 1
            return error_frame(
                request.request_id,
                OVERLOADED,
                f"admission queue is full ({self._config.max_queue_depth} pending)",
            )
        self._counters.admitted += 1
        deadline = request.deadline
        if deadline is None:
            deadline = self._config.default_deadline
        now = self._loop.time()
        item = _Pending(
            request=request,
            future=self._loop.create_future(),
            admitted_at=now,
            expires_at=(now + deadline) if deadline is not None else None,
        )
        self._pending.append(item)
        self._wake.set()
        try:
            if deadline is None:
                return await item.future
            return await asyncio.wait_for(item.future, deadline)
        except (asyncio.TimeoutError, TimeoutError):
            item.cancelled = True
            self._counters.deadline_expired += 1
            return error_frame(
                request.request_id,
                DEADLINE_EXCEEDED,
                f"deadline of {deadline}s expired before the request completed",
            )
        except asyncio.CancelledError:
            # The waiter vanished (client disconnect): drop the work if it
            # has not run yet, and let the cancellation keep propagating.
            item.cancelled = True
            raise

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Cheap liveness payload; never touches the dispatch queue."""
        status = "ok" if self._accepting else ("draining" if self._draining else "stopped")
        return {
            "status": status,
            "queue_depth": len(self._pending),
            "live_graphs": len(self._catalog.live_external_ids()),
            "generation": self._catalog.mutation_generation,
        }

    def stats(self) -> dict:
        """Counters, batch shape, cache accounting, latency percentiles."""
        batches = self._counters.batches
        return {
            "queue_depth": len(self._pending),
            "accepting": self._accepting,
            "generation": self._catalog.mutation_generation,
            "counters": self._counters.as_dict(),
            "batch": {
                "count": batches,
                "mean_size": round(self._counters.batched_requests / batches, 6)
                if batches
                else 0.0,
                "max_size": self._counters.max_batch_size,
            },
            "cache": {**self._cache.stats.as_dict(), "entries": len(self._cache)},
            "latency": {
                "queue_seconds": _percentiles(self._queue_seconds),
                "execute_seconds": _percentiles(self._execute_seconds),
                "total_seconds": _percentiles(self._total_seconds),
            },
        }

    # ------------------------------------------------------------------
    # TCP front end
    # ------------------------------------------------------------------
    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Listen for NDJSON connections; returns the bound ``(host, port)``.

        Each connection may pipeline requests: every line is served by its
        own task, responses are written as they finish (match them by
        ``id``).  A disconnect cancels that connection's outstanding
        requests without disturbing the rest of the service.
        """
        if self._dispatcher is None:
            raise ServiceError(INTERNAL, "start() the service before serve_tcp()")
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def _handle_connection(self, reader, writer) -> None:
        tasks: set[asyncio.Task] = set()
        write_lock = asyncio.Lock()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(self._serve_line(line, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _serve_line(self, line: bytes, writer, write_lock: asyncio.Lock) -> None:
        try:
            frame = decode_frame(line)
        except ServiceError as exc:
            self._counters.rejected_bad_request += 1
            response = error_frame(None, exc.code, str(exc))
        else:
            response = await self.submit(frame)
        try:
            async with write_lock:
                writer.write(encode_frame(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client is gone; the answer dies with the connection

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            if not self._pending:
                if self._draining:
                    return
                self._wake.clear()
                continue
            head = self._pending[0].request
            if head.op not in MUTATION_OPS:
                if (
                    self._config.batch_window > 0
                    and len(self._pending) < self._config.max_batch_size
                    and not self._draining
                ):
                    # Linger so concurrent callers can join this batch.
                    await asyncio.sleep(self._config.batch_window)
            batch = [item for item in self._collect(head.group_key()) if self._still_wanted(item)]
            if not batch:
                continue
            self._counters.batches += 1
            self._counters.batched_requests += len(batch)
            self._counters.max_batch_size = max(self._counters.max_batch_size, len(batch))
            started = self._loop.time()
            for item in batch:
                self._queue_seconds.append(started - item.admitted_at)
            try:
                responses = await asyncio.to_thread(self._run_batch, batch)
            except ServiceError as exc:
                responses = [
                    error_frame(item.request.request_id, exc.code, str(exc))
                    for item in batch
                ]
            except ReproError as exc:
                responses = [
                    error_frame(item.request.request_id, BAD_REQUEST, str(exc))
                    for item in batch
                ]
            except Exception as exc:  # the lane must survive anything
                responses = [
                    error_frame(
                        item.request.request_id, INTERNAL, f"{type(exc).__name__}: {exc}"
                    )
                    for item in batch
                ]
            elapsed = self._loop.time() - started
            for item, response in zip(batch, responses):
                self._execute_seconds.append(elapsed)
                self._resolve(item, response)

    def _collect(self, group_key: tuple) -> list[_Pending]:
        """Pop every batchable request matching ``group_key`` — but never
        past a queued mutation, which acts as an ordering barrier."""
        batch: list[_Pending] = []
        rest: deque[_Pending] = deque()
        barrier = False
        while self._pending:
            item = self._pending.popleft()
            if barrier:
                rest.append(item)
            elif item.request.op in MUTATION_OPS:
                if batch:
                    barrier = True
                    rest.append(item)
                else:
                    batch.append(item)  # head itself is the mutation: run it alone
                    barrier = True
            elif (
                len(batch) < self._config.max_batch_size
                and item.request.group_key() == group_key
            ):
                batch.append(item)
            else:
                rest.append(item)
        self._pending.extend(rest)
        return batch

    def _still_wanted(self, item: _Pending) -> bool:
        if item.cancelled or item.future.done():
            self._counters.dropped_before_execution += 1
            return False
        if item.expires_at is not None and self._loop.time() >= item.expires_at:
            # The waiter's wait_for fires at the same instant; skipping the
            # backend call is purely an economy measure.
            self._counters.dropped_before_execution += 1
            return False
        return True

    def _resolve(self, item: _Pending, response: dict) -> None:
        if item.future.done() or item.future.cancelled():
            return
        item.future.set_result(response)
        self._total_seconds.append(self._loop.time() - item.admitted_at)
        if response.get("ok"):
            self._counters.completed += 1
        else:
            self._counters.failed += 1

    # ------------------------------------------------------------------
    # backend execution (worker thread; the single serialized lane)
    # ------------------------------------------------------------------
    def _run_batch(self, batch: list[_Pending]) -> list[dict]:
        head = batch[0].request
        if head.op in MUTATION_OPS:
            self._counters.mutations += 1
            return [self._run_mutation(head)]
        generation = self._catalog.mutation_generation
        keys = [item.request.cache_key(generation) for item in batch]
        payloads: list[dict | None] = [self._cache.get(key) for key in keys]
        misses = [index for index, payload in enumerate(payloads) if payload is None]
        if misses:
            queries = [batch[index].request.query for index in misses]
            roots = [batch[index].request.root for index in misses]
            if head.op == "query":
                results = self._catalog.query_many(
                    queries,
                    head.probability_threshold,
                    head.distance_threshold,
                    config=self._config.search_config,
                    rngs=roots,
                )
            else:
                results = self._catalog.query_top_k_many(
                    queries,
                    head.k,
                    head.distance_threshold,
                    config=self._config.search_config,
                    rngs=roots,
                )
            for index, result in zip(misses, results):
                payload = result.as_dict()
                payloads[index] = payload
                self._cache.put(keys[index], payload)
        miss_set = set(misses)
        responses = []
        for index, (item, payload) in enumerate(zip(batch, payloads)):
            cached = index not in miss_set
            if cached:
                self._counters.cached += 1
            responses.append(result_frame(item.request.request_id, payload, cached))
        return responses

    def _run_mutation(self, request: Request) -> dict:
        payload = request.payload
        generation_before = self._catalog.mutation_generation
        try:
            if request.op == "add_graph":
                graph = self._mutation_graph(payload)
                external_id = payload.get("external_id")
                if external_id is not None and not isinstance(external_id, int):
                    raise ServiceError(BAD_REQUEST, "'external_id' must be an integer")
                assigned = self._catalog.add_graph(graph, external_id=external_id)
                result = {"op": "add_graph", "external_id": assigned}
            elif request.op == "remove_graph":
                external_id = self._mutation_id(payload)
                self._catalog.remove_graph(external_id)
                result = {"op": "remove_graph", "external_id": external_id}
            elif request.op == "update_graph":
                external_id = self._mutation_id(payload)
                self._catalog.update_graph(external_id, self._mutation_graph(payload))
                result = {"op": "update_graph", "external_id": external_id}
            else:  # compact
                self._catalog.compact()
                result = {
                    "op": "compact",
                    "live_graphs": len(self._catalog.live_external_ids()),
                }
        finally:
            # Even a failed mutation may have advanced partway (update =
            # remove + add); dropping the cache on the error path costs a
            # few recomputes, never a stale answer.
            if self._catalog.mutation_generation != generation_before:
                self._cache.invalidate()
        result["generation"] = self._catalog.mutation_generation
        return result_frame(request.request_id, result, cached=False)

    @staticmethod
    def _mutation_graph(payload: dict):
        graph_payload = payload.get("graph")
        if not isinstance(graph_payload, dict):
            raise ServiceError(BAD_REQUEST, "'graph' must be a probabilistic-graph object")
        try:
            return probabilistic_graph_from_dict(graph_payload)
        except Exception as exc:
            raise ServiceError(BAD_REQUEST, f"malformed graph payload: {exc}") from exc

    @staticmethod
    def _mutation_id(payload: dict) -> int:
        external_id = payload.get("external_id")
        if not isinstance(external_id, int) or isinstance(external_id, bool):
            raise ServiceError(BAD_REQUEST, "'external_id' must be an integer")
        return external_id


def _percentiles(samples: deque[float]) -> dict:
    """Nearest-rank p50/p95/p99 over the retained latency window."""
    if not samples:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "count": 0}
    ordered = sorted(samples)
    count = len(ordered)

    def rank(fraction: float) -> float:
        return round(ordered[min(count - 1, int(fraction * count))], 6)

    return {"p50": rank(0.50), "p95": rank(0.95), "p99": rank(0.99), "count": count}
