"""Deterministic structural pruning (Theorem 1, after Yan et al. [38])."""

from repro.structural.feature_index import StructuralFeatureIndex
from repro.structural.similarity_filter import StructuralFilter, StructuralFilterResult

__all__ = ["StructuralFeatureIndex", "StructuralFilter", "StructuralFilterResult"]
