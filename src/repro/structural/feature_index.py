"""A Grafil-style deterministic feature-count index.

The paper performs structural pruning with the substructure-similarity filter
of Yan, Yu & Han [38]: per-feature occurrence counts in the query are
compared against per-graph counts, and a graph survives only if the total
"missed" feature occurrences can be explained by ``δ`` edge relaxations of
the query.  The original multi-filter composition is proprietary-ish C++; we
reproduce its core counting filter:

* each indexed feature ``f`` has an occurrence count ``cnt_g(f)`` per data
  graph (number of distinct embeddings, capped),
* for a query ``q`` with threshold ``δ`` the maximum number of feature
  occurrences a single edge deletion can destroy is ``maxhit_q(f)``
  (the largest number of ``f``-embeddings in ``q`` sharing one edge), so any
  data graph with ``cnt_g(f) < cnt_q(f) - δ · maxhit_q(f)`` for some feature
  — or, in the composed form, whose accumulated deficit exceeds the
  allowance — cannot contain ``q`` within distance ``δ`` and is pruned
  (Theorem 1 keeps this sound for probabilistic graphs).

Counts are stored as a dense ``int32`` matrix ``counts[graph, feature]`` so
the per-query deficit test runs as one vectorized pass over the whole
database (:meth:`deficit_prunable_mask`) instead of a per-graph dict walk.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.graphs.labeled_graph import LabeledGraph
from repro.isomorphism.embeddings import count_embeddings_block, find_embeddings
from repro.pmi.features import Feature
from repro.utils.rows import resolve_row_selector
from repro.exceptions import ConfigurationError, StateError


class StructuralFeatureIndex:
    """Columnar per-graph feature occurrence counts for the structural filter."""

    def __init__(self, embedding_limit: int = 64) -> None:
        self.embedding_limit = embedding_limit
        self.features: list[Feature] = []
        self._counts: np.ndarray = np.empty((0, 0), dtype=np.int32)
        self._feature_pos: dict[int, int] = {}
        self._built = False

    @classmethod
    def from_counts(
        cls,
        features: list[Feature],
        counts: np.ndarray,
        embedding_limit: int = 64,
        copy: bool = True,
    ) -> "StructuralFeatureIndex":
        """Reconstruct an index from a persisted ``counts[graph, feature]``
        matrix (the shard-cache warm path), skipping embedding enumeration.

        ``copy=False`` adopts the matrix as-is — the shared-memory attach
        path, where ``counts`` is a read-only ``int32`` view into a shard
        arena and copying it would defeat the zero-copy plane.  The caller
        then guarantees the buffer outlives the index; :meth:`append` stays
        safe either way because it replaces the matrix via ``vstack``.
        """
        if counts.shape[1] != len(features):
            raise ConfigurationError(
                f"counts matrix has {counts.shape[1]} feature columns, "
                f"got {len(features)} features"
            )
        index = cls(embedding_limit=embedding_limit)
        index.features = list(features)
        index._feature_pos = {
            feature.feature_id: column for column, feature in enumerate(index.features)
        }
        if copy:
            index._counts = np.array(counts, dtype=np.int32)  # own the buffer
        else:
            if counts.dtype != np.int32:
                raise ConfigurationError(
                    f"copy=False requires an int32 counts matrix, got {counts.dtype}"
                )
            index._counts = counts
        index._built = True
        return index

    def build(
        self, skeletons: list[LabeledGraph], features: list[Feature]
    ) -> "StructuralFeatureIndex":
        """Count every feature's embeddings in every skeleton."""
        self.features = list(features)
        self._feature_pos = {
            feature.feature_id: column for column, feature in enumerate(self.features)
        }
        self._counts = self._count_matrix(skeletons)
        self._built = True
        return self

    def append(self, skeletons: list[LabeledGraph]) -> "StructuralFeatureIndex":
        """Append one count row per skeleton, keeping the feature columns.

        Counting is deterministic (no RNG), so an appended row always equals
        the row a from-scratch :meth:`build` over the grown database would
        produce.  This is the delta-segment growth path of the mutable
        catalog; existing rows are never touched.
        """
        if not self._built:
            raise StateError("the structural feature index must be built first")
        self._counts = np.vstack([self._counts, self._count_matrix(skeletons)])
        return self

    def _count_matrix(self, skeletons: list[LabeledGraph]) -> np.ndarray:
        """``counts[graph, feature]`` for a batch of skeletons.

        Filled feature-major: each feature's compiled join plan is reused
        across the whole skeleton block (counting is deterministic and
        RNG-free, so the fill order does not affect results).
        """
        counts = np.zeros((len(skeletons), len(self.features)), dtype=np.int32)
        for column, feature in enumerate(self.features):
            counts[:, column] = count_embeddings_block(
                feature.graph, skeletons, limit=self.embedding_limit
            )
        return counts

    def subset(self, graph_ids) -> "StructuralFeatureIndex":
        """A new index over the given rows of the count matrix.

        Mirrors :meth:`ProbabilisticMatrixIndex.subset`: row ``k`` of the
        slice is old row ``graph_ids[k]``, features are shared, and
        contiguous ascending ranges keep a zero-copy view of the counts.
        Used to split one built structural index into per-shard slices.
        """
        if not self._built:
            raise StateError("the structural feature index must be built first")
        _, selector = resolve_row_selector(graph_ids, self._counts.shape[0])
        sub = StructuralFeatureIndex(embedding_limit=self.embedding_limit)
        sub.features = list(self.features)
        sub._feature_pos = dict(self._feature_pos)
        sub._counts = self._counts[selector]
        sub._built = True
        return sub

    def counts_matrix(self) -> np.ndarray:
        """The raw ``counts[graph, feature]`` matrix (read-only view; this is
        what :meth:`from_counts` restores on the shard-cache warm path)."""
        if not self._built:
            raise StateError("the structural feature index must be built first")
        view = self._counts.view()
        view.flags.writeable = False
        return view

    @property
    def is_built(self) -> bool:
        return self._built

    @property
    def num_graphs(self) -> int:
        return self._counts.shape[0]

    def count(self, graph_id: int, feature_id: int) -> int:
        column = self._feature_pos.get(feature_id)
        if column is None or not 0 <= graph_id < self._counts.shape[0]:
            return 0
        return int(self._counts[graph_id, column])

    def counts_for_graph(self, graph_id: int) -> dict[int, int]:
        if not 0 <= graph_id < self._counts.shape[0]:
            return {}
        row = self._counts[graph_id]
        return {
            self.features[column].feature_id: int(row[column])
            for column in np.flatnonzero(row)
        }

    def query_profile(self, query: LabeledGraph) -> dict[int, dict]:
        """Feature occurrence statistics of the query.

        For each feature occurring in the query: its embedding count and the
        maximum number of embeddings that share a single query edge (how many
        occurrences one edge deletion can destroy at most).
        """
        profile: dict[int, dict] = {}
        for feature in self.features:
            embeddings = find_embeddings(feature.graph, query, limit=self.embedding_limit)
            if not embeddings:
                continue
            per_edge: dict = defaultdict(int)
            for embedding in embeddings:
                for key in embedding.edges:
                    per_edge[key] += 1
            profile[feature.feature_id] = {
                "count": len(embeddings),
                "max_hits_per_edge": max(per_edge.values()) if per_edge else 0,
            }
        return profile

    def deficit_prunable_mask(
        self, query_profile: dict[int, dict], distance_threshold: int
    ) -> np.ndarray:
        """Vectorized Grafil deficit test over every graph at once.

        Returns a boolean mask over graph ids: True where some profiled
        feature's occurrence deficit exceeds what ``δ`` edge relaxations can
        explain — exactly the per-graph test of
        ``cnt_q(f) - cnt_g(f) > δ · maxhit_q(f)`` applied column-wise.
        """
        mask = np.zeros(self._counts.shape[0], dtype=bool)
        for feature_id, stats in query_profile.items():
            column = self._feature_pos.get(feature_id)
            if column is None:
                continue
            allowance = distance_threshold * max(1, stats["max_hits_per_edge"])
            deficit = stats["count"] - self._counts[:, column]
            mask |= deficit > allowance
        return mask

    def graph_ids(self) -> list[int]:
        return list(range(self._counts.shape[0]))
