"""A Grafil-style deterministic feature-count index.

The paper performs structural pruning with the substructure-similarity filter
of Yan, Yu & Han [38]: per-feature occurrence counts in the query are
compared against per-graph counts, and a graph survives only if the total
"missed" feature occurrences can be explained by ``δ`` edge relaxations of
the query.  The original multi-filter composition is proprietary-ish C++; we
reproduce its core counting filter:

* each indexed feature ``f`` has an occurrence count ``cnt_g(f)`` per data
  graph (number of distinct embeddings, capped),
* for a query ``q`` with threshold ``δ`` the maximum number of feature
  occurrences a single edge deletion can destroy is ``maxhit_q(f)``
  (the largest number of ``f``-embeddings in ``q`` sharing one edge), so any
  data graph with ``cnt_g(f) < cnt_q(f) - δ · maxhit_q(f)`` for some feature
  — or, in the composed form, whose accumulated deficit exceeds the
  allowance — cannot contain ``q`` within distance ``δ`` and is pruned
  (Theorem 1 keeps this sound for probabilistic graphs).
"""

from __future__ import annotations

from collections import defaultdict

from repro.graphs.labeled_graph import LabeledGraph
from repro.isomorphism.embeddings import find_embeddings
from repro.pmi.features import Feature


class StructuralFeatureIndex:
    """Per-graph feature occurrence counts for the structural filter."""

    def __init__(self, embedding_limit: int = 64) -> None:
        self.embedding_limit = embedding_limit
        self.features: list[Feature] = []
        self._counts: dict[int, dict[int, int]] = {}
        self._built = False

    def build(
        self, skeletons: list[LabeledGraph], features: list[Feature]
    ) -> "StructuralFeatureIndex":
        """Count every feature's embeddings in every skeleton."""
        self.features = list(features)
        self._counts = {}
        for graph_id, skeleton in enumerate(skeletons):
            row: dict[int, int] = {}
            for feature in self.features:
                embeddings = find_embeddings(
                    feature.graph, skeleton, limit=self.embedding_limit
                )
                if embeddings:
                    row[feature.feature_id] = len(embeddings)
            self._counts[graph_id] = row
        self._built = True
        return self

    @property
    def is_built(self) -> bool:
        return self._built

    def count(self, graph_id: int, feature_id: int) -> int:
        return self._counts.get(graph_id, {}).get(feature_id, 0)

    def counts_for_graph(self, graph_id: int) -> dict[int, int]:
        return dict(self._counts.get(graph_id, {}))

    def query_profile(self, query: LabeledGraph) -> dict[int, dict]:
        """Feature occurrence statistics of the query.

        For each feature occurring in the query: its embedding count and the
        maximum number of embeddings that share a single query edge (how many
        occurrences one edge deletion can destroy at most).
        """
        profile: dict[int, dict] = {}
        for feature in self.features:
            embeddings = find_embeddings(feature.graph, query, limit=self.embedding_limit)
            if not embeddings:
                continue
            per_edge: dict = defaultdict(int)
            for embedding in embeddings:
                for key in embedding.edges:
                    per_edge[key] += 1
            profile[feature.feature_id] = {
                "count": len(embeddings),
                "max_hits_per_edge": max(per_edge.values()) if per_edge else 0,
            }
        return profile

    def graph_ids(self) -> list[int]:
        return sorted(self._counts)
