"""Structural pruning of the database (step 1 of the pipeline, Theorem 1).

If the query is not subgraph-similar to the deterministic skeleton ``gc``
(all uncertainty removed) its subgraph similarity probability is zero, so the
graph can be discarded before any probabilistic work.  The filter combines:

1. a label-multiset quick check (a query edge signature the skeleton lacks
   must be relaxed away, so more than ``δ`` missing signatures ⇒ prune);
2. the feature-count filter of :class:`StructuralFeatureIndex` (Grafil [38]);
3. optionally, an exact subgraph-similarity check (VF2 over relaxations) for
   callers that want the candidate set to be exactly ``SCq``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.labeled_graph import LabeledGraph
from repro.isomorphism.mcs import is_subgraph_similar, signature_distance_lower_bound
from repro.structural.feature_index import StructuralFeatureIndex
from repro.utils.timer import Timer
from repro.exceptions import StateError


@dataclass
class StructuralFilterResult:
    """Outcome of structural pruning over a database."""

    candidate_ids: list[int] = field(default_factory=list)
    pruned_ids: list[int] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def candidate_count(self) -> int:
        return len(self.candidate_ids)


class StructuralFilter:
    """Runs the deterministic filters against all indexed skeletons."""

    def __init__(
        self,
        index: StructuralFeatureIndex,
        skeletons: list[LabeledGraph],
        exact_check: bool = False,
    ) -> None:
        if not index.is_built:
            raise StateError("the structural feature index must be built first")
        self.index = index
        # kept as the sequence given, NOT listed: the planner passes a lazy
        # per-graph view over shared-memory shards, and only the skeletons
        # of deficit-test survivors are ever indexed below
        self.skeletons = skeletons
        self.exact_check = exact_check

    def filter(self, query: LabeledGraph, distance_threshold: int) -> StructuralFilterResult:
        """Return the candidate set ``SCq`` (ids into the database order)."""
        result = StructuralFilterResult()
        timer = Timer()
        with timer:
            keep = self.filter_mask(query, distance_threshold)
            result.candidate_ids = [int(gid) for gid in np.flatnonzero(keep)]
            result.pruned_ids = [int(gid) for gid in np.flatnonzero(~keep)]
        result.seconds = timer.elapsed
        return result

    def filter_mask(
        self,
        query: LabeledGraph,
        distance_threshold: int,
        active: np.ndarray | None = None,
    ) -> np.ndarray:
        """Boolean keep-mask over the database, honoring an incoming mask.

        ``active`` restricts the work to a candidate subset (graphs outside
        it come back False without being examined) — this is the pipeline
        entry point, where an upstream stage may already have narrowed the
        candidate set.  The Grafil feature-count deficit (filter 2) is one
        vectorized pass over the whole index either way; the per-skeleton
        signature/exact checks only run for active survivors.
        """
        profile = self.index.query_profile(query)
        feature_pruned = self.index.deficit_prunable_mask(profile, distance_threshold)
        keep = np.asarray(~feature_pruned, dtype=bool)
        if active is not None:
            keep &= np.asarray(active, dtype=bool)
        for graph_id in np.flatnonzero(keep):
            skeleton = self.skeletons[int(graph_id)]
            if signature_distance_lower_bound(query, skeleton) > distance_threshold:
                keep[graph_id] = False
            elif self.exact_check and not is_subgraph_similar(
                query, skeleton, distance_threshold
            ):
                keep[graph_id] = False
        return keep
