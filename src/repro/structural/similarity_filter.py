"""Structural pruning of the database (step 1 of the pipeline, Theorem 1).

If the query is not subgraph-similar to the deterministic skeleton ``gc``
(all uncertainty removed) its subgraph similarity probability is zero, so the
graph can be discarded before any probabilistic work.  The filter combines:

1. a label-multiset quick check (a query edge signature the skeleton lacks
   must be relaxed away, so more than ``δ`` missing signatures ⇒ prune);
2. the feature-count filter of :class:`StructuralFeatureIndex` (Grafil [38]);
3. optionally, an exact subgraph-similarity check (VF2 over relaxations) for
   callers that want the candidate set to be exactly ``SCq``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphs.labeled_graph import LabeledGraph
from repro.isomorphism.mcs import is_subgraph_similar, signature_distance_lower_bound
from repro.structural.feature_index import StructuralFeatureIndex
from repro.utils.timer import Timer


@dataclass
class StructuralFilterResult:
    """Outcome of structural pruning over a database."""

    candidate_ids: list[int] = field(default_factory=list)
    pruned_ids: list[int] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def candidate_count(self) -> int:
        return len(self.candidate_ids)


class StructuralFilter:
    """Runs the deterministic filters against all indexed skeletons."""

    def __init__(
        self,
        index: StructuralFeatureIndex,
        skeletons: list[LabeledGraph],
        exact_check: bool = False,
    ) -> None:
        if not index.is_built:
            raise ValueError("the structural feature index must be built first")
        self.index = index
        self.skeletons = list(skeletons)
        self.exact_check = exact_check

    def filter(self, query: LabeledGraph, distance_threshold: int) -> StructuralFilterResult:
        """Return the candidate set ``SCq`` (ids into the database order)."""
        result = StructuralFilterResult()
        timer = Timer()
        with timer:
            profile = self.index.query_profile(query)
            # filter 2 first: the Grafil feature-count deficit is one
            # vectorized pass over the whole database
            feature_pruned = self.index.deficit_prunable_mask(profile, distance_threshold)
            for graph_id, skeleton in enumerate(self.skeletons):
                if self._prunable(
                    query, skeleton, bool(feature_pruned[graph_id]), distance_threshold
                ):
                    result.pruned_ids.append(graph_id)
                else:
                    result.candidate_ids.append(graph_id)
        result.seconds = timer.elapsed
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _prunable(
        self,
        query: LabeledGraph,
        skeleton: LabeledGraph,
        feature_count_prunable: bool,
        distance_threshold: int,
    ) -> bool:
        # filter 2 (precomputed, vectorized): feature-count deficit (Grafil)
        if feature_count_prunable:
            return True
        # filter 1: edge-signature deficit
        if signature_distance_lower_bound(query, skeleton) > distance_threshold:
            return True
        # filter 3 (optional): exact similarity check
        if self.exact_check and not is_subgraph_similar(query, skeleton, distance_threshold):
            return True
        return False
