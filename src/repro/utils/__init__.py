"""Small shared utilities: random number handling, timers, atomic file IO."""

from repro.utils.atomic_io import (
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    discard_stale_tmp_files,
)
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
    "discard_stale_tmp_files",
    "ensure_rng",
    "Timer",
]
