"""Small shared utilities: random number handling, timers and logging."""

from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer

__all__ = ["ensure_rng", "Timer"]
