"""Atomic file persistence: tmp file + flush + fsync + ``os.replace``.

Every on-disk artifact the library writes (graph databases, PMI npz/JSON
payloads, shard caches, catalog snapshots, the durable catalog's CURRENT
pointer) goes through these helpers, so a crash at any instant leaves either
the old complete file or the new complete file — never a torn one.  The
recipe is the standard one:

1. write the full payload to a uniquely named temporary file *in the target
   directory* (same filesystem, so the final rename cannot cross devices),
2. flush and ``fsync`` the temporary file (the data is on disk, not just in
   the page cache),
3. ``os.replace`` it over the final path (atomic on POSIX),
4. ``fsync`` the containing directory (the rename itself is on disk).

A crash before step 3 leaves a stray ``*.tmp`` file next to an intact old
version; readers never look at temporary names, and
:func:`discard_stale_tmp_files` reclaims them on the next open.

``fsync_file`` / ``fsync_directory`` / ``replace_file`` are deliberately
module-level indirection points: the crash-injection test harness patches
them to simulate a power cut at every durability boundary.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
    "discard_stale_tmp_files",
    "fsync_directory",
    "fsync_file",
    "replace_file",
]

_TMP_SUFFIX = ".tmp"


def fsync_file(handle) -> None:
    """Flush ``handle`` and force its bytes to stable storage."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_directory(path: str | Path) -> None:
    """Force a directory entry update (a rename or create) to stable storage.

    Best-effort: platforms or filesystems that cannot ``fsync`` a directory
    (for example Windows) degrade to the rename-only guarantee.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def replace_file(source: str | Path, target: str | Path) -> None:
    """Atomically move ``source`` over ``target`` (the commit point)."""
    os.replace(source, target)


@contextmanager
def atomic_writer(path: str | Path, mode: str = "wb"):
    """Context manager yielding a handle whose contents atomically replace
    ``path`` on clean exit.

    The handle writes to a unique ``*.tmp`` sibling; on success the helper
    fsyncs it, renames it over ``path``, and fsyncs the directory.  On any
    exception the temporary file is removed and ``path`` is untouched.
    ``mode`` must be a write mode (``"wb"`` or ``"w"``).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=_TMP_SUFFIX
    )
    tmp_path = Path(tmp_name)
    try:
        with os.fdopen(fd, mode) as handle:
            yield handle
            fsync_file(handle)
        replace_file(tmp_path, target)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    fsync_directory(target.parent)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically write ``data`` to ``path``."""
    with atomic_writer(path, "wb") as handle:
        handle.write(data)


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Atomically write ``text`` to ``path``."""
    atomic_write_bytes(path, text.encode(encoding))


def discard_stale_tmp_files(directory: str | Path) -> int:
    """Remove ``*.tmp`` leftovers of writes that crashed before their rename.

    Safe at any time on a directory no writer is concurrently mid-commit in
    (the durable catalog calls it while holding the catalog open); returns
    the number of files removed.  Missing directories count as clean.
    """
    root = Path(directory)
    if not root.is_dir():
        return 0
    removed = 0
    for stale in sorted(root.rglob(f"*{_TMP_SUFFIX}")):
        try:
            stale.unlink()
            removed += 1
        except OSError:
            continue
    return removed
