"""Random-number-generator helpers and the per-graph stream registry.

Every stochastic entry point in the library accepts either ``None`` (use a
fresh default generator), an integer seed, or an existing
:class:`random.Random` instance.  :func:`ensure_rng` normalizes the three
forms so internal code always works with a ``random.Random``.

**Stream derivation.**  Reproducibility across sharding, batching, and —
since the mutable catalog — database mutation rests on one rule: every
stochastic per-graph task draws from ``derive_rng(root, STREAM, graph_id)``
where ``graph_id`` is the graph's *stable external id* (for a static
database that is simply its row position), never its current row position or
visit order.  The stream tags below are the canonical registry; modules
re-export the ones they use.  Because streams are keyed by stable id, a
graph keeps the same random draws when the database is sharded differently,
mutated around it, or compacted — which is what makes catalog answers
byte-identical to a from-scratch rebuild.
"""

from __future__ import annotations

import random

import numpy as np

RandomLike = random.Random | int | None

# Canonical stream tags for derive_rng(root, STREAM, stable graph id).
# PRUNE/VERIFY are consumed at query time (core.pipeline), BUILD at index
# time (pmi.index and the catalog's delta appends).
PRUNE_STREAM = 1
VERIFY_STREAM = 2
BUILD_STREAM = 3


def ensure_rng(rng: RandomLike = None) -> random.Random:
    """Return a :class:`random.Random` for any accepted ``rng`` argument.

    Parameters
    ----------
    rng:
        ``None`` for a nondeterministic generator, an ``int`` seed for a
        reproducible generator, or an existing ``random.Random`` which is
        returned unchanged.
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool):  # bool is an int subclass; reject it explicitly
        raise TypeError("rng must be None, an int seed, or a random.Random instance")
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(f"rng must be None, an int seed, or a random.Random instance, got {rng!r}")


_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def rng_root(rng: RandomLike = None) -> int:
    """Collapse any accepted ``rng`` argument into a 64-bit root seed.

    The root is the anchor of the per-item stream derivation used by the
    planner and the sharded executor: every stochastic sub-task derives its
    own generator as ``derive_rng(root, *salts)``, so results depend only on
    ``(root, salts)`` — never on how work was ordered or partitioned across
    shards and worker processes.

    ``None`` draws a fresh nondeterministic root; an ``int`` seed maps to
    itself (masked to 64 bits), so re-passing the same seed reproduces the
    same streams; a ``random.Random`` instance is consumed for one 64-bit
    draw, preserving sequential-consumption semantics across a batch.
    """
    if rng is None:
        return random.Random().getrandbits(64)
    if isinstance(rng, random.Random):
        return rng.getrandbits(64)
    if isinstance(rng, bool):
        raise TypeError("rng must be None, an int seed, or a random.Random instance")
    if isinstance(rng, int):
        return rng & _MASK64
    raise TypeError(f"rng must be None, an int seed, or a random.Random instance, got {rng!r}")


def derive_seed(root: int, *salts: int) -> int:
    """Stable 64-bit seed for the sub-stream ``(root, salts)``.

    A splitmix64-style finalizer mixes each salt in turn, so nearby salts
    (consecutive graph ids, stage tags) give statistically unrelated seeds.
    The function is pure: the same ``(root, salts)`` yields the same seed in
    every process, which is what makes sharded execution bit-reproducible.
    """
    state = root & _MASK64
    for salt in salts:
        state = (state + _GOLDEN + (salt & _MASK64)) & _MASK64
        z = state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        state = z ^ (z >> 31)
    return state


def derive_rng(root: int, *salts: int) -> random.Random:
    """A fresh generator for the sub-stream ``(root, salts)``."""
    return random.Random(derive_seed(root, *salts))


def numpy_generator(rng: RandomLike = None) -> np.random.Generator:
    """One canonical numpy :class:`~numpy.random.Generator` from a stream.

    Consumes exactly one 64-bit draw from ``rng`` (after :func:`ensure_rng`
    normalization) and seeds a PCG64 generator with it.  This is how the
    batch verification kernel anchors its vectorized draw order on the same
    per-graph streams (``derive_rng(root, VERIFY_STREAM, stable graph id)``)
    the scalar pipeline uses: equal streams yield equal generators, and
    therefore equal sample matrices, in every process and execution
    strategy.
    """
    return np.random.Generator(np.random.PCG64(ensure_rng(rng).getrandbits(64)))


def spawn_rng(rng: random.Random, salt: int = 0) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used when a long-running task wants to hand reproducible, independent
    streams to sub-tasks without sharing one generator across them.
    """
    seed = rng.getrandbits(64) ^ (salt * 0x9E3779B97F4A7C15 & (2**64 - 1))
    return random.Random(seed)
