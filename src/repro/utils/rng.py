"""Random-number-generator helpers.

Every stochastic entry point in the library accepts either ``None`` (use a
fresh default generator), an integer seed, or an existing
:class:`random.Random` instance.  :func:`ensure_rng` normalizes the three
forms so internal code always works with a ``random.Random``.
"""

from __future__ import annotations

import random

RandomLike = random.Random | int | None


def ensure_rng(rng: RandomLike = None) -> random.Random:
    """Return a :class:`random.Random` for any accepted ``rng`` argument.

    Parameters
    ----------
    rng:
        ``None`` for a nondeterministic generator, an ``int`` seed for a
        reproducible generator, or an existing ``random.Random`` which is
        returned unchanged.
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool):  # bool is an int subclass; reject it explicitly
        raise TypeError("rng must be None, an int seed, or a random.Random instance")
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(f"rng must be None, an int seed, or a random.Random instance, got {rng!r}")


def spawn_rng(rng: random.Random, salt: int = 0) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used when a long-running task wants to hand reproducible, independent
    streams to sub-tasks without sharing one generator across them.
    """
    seed = rng.getrandbits(64) ^ (salt * 0x9E3779B97F4A7C15 & (2**64 - 1))
    return random.Random(seed)
