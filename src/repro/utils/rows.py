"""Row-subset selection shared by the columnar indexes.

Both :class:`~repro.pmi.index.ProbabilisticMatrixIndex` and
:class:`~repro.structural.feature_index.StructuralFeatureIndex` store one
row per graph and slice themselves into shard views the same way; this
helper keeps the validation and the zero-copy rule in one place.
"""

from __future__ import annotations
from repro.exceptions import ConfigurationError


def resolve_row_selector(graph_ids, num_rows: int):
    """``(ids, selector)`` for a row subset of a ``num_rows``-row matrix.

    ``selector`` is a ``slice`` when ``graph_ids`` is a contiguous ascending
    range — numpy basic indexing, so the subset shares memory with the
    source — and the validated id list otherwise (fancy-indexed copy).
    Raises :class:`ValueError` for ids outside ``[0, num_rows)``.
    """
    ids = list(graph_ids)
    for graph_id in ids:
        if not 0 <= graph_id < num_rows:
            raise ConfigurationError(f"graph id {graph_id!r} is not indexed")
    contiguous = ids == list(range(ids[0], ids[0] + len(ids))) if ids else True
    selector = slice(ids[0], ids[0] + len(ids)) if contiguous and ids else ids
    return ids, selector
