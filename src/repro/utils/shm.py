"""Shared-memory segments and the flat shard-arena layout.

This module is the storage half of the zero-copy shard plane
(:mod:`repro.core.sharding`): the parent process packs each shard's dense
arrays — PMI lower/upper/presence matrices, structural counts, catalog
id/tombstone columns — plus a few pickled blobs into **one**
``multiprocessing.shared_memory`` segment per shard, and worker processes
attach read-only.  What crosses the process boundary is an
:class:`ArenaDescriptor`: segment name, dtypes, shapes, and byte offsets —
O(1) in the shard's size — instead of an O(shard-bytes) pickle.

Layout of one segment (offsets 64-byte aligned, recorded in the descriptor;
the segment itself carries no header)::

    [ array 0 | pad | array 1 | pad | ... | blob 0 | pad | blob 1 | ... ]

Lifecycle rules, enforced here so callers cannot leak:

* **Creation** registers the segment in a module-level owner registry keyed
  by the creating pid; an ``atexit`` sweep unlinks everything the exiting
  process still owns.  Forked children inherit the registry but never pass
  the pid guard, so a worker can never unlink its parent's segments (pool
  workers exit via ``os._exit`` and skip ``atexit`` entirely anyway).
* **Attachment** never registers with ``multiprocessing.resource_tracker``:
  on Pythons without ``SharedMemory(track=False)`` the tracker registration
  is suppressed for the duration of the attach.  Without this, every worker
  attach would re-register the name and the tracker would unlink live
  segments (and warn about "leaks") at shutdown — the creator alone owns
  the segment's lifetime.
* **Unlink** is idempotent and also deregisters, so explicit ``close()``
  paths, ``weakref.finalize`` callbacks, and the ``atexit`` sweep can all
  race safely.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import pickle
import secrets
import threading
import weakref
from collections.abc import Sequence
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro.exceptions import ShmError

__all__ = [
    "SEGMENT_PREFIX",
    "ArenaDescriptor",
    "ArenaField",
    "AttachedArena",
    "LazyGraphList",
    "ShardArena",
    "attach_segment",
    "create_segment",
    "owned_segment_names",
    "resident_segment_names",
    "unlink_segment",
]

SEGMENT_PREFIX = "tpsshm"
_ALIGNMENT = 64

# name -> (SharedMemory, creating pid); only the creating pid may unlink
_OWNED: dict[str, tuple[shared_memory.SharedMemory, int]] = {}

# Attached (non-owner) segments are kept strongly referenced until released.
# Without this, a garbage cycle can finalize the ``SharedMemory`` before the
# numpy views into its buffer, and the stdlib ``__del__`` raises an
# unraisable ``BufferError`` trying to close an mmap with live exports.
_ATTACHED: dict[int, shared_memory.SharedMemory] = {}
_REGISTRY_LOCK = threading.Lock()
_ATTACH_LOCK = threading.Lock()


# ----------------------------------------------------------------------
# segment lifecycle
# ----------------------------------------------------------------------
def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """A fresh shared-memory segment owned by this process.

    The name is ``tpsshm_<pid:x>_<random>`` — short enough for macOS's
    31-char shm name limit, prefixed so leak checks can scan for strays.
    """
    if nbytes < 0:
        raise ShmError(f"segment size must be >= 0, got {nbytes!r}")
    for _ in range(16):
        name = f"{SEGMENT_PREFIX}_{os.getpid():x}_{secrets.token_hex(6)}"
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, nbytes)
            )
        except FileExistsError:
            continue
        with _REGISTRY_LOCK:
            _OWNED[name] = (segment, os.getpid())
        return segment
    raise ShmError("could not allocate a uniquely named shared-memory segment")


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment WITHOUT resource-tracker registration.

    The creator owns the segment's lifetime; an attach that registered with
    the tracker would cause spurious leak warnings — and, with a per-process
    tracker (spawn), an unlink of a live segment — when the attaching
    process exits.  ``track=False`` is used where it exists (3.13+); older
    Pythons get the registration suppressed around the attach call.
    """
    segment = None
    try:
        segment = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    except FileNotFoundError:
        raise ShmError(f"shared-memory segment {name!r} does not exist") from None
    if segment is None:
        with _ATTACH_LOCK, _suppressed_tracking():
            try:
                segment = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                raise ShmError(
                    f"shared-memory segment {name!r} does not exist"
                ) from None
    with _REGISTRY_LOCK:
        _ATTACHED[id(segment)] = segment
    return segment


def release_segment(segment: shared_memory.SharedMemory) -> None:
    """Close an attached segment's mapping (idempotent, GC-safe).

    If numpy views into the buffer are still alive the close would raise
    ``BufferError``; in that case the segment stays in the keep-alive
    registry and the mapping is released at interpreter exit instead of
    letting the stdlib finalizer raise mid-session.
    """
    try:
        segment.close()
    except BufferError:
        return
    with _REGISTRY_LOCK:
        _ATTACHED.pop(id(segment), None)


@contextlib.contextmanager
def _suppressed_tracking():
    """No-op ``resource_tracker.register`` for shared memory, temporarily.

    ``shared_memory.SharedMemory.__init__`` looks the function up as a
    module attribute on every call, so swapping it out here is effective
    and safe to restore.
    """
    tracker = shared_memory.resource_tracker
    original = tracker.register

    def register(name, rtype):
        if rtype != "shared_memory":
            original(name, rtype)

    tracker.register = register
    try:
        yield
    finally:
        tracker.register = original


def unlink_segment(name: str) -> None:
    """Close and unlink an owned segment (idempotent, owner-pid guarded)."""
    with _REGISTRY_LOCK:
        entry = _OWNED.pop(name, None)
    if entry is None:
        return
    segment, owner_pid = entry
    if owner_pid != os.getpid():
        # a forked child inherited the registry entry; the segment is not
        # ours to destroy (and the parent's sweep will handle it)
        return
    with contextlib.suppress(OSError, BufferError):
        segment.close()
    with contextlib.suppress(OSError, FileNotFoundError):
        segment.unlink()


def owned_segment_names() -> list[str]:
    """Names this process created and has not yet unlinked."""
    with _REGISTRY_LOCK:
        pid = os.getpid()
        return sorted(name for name, (_, owner) in _OWNED.items() if owner == pid)


def resident_segment_names() -> list[str]:
    """Every ``tpsshm_*`` segment resident on the system (leak-check probe).

    Scans ``/dev/shm`` where it exists (Linux); elsewhere falls back to this
    process's own registry, which still catches in-process leaks.
    """
    shm_dir = Path("/dev/shm")
    if shm_dir.is_dir():
        return sorted(p.name for p in shm_dir.glob(f"{SEGMENT_PREFIX}_*"))
    return owned_segment_names()


@atexit.register
def _sweep_owned_segments() -> None:
    for name in owned_segment_names():
        unlink_segment(name)
    with _REGISTRY_LOCK:
        attached = list(_ATTACHED.values())
        _ATTACHED.clear()
    for segment in attached:
        with contextlib.suppress(OSError, BufferError):
            segment.close()


# ----------------------------------------------------------------------
# the flat arena layout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArenaField:
    """One packed array or blob: where it lives inside the segment."""

    key: str
    kind: str  # "array" | "blob"
    dtype: str | None
    shape: tuple[int, ...] | None
    offset: int
    nbytes: int


@dataclass(frozen=True)
class ArenaDescriptor:
    """O(1) handle to a packed segment: everything attach needs, no data."""

    segment: str
    nbytes: int
    fields: tuple[ArenaField, ...]

    def field(self, key: str) -> ArenaField:
        for entry in self.fields:
            if entry.key == key:
                return entry
        raise ShmError(f"arena {self.segment!r} has no field {key!r}")

    def __contains__(self, key: str) -> bool:
        return any(entry.key == key for entry in self.fields)


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


class ShardArena:
    """Owner side: one shard's arrays and blobs packed into one segment."""

    def __init__(
        self, segment: shared_memory.SharedMemory, descriptor: ArenaDescriptor
    ) -> None:
        self._segment = segment
        self.descriptor = descriptor

    @classmethod
    def pack(
        cls, arrays: dict[str, np.ndarray], blobs: dict[str, bytes]
    ) -> "ShardArena":
        """Copy ``arrays`` and ``blobs`` into a fresh segment, in one pass.

        Each array is stored C-contiguous at a 64-byte-aligned offset;
        zero-size arrays take no bytes and record offset 0.  This copy is
        the *single* shared copy every worker will map — the caller keeps
        (or drops) its private originals independently.
        """
        fields: list[ArenaField] = []
        cursor = 0
        plan: list[tuple[str, str, np.ndarray | bytes]] = []
        for key, value in arrays.items():
            array = np.ascontiguousarray(value)
            offset = 0 if array.nbytes == 0 else _align(cursor)
            fields.append(
                ArenaField(
                    key=key,
                    kind="array",
                    dtype=array.dtype.str,
                    shape=tuple(int(n) for n in array.shape),
                    offset=offset,
                    nbytes=int(array.nbytes),
                )
            )
            plan.append((key, "array", array))
            cursor = offset + array.nbytes if array.nbytes else cursor
        for key, payload in blobs.items():
            data = bytes(payload)
            offset = 0 if not data else _align(cursor)
            fields.append(
                ArenaField(
                    key=key,
                    kind="blob",
                    dtype=None,
                    shape=None,
                    offset=offset,
                    nbytes=len(data),
                )
            )
            plan.append((key, "blob", data))
            cursor = offset + len(data) if data else cursor
        segment = create_segment(cursor)
        descriptor = ArenaDescriptor(
            segment=segment.name, nbytes=max(cursor, 1), fields=tuple(fields)
        )
        for field, (_, kind, value) in zip(fields, plan):
            if field.nbytes == 0:
                continue
            if kind == "array":
                target = np.ndarray(
                    field.shape,
                    dtype=np.dtype(field.dtype),
                    buffer=segment.buf,
                    offset=field.offset,
                )
                target[...] = value
                del target  # drop the buffer export before anyone closes
            else:
                segment.buf[field.offset : field.offset + field.nbytes] = value
        return cls(segment, descriptor)

    @property
    def name(self) -> str:
        return self.descriptor.segment

    def unlink(self) -> None:
        """Destroy the segment (idempotent).  Attached readers that already
        mapped it keep working — POSIX unlink removes the name, not the
        memory — but no new attach can find it."""
        unlink_segment(self.name)


class AttachedArena:
    """Reader side: zero-copy views into a packed segment.

    Arrays come back as read-only numpy views and blobs as read-only
    memoryviews; both alias the mapping, so the arena object must outlive
    every view taken from it.
    """

    def __init__(
        self,
        descriptor: ArenaDescriptor,
        segment: shared_memory.SharedMemory | None = None,
    ) -> None:
        self.descriptor = descriptor
        self._segment = segment or attach_segment(descriptor.segment)

    @property
    def nbytes(self) -> int:
        return self.descriptor.nbytes

    def array(self, key: str) -> np.ndarray:
        field = self.descriptor.field(key)
        if field.kind != "array":
            raise ShmError(f"field {key!r} is a {field.kind}, not an array")
        if field.nbytes == 0:
            view = np.empty(field.shape, dtype=np.dtype(field.dtype))
        else:
            view = np.ndarray(
                field.shape,
                dtype=np.dtype(field.dtype),
                buffer=self._segment.buf,
                offset=field.offset,
            )
        view.flags.writeable = False
        return view

    def blob(self, key: str) -> memoryview:
        field = self.descriptor.field(key)
        if field.kind != "blob":
            raise ShmError(f"field {key!r} is a {field.kind}, not a blob")
        return self._segment.buf[field.offset : field.offset + field.nbytes].toreadonly()

    def detach(self) -> None:
        """Close this process's mapping.  Safe with live views: the release
        is deferred to interpreter exit if the buffer still has exports."""
        release_segment(self._segment)


# ----------------------------------------------------------------------
# lazy graph materialization
# ----------------------------------------------------------------------
class LazyGraphList(Sequence):
    """Per-graph lazy unpickling over a concatenated pickle blob.

    The arena stores each graph pickled separately, back to back, with an
    ``int64`` offset table of ``n + 1`` entries.  A worker therefore pays
    deserialization (and private memory) only for the graphs its queries
    actually touch — pruned candidates stay as shared bytes.  Materialized
    graphs are cached, so repeated access is a dict hit.
    """

    def __init__(self, buffer, offsets: np.ndarray, owner=None) -> None:
        self._buffer = buffer
        self._offsets = np.asarray(offsets, dtype=np.int64)
        if self._offsets.ndim != 1 or self._offsets.size < 1:
            raise ShmError("graph offset table must be a 1-D array of n + 1 entries")
        self._cache: dict[int, object] = {}
        # keeps the backing arena alive for as long as any graph may load
        self._owner = owner

    def __len__(self) -> int:
        return int(self._offsets.size - 1)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        index = int(index)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            # repro: allow[EXC001] -- the sequence protocol requires IndexError
            raise IndexError(f"graph index {index} out of range")
        graph = self._cache.get(index)
        if graph is None:
            start = int(self._offsets[index])
            stop = int(self._offsets[index + 1])
            graph = pickle.loads(self._buffer[start:stop])
            self._cache[index] = graph
        return graph

    def materialized_count(self) -> int:
        """How many graphs this process has actually deserialized."""
        return len(self._cache)

    def materialized_bytes(self) -> int:
        """Serialized size of the graphs deserialized so far — the private
        per-worker memory the lazy design did *not* avoid (diagnostics)."""
        return sum(
            int(self._offsets[index + 1] - self._offsets[index])
            for index in self._cache
        )


class SkeletonSequence(Sequence):
    """``graphs[i].skeleton`` without materializing the graph list.

    A planner over a :class:`LazyGraphList` must not enumerate skeletons
    eagerly — that would deserialize every graph and defeat the zero-copy
    plane — so the structural filter indexes through this view instead.
    """

    def __init__(self, graphs: Sequence) -> None:
        self._graphs = graphs

    def __len__(self) -> int:
        return len(self._graphs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [graph.skeleton for graph in self._graphs[index]]
        return self._graphs[index].skeleton


def finalize_unlink(owner, names: list[str]):
    """A ``weakref.finalize`` that unlinks ``names`` when ``owner`` dies.

    The callback runs at most once (GC, explicit call, or interpreter exit
    — whichever comes first), and :func:`unlink_segment`'s pid guard makes
    it inert in forked children.
    """
    return weakref.finalize(owner, _unlink_all, list(names))


def _unlink_all(names: list[str]) -> None:
    for name in names:
        unlink_segment(name)
