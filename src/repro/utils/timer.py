"""A tiny wall-clock timer used by the benchmark harnesses and the engine
statistics.  ``time.perf_counter`` based, usable as a context manager."""

from __future__ import annotations

import time
from repro.exceptions import StateError


class Timer:
    """Accumulating wall-clock timer.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> "Timer":
        """Start (or restart) the timer; accumulated time is preserved."""
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the timer and return the total accumulated seconds."""
        if self._started_at is None:
            raise StateError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time and forget any running interval."""
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self._started_at is not None else "stopped"
        return f"Timer(elapsed={self.elapsed:.6f}s, {state})"
