"""Shared fixtures: the paper's Figure 1 example graphs, a toy PPI database,
and reusable query graphs."""

from __future__ import annotations

import random

import pytest

from repro.datasets import PPIDatasetConfig, generate_ppi_database
from repro.graphs import LabeledGraph, NeighborEdgeFactor, ProbabilisticGraph
from repro.probability import JointProbabilityTable


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20120527)


@pytest.fixture
def triangle_graph_001() -> ProbabilisticGraph:
    """The paper's graph 001 (Figure 1): a labeled triangle with one JPT.

    The joint probability table is the complete 8-row table shown in the
    figure: (1,1,1)->0.2, (1,1,0)->0.2 and 0.1 for the six remaining rows.
    """
    skeleton = LabeledGraph(name="001")
    skeleton.add_vertex(1, "a")
    skeleton.add_vertex(2, "b")
    skeleton.add_vertex(3, "c")
    skeleton.add_edge(1, 2, "e")   # e1
    skeleton.add_edge(2, 3, "e")   # e2
    skeleton.add_edge(1, 3, "e")   # e3
    e1, e2, e3 = (1, 2), (2, 3), (1, 3)
    table = {
        (1, 1, 1): 0.2,
        (1, 1, 0): 0.2,
        (1, 0, 1): 0.1,
        (1, 0, 0): 0.1,
        (0, 1, 1): 0.1,
        (0, 1, 0): 0.1,
        (0, 0, 1): 0.1,
        (0, 0, 0): 0.1,
    }
    jpt = JointProbabilityTable((e1, e2, e3), table)
    return ProbabilisticGraph(skeleton, [NeighborEdgeFactor((e1, e2, e3), jpt)], name="001")


@pytest.fixture
def overlap_graph_002() -> ProbabilisticGraph:
    """A graph in the spirit of the paper's 002: two JPTs sharing edge e3.

    Vertices: v1(a), v2(a), v3(b), v4(b), v5(c).  Edges e1=(v1,v2),
    e2=(v1,v3), e3=(v2,v3) form a triangle; e3, e4=(v3,v4), e5=(v3,v5) are
    incident to v3.  JPT1 covers {e1,e2,e3}, JPT2 covers {e3,e4,e5}: the two
    neighbor edge sets overlap on e3 exactly as in Figure 1.
    """
    skeleton = LabeledGraph(name="002")
    labels = {1: "a", 2: "a", 3: "b", 4: "b", 5: "c"}
    for vertex, label in labels.items():
        skeleton.add_vertex(vertex, label)
    skeleton.add_edge(1, 2, "e")   # e1
    skeleton.add_edge(1, 3, "e")   # e2
    skeleton.add_edge(2, 3, "e")   # e3
    skeleton.add_edge(3, 4, "e")   # e4
    skeleton.add_edge(3, 5, "e")   # e5
    e1, e2, e3, e4, e5 = (1, 2), (1, 3), (2, 3), (3, 4), (3, 5)
    jpt1 = JointProbabilityTable.from_max_dominance({e1: 0.6, e2: 0.7, e3: 0.5})
    jpt2 = JointProbabilityTable.from_max_dominance({e3: 0.5, e4: 0.6, e5: 0.4})
    factors = [
        NeighborEdgeFactor((e1, e2, e3), jpt1),
        NeighborEdgeFactor((e3, e4, e5), jpt2),
    ]
    return ProbabilisticGraph(skeleton, factors, name="002")


@pytest.fixture
def path_query() -> LabeledGraph:
    """A 2-edge path query a-b-b, subgraph-similar to graph 002's skeleton."""
    query = LabeledGraph(name="q-path")
    query.add_vertex(0, "a")
    query.add_vertex(1, "b")
    query.add_vertex(2, "b")
    query.add_edge(0, 1, "e")
    query.add_edge(1, 2, "e")
    return query


@pytest.fixture
def triangle_query() -> LabeledGraph:
    """A 3-edge triangle query with labels a, a, b (matches 002's triangle)."""
    query = LabeledGraph(name="q-triangle")
    query.add_vertex(0, "a")
    query.add_vertex(1, "a")
    query.add_vertex(2, "b")
    query.add_edge(0, 1, "e")
    query.add_edge(0, 2, "e")
    query.add_edge(1, 2, "e")
    return query


@pytest.fixture(scope="session")
def small_ppi_database():
    """A deterministic small synthetic PPI database shared by slower tests."""
    config = PPIDatasetConfig(
        num_graphs=8,
        num_families=2,
        vertices_per_graph=12,
        edges_per_graph=16,
        motif_vertices=4,
        motif_edges=4,
        mean_edge_probability=0.55,
        probability_spread=0.2,
    )
    return generate_ppi_database(config, rng=99)


def make_simple_probabilistic_graph(
    edge_probability: float = 0.5, correlation: str = "independent"
) -> ProbabilisticGraph:
    """A 4-vertex, 4-edge helper graph used by several test modules."""
    skeleton = LabeledGraph(name="simple")
    for vertex, label in ((0, "a"), (1, "b"), (2, "a"), (3, "b")):
        skeleton.add_vertex(vertex, label)
    skeleton.add_edge(0, 1, "x")
    skeleton.add_edge(1, 2, "x")
    skeleton.add_edge(2, 3, "x")
    skeleton.add_edge(0, 3, "x")
    probabilities = {key: edge_probability for key in skeleton.edge_keys()}
    return ProbabilisticGraph.from_edge_probabilities(
        skeleton, probabilities, correlation=correlation
    )
