"""Shared fixtures for the contract-linter tests.

Each rule test writes a small fixture module under a synthetic ``repro/``
package directory (so package-scoped rules see it as in-scope) and runs the
real engine over it — the tests exercise the whole load/annotate/resolve/
suppress pipeline, not rule internals.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import run_analysis


@pytest.fixture
def analyze(tmp_path):
    """Run the analysis over fixture code; returns the full Report.

    ``relpath`` controls scope classification: the default lands inside a
    ``repro/`` package directory (query-path and taxonomy scoped), while e.g.
    ``repro/utils/rng.py`` exercises owner-module exemptions and a path with
    no ``repro`` component exercises out-of-scope behavior.
    """

    def run(code, relpath="repro/fixture_mod.py", baseline=frozenset(), rules=None):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code), encoding="utf-8")
        return run_analysis(
            [str(path)], baseline_fingerprints=frozenset(baseline), rules=rules
        )

    return run


def rule_ids(report):
    """The active finding rule ids, in report order."""
    return [finding.rule for finding in report.findings]
