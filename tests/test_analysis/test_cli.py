"""``python -m repro.analysis`` CLI tests: exit codes, formats, baseline flow."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

DIRTY = """
import random


def pick(items):
    return random.choice(items)
"""

CLEAN = """
def double(n):
    return 2 * n
"""


def run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


@pytest.fixture
def project(tmp_path):
    package = tmp_path / "repro"
    package.mkdir()
    (package / "clean_mod.py").write_text(textwrap.dedent(CLEAN), encoding="utf-8")
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, project):
        result = run_cli(["repro"], cwd=project)
        assert result.returncode == 0, result.stderr
        assert "0 finding(s)" in result.stdout

    def test_findings_exit_one(self, project):
        (project / "repro" / "dirty_mod.py").write_text(
            textwrap.dedent(DIRTY), encoding="utf-8"
        )
        result = run_cli(["repro"], cwd=project)
        assert result.returncode == 1
        assert "DET001" in result.stdout

    def test_missing_path_exits_two(self, project):
        result = run_cli(["no_such_dir"], cwd=project)
        assert result.returncode == 2
        assert "error" in result.stderr

    def test_strict_fails_on_unused_suppression(self, project):
        (project / "repro" / "stale.py").write_text(
            "X = 1  # repro: allow[DET001] -- nothing here\n", encoding="utf-8"
        )
        relaxed = run_cli(["repro"], cwd=project)
        strict = run_cli(["repro", "--strict"], cwd=project)
        assert relaxed.returncode == 0
        assert strict.returncode == 1
        assert "unused suppression" in strict.stdout


class TestBaselineFlow:
    def test_write_baseline_then_clean_then_strict_detects_fix(self, project):
        dirty = project / "repro" / "dirty_mod.py"
        dirty.write_text(textwrap.dedent(DIRTY), encoding="utf-8")

        written = run_cli(["repro", "--write-baseline"], cwd=project)
        assert written.returncode == 0
        assert "1 finding(s) recorded" in written.stdout
        baseline = json.loads((project / "contract_baseline.json").read_text())
        assert baseline["version"] == 1
        assert len(baseline["findings"]) == 1

        grandfathered = run_cli(["repro", "--strict"], cwd=project)
        assert grandfathered.returncode == 0

        # fixing the code leaves a stale baseline entry: strict fails, the
        # author must shed the entry in the same change
        dirty.write_text(textwrap.dedent(CLEAN), encoding="utf-8")
        stale = run_cli(["repro", "--strict"], cwd=project)
        assert stale.returncode == 1
        assert "stale baseline" in stale.stdout


class TestOutputs:
    def test_json_format_and_out_file(self, project):
        (project / "repro" / "dirty_mod.py").write_text(
            textwrap.dedent(DIRTY), encoding="utf-8"
        )
        result = run_cli(
            ["repro", "--format", "json", "--out", "contract_report.json"],
            cwd=project,
        )
        assert result.returncode == 1
        stdout_payload = json.loads(result.stdout)
        file_payload = json.loads((project / "contract_report.json").read_text())
        assert stdout_payload == file_payload
        assert file_payload["summary"]["findings"] == 1
        [finding] = file_payload["findings"]
        assert finding["rule"] == "DET001"
        assert finding["fingerprint"]
        assert "DET001" in file_payload["rules"]

    def test_list_rules_prints_full_pack(self, project):
        result = run_cli(["--list-rules"], cwd=project)
        assert result.returncode == 0
        for rule_id in (
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "IO001",
            "IO002",
            "IO003",
            "SHM001",
            "LOCK001",
            "EXC001",
        ):
            assert rule_id in result.stdout


class TestRepoTree:
    def test_shipped_tree_is_contract_clean(self):
        repo_root = REPO_SRC.parent
        result = run_cli(
            ["src", "benchmarks", "examples", "--strict"], cwd=repo_root
        )
        assert result.returncode == 0, result.stdout + result.stderr
