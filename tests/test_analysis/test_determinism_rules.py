"""DET0xx fixture tests: each rule's positive, negative, and exemption cases."""

from __future__ import annotations

from .conftest import rule_ids


class TestAmbientRng:
    def test_module_level_random_flagged(self, analyze):
        report = analyze(
            """
            import random

            def pick(items):
                return items[random.randint(0, len(items) - 1)]
            """
        )
        assert rule_ids(report) == ["DET001"]
        assert "random.randint" in report.findings[0].message

    def test_alias_resolution_sees_through_import_as(self, analyze):
        report = analyze(
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """
        )
        assert rule_ids(report) == ["DET001"]
        assert "numpy.random.rand" in report.findings[0].message

    def test_from_import_alias_resolved(self, analyze):
        report = analyze(
            """
            from random import shuffle as mix

            def scramble(items):
                mix(items)
            """
        )
        assert rule_ids(report) == ["DET001"]

    def test_unseeded_constructor_flagged_seeded_allowed(self, analyze):
        flagged = analyze(
            """
            import random

            def make():
                return random.Random()
            """
        )
        assert rule_ids(flagged) == ["DET001"]
        clean = analyze(
            """
            import random
            from numpy.random import default_rng

            def make(seed):
                return random.Random(seed), default_rng(seed)
            """
        )
        assert clean.findings == []

    def test_rng_owner_module_exempt(self, analyze):
        report = analyze(
            """
            import random

            GLOBAL = random.Random()
            """,
            relpath="repro/utils/rng.py",
        )
        assert report.findings == []


class TestWallClockEntropy:
    def test_time_time_on_query_path_flagged(self, analyze):
        report = analyze(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert rule_ids(report) == ["DET002"]

    def test_uuid4_flagged_monotonic_allowed(self, analyze):
        report = analyze(
            """
            import time
            import uuid

            def job_id():
                return uuid.uuid4()

            def duration(start):
                return time.perf_counter() - start
            """
        )
        assert rule_ids(report) == ["DET002"]
        assert "uuid.uuid4" in report.findings[0].message

    def test_timer_module_exempt(self, analyze):
        report = analyze(
            """
            import time

            def wall():
                return time.time()
            """,
            relpath="repro/utils/timer.py",
        )
        assert report.findings == []

    def test_outside_query_path_not_flagged(self, analyze):
        report = analyze(
            """
            import time

            def stamp():
                return time.time()
            """,
            relpath="benchlike/bench_mod.py",
        )
        assert report.findings == []


class TestUnorderedSetIteration:
    def test_set_loop_feeding_append_flagged(self, analyze):
        report = analyze(
            """
            def collect(items):
                pending = set(items)
                out = []
                for item in pending:
                    out.append(item)
                return out
            """
        )
        assert rule_ids(report) == ["DET003"]

    def test_order_insensitive_reduction_not_flagged(self, analyze):
        report = analyze(
            """
            def total(items):
                pending = set(items)
                acc = 0.0
                for item in pending:
                    acc += item.weight
                return acc
            """
        )
        assert report.findings == []

    def test_sorted_wrapping_not_flagged(self, analyze):
        report = analyze(
            """
            def collect(items):
                pending = set(items)
                out = []
                for item in sorted(pending):
                    out.append(item)
                return out
            """
        )
        assert report.findings == []

    def test_yield_from_set_loop_flagged(self, analyze):
        report = analyze(
            """
            def emit(items):
                pending = {i for i in items}
                for item in pending:
                    yield item
            """
        )
        assert rule_ids(report) == ["DET003"]

    def test_comprehension_over_set_flagged_unless_order_erased(self, analyze):
        flagged = analyze(
            """
            def listed(items):
                pending = set(items)
                return [item for item in pending]
            """
        )
        assert rule_ids(flagged) == ["DET003"]
        clean = analyze(
            """
            def listed(items):
                pending = set(items)
                return sorted(item for item in pending)
            """
        )
        assert clean.findings == []

    def test_next_iter_and_pop_flagged(self, analyze):
        report = analyze(
            """
            def first_and_any(items):
                pending = set(items)
                first = next(iter(pending))
                other = pending.pop()
                return first, other
            """
        )
        assert rule_ids(report) == ["DET003", "DET003"]

    def test_transitive_binding_tracked(self, analyze):
        report = analyze(
            """
            def chained(items):
                a = set(items)
                b = a
                out = []
                for item in b:
                    out.append(item)
                return out
            """
        )
        assert rule_ids(report) == ["DET003"]

    def test_set_annotation_tracked(self, analyze):
        report = analyze(
            """
            def annotated(pending: set):
                out = []
                for item in pending:
                    out.append(item)
                return out
            """
        )
        assert rule_ids(report) == ["DET003"]


class TestFilesystemOrder:
    def test_bare_glob_flagged(self, analyze):
        report = analyze(
            """
            def scan(directory):
                out = []
                for path in directory.glob("*.json"):
                    out.append(path)
                return out
            """
        )
        assert rule_ids(report) == ["DET004"]

    def test_sorted_glob_allowed_even_nested(self, analyze):
        report = analyze(
            """
            def scan(directory):
                return sorted(p.name for p in directory.glob("*.json"))
            """
        )
        assert report.findings == []

    def test_os_listdir_flagged(self, analyze):
        report = analyze(
            """
            import os

            def scan(directory):
                return list(os.listdir(directory))
            """
        )
        assert rule_ids(report) == ["DET004"]
