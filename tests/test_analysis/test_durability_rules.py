"""IO0xx fixture tests: write-mode opens, in-place path writes, commit primitives."""

from __future__ import annotations

from .conftest import rule_ids


class TestRawWriteOpen:
    def test_write_mode_flagged(self, analyze):
        report = analyze(
            """
            def save(path, payload):
                with open(path, "w") as handle:
                    handle.write(payload)
            """
        )
        assert rule_ids(report) == ["IO001"]

    def test_append_exclusive_and_update_modes_flagged(self, analyze):
        report = analyze(
            """
            def touch(path):
                open(path, "ab").close()
                open(path, "x").close()
                open(path, mode="r+b").close()
            """
        )
        assert rule_ids(report) == ["IO001", "IO001", "IO001"]

    def test_read_mode_allowed(self, analyze):
        report = analyze(
            """
            def load(path):
                with open(path) as handle:
                    return handle.read()

            def load_binary(path):
                with open(path, "rb") as handle:
                    return handle.read()
            """
        )
        assert report.findings == []

    def test_dynamic_mode_flagged_as_unprovable(self, analyze):
        report = analyze(
            """
            def reopen(path, mode):
                return open(path, mode)
            """
        )
        assert rule_ids(report) == ["IO001"]
        assert "dynamic mode" in report.findings[0].message

    def test_atomic_io_owner_exempt(self, analyze):
        report = analyze(
            """
            import os

            def commit(path, tmp, payload):
                with open(tmp, "w") as handle:
                    handle.write(payload)
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            """,
            relpath="repro/utils/atomic_io.py",
        )
        assert report.findings == []


class TestRawPathWrite:
    def test_write_text_flagged_with_atomic_hint(self, analyze):
        report = analyze(
            """
            def save(path, payload):
                path.write_text(payload)
            """
        )
        assert rule_ids(report) == ["IO002"]
        assert "atomic_write_text" in report.findings[0].message

    def test_write_bytes_flagged(self, analyze):
        report = analyze(
            """
            def save(path, payload):
                path.write_bytes(payload)
            """
        )
        assert rule_ids(report) == ["IO002"]
        assert "atomic_write_bytes" in report.findings[0].message

    def test_read_text_allowed(self, analyze):
        report = analyze(
            """
            def load(path):
                return path.read_text()
            """
        )
        assert report.findings == []


class TestCommitPrimitives:
    def test_os_replace_rename_fsync_flagged(self, analyze):
        report = analyze(
            """
            import os

            def swap(a, b, handle):
                os.replace(a, b)
                os.rename(b, a)
                os.fsync(handle.fileno())
            """
        )
        assert rule_ids(report) == ["IO003", "IO003", "IO003"]

    def test_shutil_move_not_in_scope(self, analyze):
        report = analyze(
            """
            import shutil

            def move(a, b):
                shutil.move(a, b)
            """
        )
        assert report.findings == []
