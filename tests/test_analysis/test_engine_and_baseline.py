"""Engine-level behavior: suppressions, baseline round-trips, fingerprints."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Finding, load_baseline, run_analysis, save_baseline
from repro.exceptions import AnalysisError

FIXTURE = """
import random


def pick(items):
    return items[random.randint(0, len(items) - 1)]
"""


class TestSuppressions:
    def test_same_line_suppression(self, analyze):
        report = analyze(
            """
            import random

            def pick(items):
                return random.choice(items)  # repro: allow[DET001] -- fixture
            """
        )
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["DET001"]
        assert report.unused_suppressions == []

    def test_comment_line_above_covers_next_line(self, analyze):
        report = analyze(
            """
            import random

            def pick(items):
                # repro: allow[DET001] -- fixture
                return random.choice(items)
            """
        )
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["DET001"]

    def test_wrong_rule_id_does_not_suppress(self, analyze):
        report = analyze(
            """
            import random

            def pick(items):
                return random.choice(items)  # repro: allow[IO001] -- wrong rule
            """
        )
        assert [f.rule for f in report.findings] == ["DET001"]
        assert len(report.unused_suppressions) == 1

    def test_wildcard_and_multi_rule_suppression(self, analyze):
        report = analyze(
            """
            import os
            import random

            def pick(items):
                os.replace(random.choice(items), "x")  # repro: allow[DET001, IO003]
            """
        )
        assert report.findings == []
        assert sorted(f.rule for f in report.suppressed) == ["DET001", "IO003"]

    def test_unused_suppression_reported_and_fails_strict(self, analyze):
        report = analyze(
            """
            def clean():  # repro: allow[DET001] -- nothing here triggers it
                return 1
            """
        )
        assert report.findings == []
        assert len(report.unused_suppressions) == 1
        assert report.clean(strict=False)
        assert not report.clean(strict=True)

    def test_suppression_inside_string_ignored(self, analyze):
        report = analyze(
            """
            import random

            MARKER = "# repro: allow[DET001]"

            def pick(items):
                return random.choice(items)
            """
        )
        assert [f.rule for f in report.findings] == ["DET001"]


class TestBaseline:
    def test_round_trip_grandfathers_findings(self, analyze, tmp_path):
        first = analyze(FIXTURE)
        assert [f.rule for f in first.findings] == ["DET001"]

        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, first.findings)
        entries = load_baseline(baseline_path)
        assert set(entries) == {first.findings[0].fingerprint}

        second = analyze(FIXTURE, baseline=frozenset(entries))
        assert second.findings == []
        assert [f.rule for f in second.baselined] == ["DET001"]
        assert second.stale_baseline == []
        assert second.clean(strict=True)

    def test_edited_line_invalidates_baseline_entry(self, analyze):
        first = analyze(FIXTURE)
        baseline = frozenset(f.fingerprint for f in first.findings)
        edited = FIXTURE.replace("len(items) - 1", "len(items) - 2")
        report = analyze(edited, baseline=baseline)
        # the changed line no longer matches: the finding is active again
        # and the old entry is reported stale
        assert [f.rule for f in report.findings] == ["DET001"]
        assert report.stale_baseline == sorted(baseline)
        assert not report.clean(strict=True)

    def test_fingerprint_survives_line_drift(self, analyze):
        first = analyze(FIXTURE)
        shifted = "# leading comment\n\n" + FIXTURE
        second = analyze(shifted)
        assert first.findings[0].line != second.findings[0].line
        assert first.findings[0].fingerprint == second.findings[0].fingerprint

    def test_unreadable_baseline_raises_analysis_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(AnalysisError):
            load_baseline(bad)

    def test_wrong_version_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "findings": {}}), encoding="utf-8")
        with pytest.raises(AnalysisError):
            load_baseline(bad)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}


class TestEngine:
    def test_unparseable_file_raises_analysis_error(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n", encoding="utf-8")
        with pytest.raises(AnalysisError):
            run_analysis([str(path)])

    def test_missing_path_raises_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            run_analysis([str(tmp_path / "no_such_dir")])

    def test_findings_sorted_by_location(self, analyze):
        report = analyze(
            """
            import random
            import os

            def later(path):
                os.replace(path, path)

            def earlier(items):
                return random.choice(items)
            """
        )
        locations = [(f.path, f.line, f.column, f.rule) for f in report.findings]
        assert locations == sorted(locations)

    def test_finding_serialization_round_trip(self, analyze):
        report = analyze(FIXTURE)
        payload = report.findings[0].as_dict()
        assert Finding.from_dict(payload) == report.findings[0]
