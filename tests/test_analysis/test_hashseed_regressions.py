"""Regression tests for the hash-seed hazards the contract linter surfaced.

DET003 flagged real bugs: component ordering in ``connected_components`` and
extension ordering in feature mining depended on set iteration order, which
for str vertex ids varies with ``PYTHONHASHSEED`` across worker processes.
These tests run the fixed code under several adversarial hash seeds in
subprocesses and require byte-identical results.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

COMPONENTS_PROBE = """
from repro.graphs.labeled_graph import LabeledGraph

graph = LabeledGraph()
# three components with string ids, inserted in a fixed order
for name in ["zeta", "alpha", "mu", "beta", "omega", "kappa"]:
    graph.add_vertex(name, "L")
graph.add_edge("zeta", "mu", "e")
graph.add_edge("alpha", "omega", "e")
components = graph.connected_components()
print([sorted(component) for component in components])
"""

MINING_PROBE = """
from repro.datasets import PPIDatasetConfig, generate_ppi_database
from repro.pmi.features import FeatureMiner, FeatureSelectionConfig

database = generate_ppi_database(
    PPIDatasetConfig(num_graphs=6, vertices_per_graph=10, edges_per_graph=14), rng=11
)
config = FeatureSelectionConfig(max_features=12, max_candidates_per_level=30)
features = FeatureMiner(config).mine(database.graphs)
print([(f.feature_id, f.canonical, sorted(f.support)) for f in features])
"""


def run_probe(code: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    env["PYTHONHASHSEED"] = hash_seed
    result = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_connected_components_order_is_hash_seed_independent():
    outputs = {run_probe(COMPONENTS_PROBE, seed) for seed in ("0", "1", "4242")}
    assert len(outputs) == 1
    # insertion order anchors the components, so zeta's component leads
    assert next(iter(outputs)).startswith("[['mu', 'zeta']")


def test_mined_features_are_hash_seed_independent():
    outputs = {run_probe(MINING_PROBE, seed) for seed in ("0", "7", "31337")}
    assert len(outputs) == 1
