"""SHM001 / LOCK001 / EXC001 fixture tests."""

from __future__ import annotations

from .conftest import rule_ids


class TestDirectSharedMemory:
    def test_from_import_flagged(self, analyze):
        report = analyze(
            """
            from multiprocessing.shared_memory import SharedMemory

            def grab(name):
                return SharedMemory(name=name)
            """
        )
        assert "SHM001" in rule_ids(report)

    def test_plain_import_and_attribute_use_flagged(self, analyze):
        report = analyze(
            """
            import multiprocessing.shared_memory

            def grab(name):
                return multiprocessing.shared_memory.SharedMemory(name=name)
            """
        )
        assert rule_ids(report).count("SHM001") >= 2

    def test_from_multiprocessing_import_shared_memory_flagged(self, analyze):
        report = analyze(
            """
            from multiprocessing import shared_memory

            def grab(name):
                return shared_memory.SharedMemory(name=name)
            """
        )
        assert "SHM001" in rule_ids(report)

    def test_shm_owner_exempt(self, analyze):
        report = analyze(
            """
            from multiprocessing.shared_memory import SharedMemory

            def create(name, size):
                return SharedMemory(name=name, create=True, size=size)
            """,
            relpath="repro/utils/shm.py",
        )
        assert report.findings == []

    def test_registry_users_clean(self, analyze):
        report = analyze(
            """
            from repro.utils.shm import attach_segment

            def attach(name):
                return attach_segment(name)
            """
        )
        assert report.findings == []


class TestGuardedAttributes:
    def test_unlocked_guarded_access_flagged(self, analyze):
        report = analyze(
            """
            class AnswerCache:
                def __init__(self):
                    self._lock = None
                    self._entries = {}

                def peek(self, key):
                    return self._entries.get(key)
            """
        )
        assert rule_ids(report) == ["LOCK001"]
        assert "peek" in report.findings[0].message

    def test_locked_access_clean_and_init_exempt(self, analyze):
        report = analyze(
            """
            import threading

            class AnswerCache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def peek(self, key):
                    with self._lock:
                        return self._entries.get(key)
            """
        )
        assert report.findings == []

    def test_other_class_not_contracted(self, analyze):
        report = analyze(
            """
            class Unrelated:
                def peek(self, key):
                    return self._entries.get(key)
            """
        )
        assert report.findings == []

    def test_nested_with_does_not_leak_lock(self, analyze):
        report = analyze(
            """
            class ShardedPlanner:
                def size(self):
                    with self._lock:
                        width = self._executor_width
                    return width + len(self._local_planners)
            """
        )
        assert rule_ids(report) == ["LOCK001"]
        assert "_local_planners" in report.findings[0].message


class TestBuiltinRaise:
    def test_bare_valueerror_flagged_in_scope(self, analyze):
        report = analyze(
            """
            def check(n):
                if n < 0:
                    raise ValueError("negative")
            """
        )
        assert rule_ids(report) == ["EXC001"]

    def test_taxonomy_types_allowed(self, analyze):
        report = analyze(
            """
            from repro.exceptions import ConfigurationError, StateError

            def check(n, started):
                if n < 0:
                    raise ConfigurationError("negative")
                if not started:
                    raise StateError("not started")
            """
        )
        assert report.findings == []

    def test_typeerror_and_notimplemented_allowed(self, analyze):
        report = analyze(
            """
            def check(n):
                if not isinstance(n, int):
                    raise TypeError("want int")
                raise NotImplementedError
            """
        )
        assert report.findings == []

    def test_bare_reraise_allowed(self, analyze):
        report = analyze(
            """
            def passthrough(fn):
                try:
                    return fn()
                except Exception:
                    raise
            """
        )
        assert report.findings == []

    def test_out_of_scope_module_not_flagged(self, analyze):
        report = analyze(
            """
            def check(n):
                if n < 0:
                    raise ValueError("negative")
            """,
            relpath="scripts/tool.py",
        )
        assert report.findings == []
