"""Unit tests for the shared atomic-write helpers every persistence path
(PMI save, graph databases, shard caches, catalog snapshots, WAL commits)
now routes through."""

from __future__ import annotations

import pytest

from repro.utils import atomic_io
from repro.utils.atomic_io import (
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    discard_stale_tmp_files,
)


class TestAtomicWriter:
    def test_writes_the_payload(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_writer(target) as handle:
            handle.write(b"payload")
        assert target.read_bytes() == b"payload"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.bin"
        with atomic_writer(target) as handle:
            handle.write(b"x")
        assert target.read_bytes() == b"x"

    def test_leaves_no_tmp_debris_on_success(self, tmp_path):
        with atomic_writer(tmp_path / "out.bin") as handle:
            handle.write(b"x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]

    def test_failure_preserves_the_previous_payload(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        with pytest.raises(RuntimeError):
            with atomic_writer(target) as handle:
                handle.write(b"half of the new payl")
                raise RuntimeError("crash mid-write")
        assert target.read_bytes() == b"old"
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]

    def test_unapplied_rename_preserves_the_previous_payload(
        self, tmp_path, monkeypatch
    ):
        # a crash after the tmp file is durable but before os.replace lands:
        # the target must still hold the old payload
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")

        def refuse(source, destination):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(atomic_io, "replace_file", refuse)
        with pytest.raises(OSError):
            with atomic_writer(target) as handle:
                handle.write(b"new")
        assert target.read_bytes() == b"old"

    def test_text_mode(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_writer(target, mode="w") as handle:
            handle.write("hello")
        assert target.read_text() == "hello"


class TestConvenienceWrappers:
    def test_atomic_write_text(self, tmp_path):
        atomic_write_text(tmp_path / "t.txt", "content")
        assert (tmp_path / "t.txt").read_text() == "content"

    def test_atomic_write_bytes(self, tmp_path):
        atomic_write_bytes(tmp_path / "t.bin", b"content")
        assert (tmp_path / "t.bin").read_bytes() == b"content"

    def test_overwrite_is_atomic_and_complete(self, tmp_path):
        target = tmp_path / "t.txt"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second")
        assert target.read_text() == "second"


class TestStaleTmpSweep:
    def test_removes_tmp_files_recursively(self, tmp_path):
        (tmp_path / "keep.json").write_text("{}")
        (tmp_path / "a.json.xyz.tmp").write_text("debris")
        nested = tmp_path / "shard_000"
        nested.mkdir()
        (nested / "b.npz.abc.tmp").write_text("debris")
        removed = discard_stale_tmp_files(tmp_path)
        assert removed == 2
        assert (tmp_path / "keep.json").exists()
        assert not (tmp_path / "a.json.xyz.tmp").exists()
        assert not (nested / "b.npz.abc.tmp").exists()

    def test_empty_directory(self, tmp_path):
        assert discard_stale_tmp_files(tmp_path) == 0

    def test_missing_directory(self, tmp_path):
        assert discard_stale_tmp_files(tmp_path / "absent") == 0
