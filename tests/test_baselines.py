"""Tests for the Exact scan and independent-model baselines."""

from __future__ import annotations

import pytest

from repro.baselines import ExactScanBaseline, database_to_independent, to_independent_model
from repro.baselines.exact_scan import ExactScanConfig
from repro.core import VerificationConfig
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.graphs import enumerate_possible_worlds

from tests.conftest import make_simple_probabilistic_graph


@pytest.fixture(scope="module")
def tiny_db():
    config = PPIDatasetConfig(
        num_graphs=4,
        num_families=2,
        vertices_per_graph=8,
        edges_per_graph=10,
        motif_vertices=3,
        motif_edges=3,
        mean_edge_probability=0.6,
    )
    return generate_ppi_database(config, rng=44)


class TestExactScan:
    def test_scan_verifies_every_graph(self, tiny_db):
        query = extract_query(tiny_db.graphs[0].skeleton, 3, rng=1)
        scan = ExactScanBaseline(tiny_db.graphs)
        result = scan.query(query, probability_threshold=0.2, distance_threshold=1, rng=2)
        assert result.statistics.verified == len(tiny_db.graphs)
        assert result.statistics.answers == len(result.answers)

    def test_scan_probabilities_respect_threshold(self, tiny_db):
        query = extract_query(tiny_db.graphs[1].skeleton, 3, rng=3)
        scan = ExactScanBaseline(tiny_db.graphs)
        result = scan.query(query, probability_threshold=0.3, distance_threshold=1, rng=2)
        assert all(answer.probability >= 0.3 for answer in result.answers)

    def test_enumeration_method_with_sampling_fallback(self, tiny_db):
        config = ExactScanConfig(
            method="enumeration",
            verification=VerificationConfig(
                method="sampling", num_samples=300, max_enumeration_edges=6
            ),
            fallback_to_sampling=True,
        )
        query = extract_query(tiny_db.graphs[2].skeleton, 3, rng=5)
        scan = ExactScanBaseline(tiny_db.graphs, config)
        result = scan.query(query, probability_threshold=0.2, distance_threshold=1, rng=2)
        assert result.statistics.verified == len(tiny_db.graphs)

    def test_fallback_can_be_disabled(self, tiny_db):
        from repro.exceptions import VerificationError

        config = ExactScanConfig(
            method="enumeration",
            verification=VerificationConfig(max_enumeration_edges=3),
            fallback_to_sampling=False,
        )
        query = extract_query(tiny_db.graphs[0].skeleton, 3, rng=6)
        scan = ExactScanBaseline(tiny_db.graphs, config)
        with pytest.raises(VerificationError):
            scan.query(query, probability_threshold=0.2, distance_threshold=1, rng=2)


class TestIndependentModel:
    def test_marginals_preserved(self, triangle_graph_001):
        independent = to_independent_model(triangle_graph_001)
        for key in triangle_graph_001.edge_variables():
            assert independent.edge_marginal(key) == pytest.approx(
                triangle_graph_001.edge_marginal(key)
            )

    def test_correlation_removed(self, triangle_graph_001):
        """Under the independent model every world weight is a product of
        marginals; under the correlated model it generally is not."""
        independent = to_independent_model(triangle_graph_001)
        marginals = {
            key: triangle_graph_001.edge_marginal(key)
            for key in triangle_graph_001.edge_variables()
        }
        for world in enumerate_possible_worlds(independent):
            expected = 1.0
            for key, value in world.assignment_dict().items():
                expected *= marginals[key] if value else 1 - marginals[key]
            assert world.probability == pytest.approx(expected)

    def test_skeleton_and_name_preserved(self, overlap_graph_002):
        independent = to_independent_model(overlap_graph_002)
        assert independent.skeleton == overlap_graph_002.skeleton
        assert independent.name == overlap_graph_002.name
        assert len(independent.factors) == len(overlap_graph_002.factors)

    def test_database_conversion(self, tiny_db):
        converted = database_to_independent(tiny_db.graphs)
        assert len(converted) == len(tiny_db.graphs)

    def test_independent_model_is_idempotent(self):
        graph = make_simple_probabilistic_graph(correlation="independent")
        converted = to_independent_model(graph)
        for factor, original in zip(converted.factors, graph.factors):
            assert factor.jpt == original.jpt
