"""Tests for the vectorized batch verification kernel.

Three layers of evidence that the kernel computes the same estimator as the
scalar reference (``probability.dnf.estimate_union_probability``):

* **bit-exact replay** — with ``scalar_replay=True`` the kernel generates
  its uniforms in the scalar sampler's interleaved order and must reproduce
  the scalar estimate *exactly*, seed for seed (property-tested over random
  edge probabilities and event sets);
* **statistical agreement** — in canonical mode the draws differ, so the
  batched estimate must agree with the exact inclusion-exclusion value (and
  with the scalar estimate) within the Monte-Carlo tolerance implied by the
  sample count;
* **determinism** — equal rng streams give byte-identical estimates and
  byte-identical sample matrices, independent of compile caching or which
  code path (fast independent vs general factor-conditioned) is forced.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ProbabilityError
from repro.graphs import LabeledGraph, ProbabilisticGraph
from repro.probability import (
    BatchWorldSampler,
    compile_world_model,
    estimate_union_probability,
    estimate_union_probability_batch,
    exact_union_probability,
)
from repro.probability.batch_kernel import compile_events
from repro.utils.rng import numpy_generator

from tests.conftest import make_simple_probabilistic_graph


def two_event_list(graph):
    edges = graph.edge_variables()
    return [{edges[0]}, {edges[1], edges[2]}]


class TestCompiledModel:
    def test_independent_graph_takes_fast_path(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.4)
        model = compile_world_model(graph)
        assert model.is_independent
        assert model.marginals == pytest.approx([0.4] * graph.num_edges)

    def test_correlated_graph_takes_general_path(self, triangle_graph_001):
        model = compile_world_model(triangle_graph_001)
        assert not model.is_independent

    def test_model_is_cached_per_graph(self):
        graph = make_simple_probabilistic_graph()
        assert compile_world_model(graph) is compile_world_model(graph)

    def test_fast_path_opt_out_is_not_cached(self):
        graph = make_simple_probabilistic_graph()
        general = compile_world_model(graph, allow_fast_path=False)
        assert not general.is_independent
        assert compile_world_model(graph) is not general

    def test_compile_events_requirement_matrix(self, triangle_graph_001):
        model = compile_world_model(triangle_graph_001)
        events = [frozenset({model.edges[0], model.edges[2]})]
        required = compile_events(model, events)
        assert required.shape == (1, model.num_edges)
        assert required[0].tolist() == [True, False, True]


class TestBatchWorldSampler:
    def test_presence_matrix_shape_and_dtype(self, overlap_graph_002):
        sampler = BatchWorldSampler(overlap_graph_002)
        worlds = sampler.sample_presence(numpy_generator(1), 50)
        assert worlds.shape == (50, overlap_graph_002.num_edges)
        assert worlds.dtype == bool

    def test_evidence_is_respected(self, triangle_graph_001):
        sampler = BatchWorldSampler(triangle_graph_001)
        key = triangle_graph_001.edge_variables()[0]
        column = sampler.model.index[key]
        worlds = sampler.sample_presence(numpy_generator(2), 40, {key: 1})
        assert worlds[:, column].all()
        worlds = sampler.sample_presence(numpy_generator(2), 40, {key: 0})
        assert not worlds[:, column].any()

    def test_impossible_evidence_raises(self):
        graph = make_simple_probabilistic_graph(edge_probability=1.0)
        sampler = BatchWorldSampler(graph)
        key = graph.edge_variables()[0]
        with pytest.raises(ProbabilityError):
            sampler.sample_presence(numpy_generator(3), 5, {key: 0})

    def test_impossible_evidence_raises_on_general_path(self):
        graph = make_simple_probabilistic_graph(edge_probability=1.0)
        sampler = BatchWorldSampler(compile_world_model(graph, allow_fast_path=False))
        key = graph.edge_variables()[0]
        with pytest.raises(ProbabilityError):
            sampler.sample_presence(numpy_generator(3), 5, {key: 0})

    def test_marginal_frequencies(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.7)
        sampler = BatchWorldSampler(graph)
        worlds = sampler.sample_presence(numpy_generator(4), 8000)
        assert worlds.mean(axis=0) == pytest.approx([0.7] * graph.num_edges, abs=0.03)

    def test_correlated_joint_frequencies(self, triangle_graph_001):
        """General-path samples reproduce the JPT's joint distribution."""
        sampler = BatchWorldSampler(triangle_graph_001)
        model = sampler.model
        worlds = sampler.sample_presence(numpy_generator(5), 40000)
        factor = triangle_graph_001.factors[0]
        columns = [model.index[e] for e in factor.edges]
        for assignment, value in factor.jpt.table.items():
            hits = (worlds[:, columns] == np.array(assignment, dtype=bool)).all(axis=1)
            assert hits.mean() == pytest.approx(value, abs=0.02)

    def test_fast_and_general_paths_agree_statistically(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.35)
        fast = BatchWorldSampler(graph)
        general = BatchWorldSampler(compile_world_model(graph, allow_fast_path=False))
        fast_worlds = fast.sample_presence(numpy_generator(6), 20000)
        general_worlds = general.sample_presence(numpy_generator(6), 20000)
        assert fast_worlds.mean(axis=0) == pytest.approx(
            general_worlds.mean(axis=0), abs=0.025
        )

    def test_equal_generators_give_identical_matrices(self, overlap_graph_002):
        sampler = BatchWorldSampler(overlap_graph_002)
        a = sampler.sample_presence(numpy_generator(7), 64)
        b = sampler.sample_presence(numpy_generator(7), 64)
        assert (a == b).all()


class TestScalarReplayBitExactness:
    """``scalar_replay=True`` reproduces the scalar estimator exactly."""

    @pytest.mark.parametrize("seed", range(6))
    def test_independent_graph(self, seed):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        events = two_event_list(graph)
        scalar = estimate_union_probability(graph, events, num_samples=150, rng=seed)
        replay = estimate_union_probability_batch(
            graph, events, num_samples=150, rng=seed, scalar_replay=True
        )
        assert scalar == replay

    @pytest.mark.parametrize("seed", range(6))
    def test_correlated_single_factor(self, triangle_graph_001, seed):
        edges = triangle_graph_001.edge_variables()
        events = [{edges[0], edges[1]}, {edges[2]}]
        scalar = estimate_union_probability(
            triangle_graph_001, events, num_samples=150, rng=seed
        )
        replay = estimate_union_probability_batch(
            triangle_graph_001, events, num_samples=150, rng=seed, scalar_replay=True
        )
        assert scalar == replay

    @pytest.mark.parametrize("seed", range(6))
    def test_overlapping_factors(self, overlap_graph_002, seed):
        """The conditioned-factor case: factor 2 conditions on factor 1's e3."""
        e1, e2, e3, e4, e5 = overlap_graph_002.edge_variables()
        events = [{e1, e3}, {e4}, {e2, e5}]
        scalar = estimate_union_probability(
            overlap_graph_002, events, num_samples=150, rng=seed
        )
        replay = estimate_union_probability_batch(
            overlap_graph_002, events, num_samples=150, rng=seed, scalar_replay=True
        )
        assert scalar == replay

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        probabilities=st.lists(
            st.floats(min_value=0.05, max_value=0.95), min_size=4, max_size=4
        ),
        correlation=st.sampled_from(["independent", "max"]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        event_mask=st.integers(min_value=1, max_value=14),
    )
    def test_property_replay_equals_scalar(
        self, probabilities, correlation, seed, event_mask
    ):
        """Random marginals, correlation model, events, seed: exact equality."""
        skeleton = LabeledGraph(name="prop")
        for vertex, label in ((0, "a"), (1, "b"), (2, "a"), (3, "b")):
            skeleton.add_vertex(vertex, label)
        skeleton.add_edge(0, 1, "x")
        skeleton.add_edge(1, 2, "x")
        skeleton.add_edge(2, 3, "x")
        skeleton.add_edge(0, 3, "x")
        keys = sorted(skeleton.edge_keys())
        graph = ProbabilisticGraph.from_edge_probabilities(
            skeleton,
            dict(zip(keys, probabilities)),
            correlation=correlation,
            max_factor_size=3,
        )
        events = [
            {keys[i], keys[(i + 1) % 4]} for i in range(4) if event_mask & (1 << i)
        ]
        scalar = estimate_union_probability(graph, events, num_samples=40, rng=seed)
        replay = estimate_union_probability_batch(
            graph, events, num_samples=40, rng=seed, scalar_replay=True
        )
        assert scalar == replay


class TestCanonicalBatchEstimator:
    def test_statistical_agreement_with_exact(self, rng):
        """Tolerance follows the (ξ, τ) bound: |est - p| <= τ whp."""
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        events = [{key} for key in graph.edge_variables()[:3]]
        exact = exact_union_probability(graph, events)
        estimate = estimate_union_probability_batch(
            graph, events, xi=0.05, tau=0.1, rng=rng
        )
        assert estimate == pytest.approx(exact, abs=0.1)

    def test_statistical_agreement_with_scalar(self, triangle_graph_001):
        edges = triangle_graph_001.edge_variables()
        events = [{edges[0], edges[1]}, {edges[1], edges[2]}]
        scalar = estimate_union_probability(
            triangle_graph_001, events, num_samples=20000, rng=11
        )
        batched = estimate_union_probability_batch(
            triangle_graph_001, events, num_samples=20000, rng=11
        )
        assert batched == pytest.approx(scalar, abs=0.02)

    def test_overlapping_factor_agreement_with_exact(self, overlap_graph_002):
        e1, e2, e3, e4, e5 = overlap_graph_002.edge_variables()
        events = [{e1, e3}, {e4}, {e2, e5}]
        exact = exact_union_probability(overlap_graph_002, events)
        estimate = estimate_union_probability_batch(
            overlap_graph_002, events, num_samples=30000, rng=12
        )
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_all_edges_certain(self):
        """p = 1 everywhere, one event: every sampler variant is exactly 1.0.

        (With several events the Karp-Luby count is binomial even on a
        certain graph — only the single-event case is deterministic.)
        """
        graph = make_simple_probabilistic_graph(edge_probability=1.0)
        events = [set(graph.edge_variables()[:2])]
        assert estimate_union_probability_batch(graph, events, rng=0) == 1.0
        assert (
            estimate_union_probability_batch(graph, events, rng=0, scalar_replay=True)
            == 1.0
        )
        assert estimate_union_probability(graph, events, rng=0) == 1.0

    @pytest.mark.parametrize("seed", range(3))
    def test_all_edges_certain_multi_event_replay_matches_scalar(self, seed):
        graph = make_simple_probabilistic_graph(edge_probability=1.0)
        events = two_event_list(graph)
        scalar = estimate_union_probability(graph, events, num_samples=200, rng=seed)
        replay = estimate_union_probability_batch(
            graph, events, num_samples=200, rng=seed, scalar_replay=True
        )
        assert scalar == replay

    def test_no_events_is_zero(self):
        graph = make_simple_probabilistic_graph()
        assert estimate_union_probability_batch(graph, [], rng=0) == 0.0

    def test_zero_weight_events_short_circuit(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.0)
        events = two_event_list(graph)
        assert estimate_union_probability_batch(graph, events, rng=0) == 0.0

    def test_result_clamped_to_unit_interval(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.95)
        events = [{key} for key in graph.edge_variables()]
        estimate = estimate_union_probability_batch(
            graph, events, num_samples=400, rng=13
        )
        assert 0.0 <= estimate <= 1.0

    def test_seeded_estimates_are_byte_identical(self, overlap_graph_002):
        e1, e2, e3, e4, e5 = overlap_graph_002.edge_variables()
        events = [{e1, e3}, {e4}]
        first = estimate_union_probability_batch(
            overlap_graph_002, events, num_samples=200, rng=99
        )
        second = estimate_union_probability_batch(
            overlap_graph_002, events, num_samples=200, rng=99
        )
        assert first == second

    def test_estimate_independent_of_event_input_order(self, rng):
        """normalize_events canonicalizes, so input order cannot matter."""
        graph = make_simple_probabilistic_graph(edge_probability=0.6)
        edges = graph.edge_variables()
        events = [{edges[0]}, {edges[1], edges[2]}, {edges[3]}]
        shuffled = list(events)
        random.Random(5).shuffle(shuffled)
        assert estimate_union_probability_batch(
            graph, events, num_samples=100, rng=7
        ) == estimate_union_probability_batch(
            graph, shuffled, num_samples=100, rng=7
        )


class TestVerifierIntegration:
    def test_sampling_scalar_method_is_the_reference(self, rng):
        from repro.core import VerificationConfig, Verifier
        from repro.core.relaxation import relax_query

        graph = make_simple_probabilistic_graph(edge_probability=0.6)
        query = LabeledGraph(name="q")
        query.add_vertex(0, "a")
        query.add_vertex(1, "b")
        query.add_edge(0, 1, "x")
        scalar = Verifier(
            VerificationConfig(method="sampling_scalar", num_samples=200), rng=31
        )
        relaxed = relax_query(query, 0, scalar.relaxation)
        events = scalar._embedding_events(relaxed, graph)
        expected = estimate_union_probability(
            graph, events, num_samples=200, rng=31
        )
        assert (
            scalar.subgraph_similarity_probability(query, graph, 0) == expected
        )

    def test_verify_block_matches_single_calls(self, small_ppi_database):
        """Block verification returns exactly the per-candidate estimates."""
        from repro.core import VerificationConfig, Verifier
        from repro.utils.rng import VERIFY_STREAM, derive_rng

        graphs = small_ppi_database.graphs[:4]
        query = LabeledGraph(name="q")
        labels = [
            graphs[0].skeleton.vertex_label(v) for v in graphs[0].skeleton.vertices()
        ]
        query.add_vertex(0, labels[0])
        query.add_vertex(1, labels[1])
        query.add_edge(0, 1, "i")
        verifier = Verifier(VerificationConfig(method="sampling", num_samples=120))
        rngs = [derive_rng(17, VERIFY_STREAM, gid) for gid in range(len(graphs))]
        block = verifier.verify_block(query, graphs, 0, rngs=rngs)
        singles = [
            verifier.subgraph_similarity_probability(
                query, graph, 0, rng=derive_rng(17, VERIFY_STREAM, gid)
            )
            for gid, graph in enumerate(graphs)
        ]
        assert block == singles

    def test_verify_block_is_block_size_invariant(self, small_ppi_database):
        """Chunking the same candidates differently changes nothing."""
        from repro.core import VerificationConfig, Verifier
        from repro.utils.rng import VERIFY_STREAM, derive_rng

        graphs = small_ppi_database.graphs
        query = LabeledGraph(name="q")
        query.add_vertex(0, "P0")
        query.add_vertex(1, "P1")
        query.add_edge(0, 1, "i")
        verifier = Verifier(VerificationConfig(method="sampling", num_samples=80))
        rngs = lambda ids: [derive_rng(23, VERIFY_STREAM, gid) for gid in ids]
        whole = verifier.verify_block(query, graphs, 0, rngs=rngs(range(len(graphs))))
        split = verifier.verify_block(
            query, graphs[:3], 0, rngs=rngs(range(3))
        ) + verifier.verify_block(
            query, graphs[3:], 0, rngs=rngs(range(3, len(graphs)))
        )
        assert whole == split
