"""Unit tests for canonical forms of small labeled graphs."""

from __future__ import annotations

import pytest

from repro.graphs import LabeledGraph
from repro.graphs.canonical import are_isomorphic_small, canonical_form, refinement_certificate


def path(labels, edge_labels=None):
    graph = LabeledGraph()
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for index in range(len(labels) - 1):
        label = edge_labels[index] if edge_labels else "e"
        graph.add_edge(index, index + 1, label)
    return graph


class TestCanonicalForm:
    def test_isomorphic_paths_share_canonical_form(self):
        g1 = path(["a", "b", "c"])
        g2 = path(["c", "b", "a"])  # reversed labels, isomorphic as labeled graphs
        assert canonical_form(g1) == canonical_form(g2)

    def test_relabeled_vertices_do_not_change_canonical_form(self):
        g1 = path(["a", "b", "c"])
        g2 = g1.relabel_vertices({0: "x", 1: "y", 2: "z"})
        assert canonical_form(g1) == canonical_form(g2)

    def test_different_vertex_labels_change_canonical_form(self):
        assert canonical_form(path(["a", "b", "c"])) != canonical_form(path(["a", "b", "d"]))

    def test_different_edge_labels_change_canonical_form(self):
        g1 = path(["a", "b"], edge_labels=["x"])
        g2 = path(["a", "b"], edge_labels=["y"])
        assert canonical_form(g1) != canonical_form(g2)

    def test_different_structure_changes_canonical_form(self):
        triangle = LabeledGraph.from_edges(
            {0: "a", 1: "a", 2: "a"}, [(0, 1, "e"), (1, 2, "e"), (0, 2, "e")]
        )
        three_path = path(["a", "a", "a"])
        assert canonical_form(triangle) != canonical_form(three_path)

    def test_empty_graph(self):
        assert canonical_form(LabeledGraph()) == "empty"

    def test_large_graph_uses_refinement_fallback(self):
        big = path(list("abcdefghij"))
        assert canonical_form(big).startswith("wl:")
        small = path(["a", "b"])
        assert canonical_form(small).startswith("exact:")

    def test_refinement_certificate_invariant_under_relabeling(self):
        g1 = path(list("abcdefghij"))
        mapping = {i: f"v{i}" for i in range(10)}
        g2 = g1.relabel_vertices(mapping)
        assert refinement_certificate(g1) == refinement_certificate(g2)


class TestIsomorphismSmall:
    def test_isomorphic(self):
        g1 = path(["a", "b", "a"])
        g2 = path(["a", "b", "a"]).relabel_vertices({0: 10, 1: 11, 2: 12})
        assert are_isomorphic_small(g1, g2)

    def test_non_isomorphic_sizes(self):
        assert not are_isomorphic_small(path(["a", "b"]), path(["a", "b", "c"]))

    def test_large_graphs_rejected(self):
        big = path(list("abcdefghij"))
        with pytest.raises(ValueError):
            are_isomorphic_small(big, big.copy())
