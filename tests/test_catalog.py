"""Unit and edge-case tests for the mutable GraphCatalog layer.

Covers the mutation API (add/remove/update and their error paths), the
delta/tombstone/compaction lifecycle — including the ISSUE's edge cases:
remove-then-re-add of the same external id, compaction with an empty delta,
querying an all-tombstoned database, and rebalancing when the requested
shard count exceeds the live graph count — plus the low-level building
blocks (PMI row append / concat, segmented views, shard routing).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    GraphCatalog,
    ProbabilisticGraphDatabase,
    SearchConfig,
    SegmentedPmiView,
    SegmentedStructuralView,
    ShardedPlanner,
    VerificationConfig,
    route_to_smallest,
)
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.exceptions import CatalogError, IndexError_
from repro.pmi import BoundConfig, FeatureSelectionConfig, ProbabilisticMatrixIndex
from repro.structural.feature_index import StructuralFeatureIndex

FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=10
)
BOUND_CONFIG = BoundConfig(num_samples=40)
SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=80)
)
SEED = 20120527


def small_database(seed: int = SEED, num_graphs: int = 8):
    config = PPIDatasetConfig(
        num_graphs=num_graphs,
        num_families=2,
        vertices_per_graph=8,
        edges_per_graph=9,
        motif_vertices=3,
        motif_edges=3,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    )
    return generate_ppi_database(config, rng=seed)


@pytest.fixture(scope="module")
def base_graphs():
    return small_database().graphs


@pytest.fixture(scope="module")
def extra_graphs():
    return small_database(seed=SEED + 1, num_graphs=6).graphs


@pytest.fixture(scope="module")
def query(base_graphs):
    return extract_query(base_graphs[0].skeleton, 3, rng=SEED)


@pytest.fixture
def catalog(base_graphs):
    return GraphCatalog.build(
        base_graphs, feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=7
    )


def answers(result):
    return [(a.graph_id, a.probability, a.decided_by) for a in result.answers]


# ----------------------------------------------------------------------
# mutation API
# ----------------------------------------------------------------------
class TestMutationApi:
    def test_build_seeds_row_position_ids(self, catalog, base_graphs):
        assert catalog.num_live == len(base_graphs)
        assert catalog.live_external_ids() == list(range(len(base_graphs)))

    def test_add_assigns_next_free_id(self, catalog, extra_graphs):
        assert catalog.add_graph(extra_graphs[0]) == 8
        assert catalog.add_graph(extra_graphs[1]) == 9
        assert catalog.num_live == 10
        assert catalog.delta_rows == 2

    def test_add_with_explicit_id_advances_counter(self, catalog, extra_graphs):
        assert catalog.add_graph(extra_graphs[0], external_id=50) == 50
        assert catalog.add_graph(extra_graphs[1]) == 51

    def test_add_live_id_rejected(self, catalog, extra_graphs):
        with pytest.raises(CatalogError, match="live"):
            catalog.add_graph(extra_graphs[0], external_id=3)

    def test_add_invalid_id_rejected(self, catalog, extra_graphs):
        with pytest.raises(CatalogError, match="integer"):
            catalog.add_graph(extra_graphs[0], external_id="seven")
        with pytest.raises(CatalogError, match=">= 0"):
            catalog.add_graph(extra_graphs[0], external_id=-1)

    def test_remove_tombstones_without_reclaiming(self, catalog):
        catalog.remove_graph(3)
        assert catalog.num_live == 7
        assert catalog.tombstone_count == 1
        assert 3 not in catalog.live_external_ids()

    def test_remove_unknown_id_raises(self, catalog):
        with pytest.raises(CatalogError, match="not live"):
            catalog.remove_graph(99)
        catalog.remove_graph(3)
        with pytest.raises(CatalogError, match="not live"):
            catalog.remove_graph(3)

    def test_update_preserves_external_id(self, catalog, extra_graphs):
        catalog.update_graph(2, extra_graphs[0])
        assert catalog.num_live == 8
        assert 2 in catalog.live_external_ids()
        assert catalog.get_graph(2) is extra_graphs[0]
        assert catalog.tombstone_count == 1
        assert catalog.delta_rows == 1

    def test_update_unknown_id_raises(self, catalog, extra_graphs):
        with pytest.raises(CatalogError, match="not live"):
            catalog.update_graph(99, extra_graphs[0])

    def test_remove_then_readd_same_id(self, catalog, extra_graphs, query):
        catalog.remove_graph(5)
        assert catalog.add_graph(extra_graphs[2], external_id=5) == 5
        assert catalog.get_graph(5) is extra_graphs[2]
        assert catalog.num_live == 8
        assert catalog.tombstone_count == 1  # the old row 5, awaiting compact
        # the revived id must appear at most once in any answer list
        result = catalog.query_top_k(
            query, catalog.num_live, 1, config=SEARCH_CONFIG, rng=11
        )
        ids = [a.graph_id for a in result.answers]
        assert len(set(ids)) == len(ids)


# ----------------------------------------------------------------------
# compaction lifecycle
# ----------------------------------------------------------------------
class TestCompaction:
    def test_compact_on_empty_delta_is_identity(self, catalog, query):
        before = catalog.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=11)
        assert catalog.delta_rows == 0
        catalog.compact()
        assert catalog.delta_rows == 0
        assert catalog.tombstone_count == 0
        assert catalog.num_live == 8
        after = catalog.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=11)
        assert answers(after) == answers(before)

    def test_compact_reclaims_tombstones_and_folds_delta(
        self, catalog, extra_graphs, query
    ):
        catalog.add_graph(extra_graphs[0])
        catalog.remove_graph(1)
        catalog.update_graph(6, extra_graphs[1])
        before = catalog.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=11)
        live_before = catalog.live_external_ids()
        catalog.compact()
        assert catalog.delta_rows == 0
        assert catalog.tombstone_count == 0
        assert catalog.live_external_ids() == live_before
        after = catalog.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=11)
        assert answers(after) == answers(before)

    def test_query_all_tombstoned(self, catalog, query):
        for external_id in catalog.live_external_ids():
            catalog.remove_graph(external_id)
        result = catalog.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=11)
        assert result.answers == []
        assert result.statistics.database_size == 0
        top = catalog.query_top_k(query, 3, 1, config=SEARCH_CONFIG, rng=11)
        assert top.answers == []

    def test_compact_all_tombstoned_then_revive(self, catalog, extra_graphs, query):
        for external_id in catalog.live_external_ids():
            catalog.remove_graph(external_id)
        catalog.compact()
        assert catalog.num_live == 0
        assert catalog.num_shards == 1
        assert catalog.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=11).answers == []
        # ids continue from the high-water mark, and querying works again
        assert catalog.add_graph(extra_graphs[0]) == 8
        result = catalog.query_top_k(query, 1, 1, config=SEARCH_CONFIG, rng=11)
        assert {a.graph_id for a in result.answers} <= {8}


# ----------------------------------------------------------------------
# sharding: routing and rebalancing
# ----------------------------------------------------------------------
class TestShardedCatalog:
    def test_route_to_smallest_prefers_lowest_index_on_ties(self):
        assert route_to_smallest([3, 1, 1]) == 1
        assert route_to_smallest([2, 2, 2]) == 0
        with pytest.raises(ValueError):
            route_to_smallest([])

    def test_adds_route_to_smallest_shard(self, base_graphs, extra_graphs):
        catalog = GraphCatalog.build(
            base_graphs,
            feature_config=FEATURE_CONFIG,
            bound_config=BOUND_CONFIG,
            rng=7,
            num_shards=3,
        )
        # 8 graphs over 3 shards -> [3, 3, 2]; adds fill the smallest first
        assert catalog.shard_live_counts() == [3, 3, 2]
        catalog.add_graph(extra_graphs[0])
        assert catalog.shard_live_counts() == [3, 3, 3]
        catalog.add_graph(extra_graphs[1])
        assert catalog.shard_live_counts() == [4, 3, 3]

    def test_rebalance_with_more_shards_than_live_graphs(
        self, base_graphs, query
    ):
        catalog = GraphCatalog.build(
            base_graphs,
            feature_config=FEATURE_CONFIG,
            bound_config=BOUND_CONFIG,
            rng=7,
            num_shards=4,
        )
        sequential = GraphCatalog.build(
            base_graphs, feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=7
        )
        for external_id in range(6):  # drop to 2 live graphs, K=4 requested
            catalog.remove_graph(external_id)
            sequential.remove_graph(external_id)
        catalog.compact()
        assert catalog.num_live == 2
        assert catalog.num_shards == 2  # partition_ranges clamps K to live count
        result = catalog.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=11)
        expected = sequential.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=11)
        assert answers(result) == answers(expected)

    def test_sharded_planner_rejects_overlapping_catalog_shards(self, base_graphs):
        catalog = GraphCatalog.build(
            base_graphs,
            feature_config=FEATURE_CONFIG,
            bound_config=BOUND_CONFIG,
            rng=7,
            num_shards=2,
        )
        shard_a = catalog._stores[0].make_shard(0)
        clash = catalog._stores[0].make_shard(1)  # same live ids, new shard id
        with pytest.raises(ValueError, match="disjoint"):
            ShardedPlanner([shard_a, clash])

    def test_sharded_planner_rejects_mixed_shard_flavours(self, base_graphs):
        catalog = GraphCatalog.build(
            base_graphs,
            feature_config=FEATURE_CONFIG,
            bound_config=BOUND_CONFIG,
            rng=7,
            num_shards=2,
        )
        static_shard = ShardedPlanner.build(
            base_graphs,
            num_shards=2,
            feature_config=FEATURE_CONFIG,
            bound_config=BOUND_CONFIG,
            rng=7,
        ).shards[0]
        with pytest.raises(ValueError, match="mix"):
            ShardedPlanner([catalog._stores[0].make_shard(0), static_shard])


# ----------------------------------------------------------------------
# engine adoption
# ----------------------------------------------------------------------
class TestEngineAdoption:
    def test_to_catalog_answers_match_engine(self, base_graphs, query):
        engine = ProbabilisticGraphDatabase(base_graphs).build_index(
            feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=7
        )
        catalog = engine.to_catalog()
        expected = engine.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=11)
        result = catalog.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=11)
        assert answers(result) == answers(expected)

    def test_to_catalog_requires_built_sequential_index(self, base_graphs):
        engine = ProbabilisticGraphDatabase(base_graphs)
        with pytest.raises(IndexError_, match="build_index"):
            engine.to_catalog()
        engine.build_index(
            feature_config=FEATURE_CONFIG,
            bound_config=BOUND_CONFIG,
            rng=7,
            num_shards=2,
        )
        with pytest.raises(IndexError_, match="sharded"):
            engine.to_catalog()
        engine.close()

    def test_from_index_requires_build_root(self, base_graphs):
        pmi = ProbabilisticMatrixIndex(
            feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
        ).build(base_graphs, rng=7)
        structural = StructuralFeatureIndex(
            embedding_limit=FEATURE_CONFIG.embedding_limit
        ).build([g.skeleton for g in base_graphs], pmi.features)
        pmi.build_root = None  # simulate a pre-catalog persisted payload
        with pytest.raises(CatalogError, match="build root"):
            GraphCatalog.from_index(base_graphs, pmi, structural)

    def test_build_root_round_trips_through_persistence(self, base_graphs, tmp_path):
        pmi = ProbabilisticMatrixIndex(
            feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
        ).build(base_graphs, rng=7)
        pmi.save(tmp_path)
        loaded = ProbabilisticMatrixIndex.load(tmp_path)
        assert loaded.build_root == pmi.build_root == 7


# ----------------------------------------------------------------------
# building blocks: append / concat / segmented views
# ----------------------------------------------------------------------
class TestBuildingBlocks:
    def test_pmi_append_matches_scratch_build(self, base_graphs):
        full = ProbabilisticMatrixIndex(
            feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
        ).build(base_graphs, rng=7)
        grown = ProbabilisticMatrixIndex(
            feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
        ).build(base_graphs[:5], features=full.features, rng=7)
        grown.append(base_graphs[5:], graph_ids=range(5, len(base_graphs)), rng=7)
        assert grown.database_size == full.database_size
        for graph_id in range(len(base_graphs)):
            full_row, grown_row = full.row(graph_id), grown.row(graph_id)
            assert np.array_equal(full_row.present, grown_row.present)
            assert np.array_equal(full_row.lower, grown_row.lower)
            assert np.array_equal(full_row.upper, grown_row.upper)

    def test_pmi_append_validates_id_count(self, base_graphs):
        pmi = ProbabilisticMatrixIndex(
            feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
        ).build(base_graphs[:3], rng=7)
        with pytest.raises(IndexError_, match="entries"):
            pmi.append(base_graphs[3:5], graph_ids=[9], rng=7)

    def test_pmi_build_rejects_ids_and_offset_together(self, base_graphs):
        pmi = ProbabilisticMatrixIndex(
            feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
        )
        with pytest.raises(IndexError_, match="not both"):
            pmi.build(base_graphs[:2], rng=7, graph_id_offset=3, graph_ids=[0, 1])

    def test_concat_rows_reassembles_subsets(self, base_graphs):
        full = ProbabilisticMatrixIndex(
            feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
        ).build(base_graphs, rng=7)
        merged = ProbabilisticMatrixIndex.concat_rows(
            [full.subset(range(0, 3)), full.subset(range(3, len(base_graphs)))]
        )
        assert merged.database_size == full.database_size
        for graph_id in range(len(base_graphs)):
            assert full.bounds_for_graph(graph_id) == merged.bounds_for_graph(graph_id)

    def test_concat_rows_rejects_mismatched_features(self, base_graphs):
        first = ProbabilisticMatrixIndex(
            feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
        ).build(base_graphs[:4], rng=7)
        other = ProbabilisticMatrixIndex(
            feature_config=FeatureSelectionConfig(
                alpha=0.1, beta=0.2, gamma=0.1, max_vertices=2, max_features=4
            ),
            bound_config=BOUND_CONFIG,
        ).build(base_graphs[:4], rng=7)
        with pytest.raises(IndexError_, match="identical features"):
            ProbabilisticMatrixIndex.concat_rows([first, other])

    def test_structural_append_matches_scratch_build(self, base_graphs):
        pmi = ProbabilisticMatrixIndex(
            feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
        ).build(base_graphs, rng=7)
        skeletons = [graph.skeleton for graph in base_graphs]
        full = StructuralFeatureIndex(
            embedding_limit=FEATURE_CONFIG.embedding_limit
        ).build(skeletons, pmi.features)
        grown = StructuralFeatureIndex(
            embedding_limit=FEATURE_CONFIG.embedding_limit
        ).build(skeletons[:5], pmi.features)
        grown.append(skeletons[5:])
        assert np.array_equal(grown.counts_matrix(), full.counts_matrix())

    def test_segmented_views_mirror_dense_indexes(self, base_graphs, query):
        full = ProbabilisticMatrixIndex(
            feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
        ).build(base_graphs, rng=7)
        base, delta = full.subset(range(0, 5)), full.subset(range(5, len(base_graphs)))
        view = SegmentedPmiView(base, delta)
        assert view.num_graphs == full.num_graphs
        for graph_id in range(full.num_graphs):
            assert np.array_equal(view.row(graph_id).lower, full.row(graph_id).lower)
            assert view.row(graph_id).graph_id == graph_id

        skeletons = [graph.skeleton for graph in base_graphs]
        structural = StructuralFeatureIndex(
            embedding_limit=FEATURE_CONFIG.embedding_limit
        ).build(skeletons, full.features)
        counts = np.asarray(structural.counts_matrix())
        seg = SegmentedStructuralView(
            StructuralFeatureIndex.from_counts(full.features, counts[:5]),
            StructuralFeatureIndex.from_counts(full.features, counts[5:]),
        )
        assert seg.is_built
        profile = structural.query_profile(query)
        assert np.array_equal(
            seg.deficit_prunable_mask(profile, 1),
            structural.deficit_prunable_mask(profile, 1),
        )

    def test_catalog_is_a_context_manager(self, base_graphs, query):
        with GraphCatalog.build(
            base_graphs, feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=7
        ) as catalog:
            assert len(catalog) == len(base_graphs)
            catalog.query(query, 0.2, 1, config=SEARCH_CONFIG, rng=11)
        assert catalog._planner_cache is None
