"""Randomized rebuild-parity harness for the mutable catalog.

The contract under test (the catalog's reason to exist): after *any*
sequence of ``add_graph`` / ``remove_graph`` / ``update_graph`` /
``compact`` operations, threshold and top-k answers — probabilities, ranks,
and per-stage counters — are **byte-identical** to a from-scratch build
over the equivalent database (same ``external id → graph`` mapping, the
catalog's pinned feature set, the catalog's build root), and identical
again when the same mutated catalog is sharded over K ∈ {1, 2, 4}.

Verification uses Karp–Luby sampling on purpose: the parity must hold for
the stochastic pipeline, which is exactly what the stable-external-id RNG
stream derivation guarantees.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import (
    GraphCatalog,
    QueryPlanner,
    QueryStatistics,
    SearchConfig,
    VerificationConfig,
)
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.pmi import BoundConfig, FeatureSelectionConfig, ProbabilisticMatrixIndex
from repro.structural.feature_index import StructuralFeatureIndex

PROBABILITY_THRESHOLD = 0.3
DISTANCE_THRESHOLD = 1
FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=10
)
BOUND_CONFIG = BoundConfig(num_samples=40)
SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=80)
)


def random_database(seed: int, num_graphs: int):
    config = PPIDatasetConfig(
        num_graphs=num_graphs,
        num_families=2,
        vertices_per_graph=8,
        edges_per_graph=9,
        motif_vertices=3,
        motif_edges=3,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    )
    return generate_ppi_database(config, rng=seed)


def answer_tuples(result):
    return [
        (a.graph_id, a.graph_name, a.probability, a.decided_by)
        for a in result.answers
    ]


def counter_dict(statistics: QueryStatistics) -> dict:
    return {
        key: value
        for key, value in statistics.as_dict().items()
        if not key.endswith("seconds")
    }


def apply_random_mutations(catalog: GraphCatalog, pool, seed: int, num_ops: int):
    """Drive a seeded op sequence; returns the ops applied (for failure msgs)."""
    decider = random.Random(seed)
    pool = list(pool)
    ops = []
    for _ in range(num_ops):
        op = decider.choice(["add", "add", "remove", "update", "compact"])
        live = catalog.live_external_ids()
        if op == "add" and pool:
            ops.append(("add", catalog.add_graph(pool.pop())))
        elif op == "remove" and len(live) > 2:
            victim = decider.choice(live)
            catalog.remove_graph(victim)
            ops.append(("remove", victim))
        elif op == "update" and live and pool:
            target = decider.choice(live)
            catalog.update_graph(target, pool.pop())
            ops.append(("update", target))
        elif op == "compact":
            catalog.compact()
            ops.append(("compact",))
    return ops


def rebuild_from_scratch(catalog: GraphCatalog) -> QueryPlanner:
    """The reference: a dense, single-segment build of the equivalent database."""
    items = catalog.live_items()
    graphs = [graph for _, graph in items]
    external_ids = [external_id for external_id, _ in items]
    pmi = ProbabilisticMatrixIndex(
        feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG
    ).build(
        graphs,
        features=catalog.features,
        rng=catalog.build_root,
        graph_ids=external_ids,
    )
    structural = StructuralFeatureIndex(
        embedding_limit=FEATURE_CONFIG.embedding_limit
    ).build([graph.skeleton for graph in graphs], catalog.features)
    return QueryPlanner(
        graphs, pmi, structural, graph_ids=np.asarray(external_ids, dtype=np.int64)
    )


def assert_result_parity(actual, expected, context: str) -> None:
    assert answer_tuples(actual) == answer_tuples(expected), context
    assert counter_dict(actual.statistics) == counter_dict(expected.statistics), context


@pytest.mark.parametrize("seed", [1201, 1202, 1203])
def test_mutated_catalog_matches_from_scratch_rebuild(seed):
    """Sequential catalog == dense rebuild, threshold and top-k, after ~10 ops."""
    database = random_database(seed, num_graphs=7)
    pool = random_database(seed + 1000, num_graphs=8).graphs
    queries = [
        extract_query(database.graphs[index % 7].skeleton, 3, rng=seed + index)
        for index in range(2)
    ]
    catalog = GraphCatalog.build(
        database.graphs,
        feature_config=FEATURE_CONFIG,
        bound_config=BOUND_CONFIG,
        rng=seed,
    )
    ops = apply_random_mutations(catalog, pool, seed, num_ops=10)
    reference = rebuild_from_scratch(catalog)
    for query_index, query in enumerate(queries):
        context = f"seed={seed} ops={ops} query={query_index}"
        assert_result_parity(
            catalog.query(
                query,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG,
                rng=seed,
            ),
            reference.execute(
                query,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG,
                rng=seed,
            ),
            context,
        )
        for k in (1, 2, 4):
            assert_result_parity(
                catalog.query_top_k(
                    query, k, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
                ),
                reference.execute_top_k(
                    query, k, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
                ),
                f"{context} k={k}",
            )


@pytest.mark.parametrize("seed", [1301, 1302])
@pytest.mark.parametrize("num_shards", [2, 4])
def test_mutated_sharded_catalog_matches_sequential(seed, num_shards):
    """Sharded catalog == sequential catalog == dense rebuild after mutations.

    Both catalogs receive the same op sequence; the sharded one additionally
    exercises smallest-shard routing and compaction-time rebalancing.  Top-k
    goes through the cross-shard partial/replay merge.
    """
    database = random_database(seed, num_graphs=7)
    pool = random_database(seed + 1000, num_graphs=8).graphs
    query = extract_query(database.graphs[0].skeleton, 3, rng=seed)
    sequential = GraphCatalog.build(
        database.graphs,
        feature_config=FEATURE_CONFIG,
        bound_config=BOUND_CONFIG,
        rng=seed,
    )
    sharded = GraphCatalog.build(
        database.graphs,
        feature_config=FEATURE_CONFIG,
        bound_config=BOUND_CONFIG,
        rng=seed,
        num_shards=num_shards,
        max_workers=0,  # in-process: deterministic either way, faster in CI
    )
    ops = apply_random_mutations(sequential, pool, seed, num_ops=8)
    ops_sharded = apply_random_mutations(sharded, pool, seed, num_ops=8)
    assert ops == ops_sharded  # same seed, same sizes -> same decisions
    context = f"seed={seed} K={num_shards} ops={ops}"
    reference = rebuild_from_scratch(sequential)
    threshold_results = [
        planner_like.query(
            query,
            PROBABILITY_THRESHOLD,
            DISTANCE_THRESHOLD,
            config=SEARCH_CONFIG,
            rng=seed,
        )
        for planner_like in (sequential, sharded)
    ]
    expected = reference.execute(
        query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
    )
    for result in threshold_results:
        assert_result_parity(result, expected, context)
    for k in (1, 2, 4):
        expected_top = reference.execute_top_k(
            query, k, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
        )
        sequential_top = sequential.query_top_k(
            query, k, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
        )
        sharded_top = sharded.query_top_k(
            query, k, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
        )
        assert answer_tuples(sequential_top) == answer_tuples(expected_top), context
        # the sharded merge replays the sequential loop: answers byte-equal;
        # work counters differ legitimately (shard floors are laxer), so
        # only the answers are compared here
        assert answer_tuples(sharded_top) == answer_tuples(sequential_top), (
            f"{context} k={k}"
        )
    sharded.close()


def test_compaction_is_invisible_to_queries():
    """Interleaved compactions never change any answer (stable-id contract)."""
    seed = 1401
    database = random_database(seed, num_graphs=6)
    pool = random_database(seed + 1000, num_graphs=4).graphs
    query = extract_query(database.graphs[1].skeleton, 3, rng=seed)
    mutated = GraphCatalog.build(
        database.graphs,
        feature_config=FEATURE_CONFIG,
        bound_config=BOUND_CONFIG,
        rng=seed,
    )
    mutated.add_graph(pool[0])
    mutated.remove_graph(2)
    mutated.update_graph(4, pool[1])
    before = mutated.query(
        query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
    )
    before_top = mutated.query_top_k(
        query, 3, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
    )
    mutated.compact()
    mutated.compact()  # second compact: empty delta, no tombstones — identity
    after = mutated.query(
        query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
    )
    after_top = mutated.query_top_k(
        query, 3, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
    )
    assert_result_parity(after, before, "threshold across compactions")
    assert_result_parity(after_top, before_top, "top-k across compactions")
