"""Crash-injection: SIGKILL the writer at every fsync/rename boundary and
prove recovery.

Each case forks a child that rebuilds the same durable catalog and applies
the same mutation sequence, but dies with ``SIGKILL`` at the N-th durability
boundary (a file fsync, a directory fsync, or an ``os.replace`` commit —
exactly the indirection points :mod:`repro.utils.atomic_io` exposes).  The
parent then recovers the half-written directory with ``GraphCatalog.open``
and asserts the crash-recovery invariant:

* either the catalog never committed (no ``CURRENT``) and ``open`` says so,
* or the recovered ``(external id -> graph)`` database equals the state
  after some *prefix* of the mutation sequence (WAL-before-apply ordering
  means nothing else is possible), and
* at sampled crash points, threshold and top-k answers — probabilities,
  ranks, and (sequentially) per-stage counters — are byte-identical to a
  from-scratch build over that surviving database.

Sweeping N across every boundary covers the torn-WAL-record, half-written
snapshot, and rename-not-applied windows without hand-picking them.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.core import GraphCatalog
from repro.core.catalog import CURRENT_FILENAME
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.exceptions import CatalogError
from repro.graphs.io import probabilistic_graph_to_dict
from repro.pmi import BoundConfig, FeatureSelectionConfig
from tests.test_catalog_parity import (
    DISTANCE_THRESHOLD,
    PROBABILITY_THRESHOLD,
    SEARCH_CONFIG,
    answer_tuples,
    assert_result_parity,
    rebuild_from_scratch,
)

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="crash injection needs os.fork (POSIX)"
)

SEED = 20120901
FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=8
)
BOUND_CONFIG = BoundConfig(num_samples=30)

CHILD_COMPLETED = 111  # scenario finished: crash_at was past the last boundary
CHILD_FAILED = 112  # scenario raised before reaching the crash point


def _dataset():
    config = PPIDatasetConfig(
        num_graphs=5,
        num_families=2,
        vertices_per_graph=7,
        edges_per_graph=8,
        motif_vertices=3,
        motif_edges=3,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    )
    graphs = generate_ppi_database(config, rng=SEED).graphs
    pool = generate_ppi_database(config, rng=SEED + 1000).graphs
    return graphs, pool


def _ops(num_base: int, pool):
    """The fixed mutation sequence every child applies (after persist)."""
    return [
        ("add", pool[0]),
        ("remove", 2),
        ("update", 1, pool[1]),
        ("compact",),
        ("add", pool[2]),
        ("remove", num_base),  # the first graph added above
        ("update", 0, pool[3]),
    ]


def _apply(catalog: GraphCatalog, op) -> None:
    if op[0] == "add":
        catalog.add_graph(op[1])
    elif op[0] == "remove":
        catalog.remove_graph(op[1])
    elif op[0] == "update":
        catalog.update_graph(op[1], op[2])
    else:
        catalog.compact()


def _canonical(graph) -> str:
    """Serialized form of the graph — save/load is the identity, so this
    matches a recovered copy regardless of how many snapshot cycles it
    survived (the lossless roundtrip is itself asserted in test_io)."""
    return json.dumps(probabilistic_graph_to_dict(graph), sort_keys=True)


def _prefix_states(graphs, pool):
    """The valid ``(id -> graph)`` databases: one per op-sequence prefix."""
    state = {index: _canonical(graph) for index, graph in enumerate(graphs)}
    next_id = len(graphs)
    states = [dict(state)]
    for op in _ops(len(graphs), pool):
        if op[0] == "add":
            state[next_id] = _canonical(op[1])
            next_id += 1
        elif op[0] == "remove":
            del state[op[1]]
        elif op[0] == "update":
            state[op[1]] = _canonical(op[2])
        states.append(dict(state))
    return states


def _scenario(directory, num_shards: int) -> None:
    """Build the durable catalog and run the op sequence (child workload)."""
    graphs, pool = _dataset()
    catalog = GraphCatalog.build(
        graphs,
        feature_config=FEATURE_CONFIG,
        bound_config=BOUND_CONFIG,
        rng=SEED,
        num_shards=num_shards,
        directory=directory,
    )
    for op in _ops(len(graphs), pool):
        _apply(catalog, op)
    catalog.close()


def _install_crash(crash_at: int) -> None:
    """SIGKILL this process at the ``crash_at``-th durability boundary.

    The kill fires *before* the real fsync/rename executes, so that boundary
    (and everything after it) never reaches the disk — the harshest point of
    the window.  Counting covers all three indirection points, which is every
    place a write becomes durable.
    """
    from repro.utils import atomic_io

    state = {"count": 0}

    def crashing(real):
        def wrapped(*args, **kwargs):
            state["count"] += 1
            if state["count"] == crash_at:
                os.kill(os.getpid(), signal.SIGKILL)
            return real(*args, **kwargs)

        return wrapped

    atomic_io.fsync_file = crashing(atomic_io.fsync_file)
    atomic_io.fsync_directory = crashing(atomic_io.fsync_directory)
    atomic_io.replace_file = crashing(atomic_io.replace_file)


def _run_child(directory, num_shards: int, crash_at: int) -> str:
    """Fork, run the scenario with a planted crash, and report the outcome."""
    pid = os.fork()
    if pid == 0:  # child: never return into pytest
        code = CHILD_FAILED
        try:
            _install_crash(crash_at)
            _scenario(directory, num_shards)
            code = CHILD_COMPLETED
        finally:
            os._exit(code)
    _, status = os.waitpid(pid, 0)
    if os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL:
        return "crashed"
    if os.WIFEXITED(status) and os.WEXITSTATUS(status) == CHILD_COMPLETED:
        return "completed"
    raise AssertionError(f"crash child died unexpectedly: status={status!r}")


def _assert_recovers(directory, prefix_states, num_shards, check_answers):
    """Recovery after one planted crash: prefix state, optionally answers."""
    if not (directory / CURRENT_FILENAME).exists():
        # killed before the first commit: there is no catalog, and open says so
        with pytest.raises(CatalogError, match="missing CURRENT"):
            GraphCatalog.open(directory)
        return
    recovered = GraphCatalog.open(directory)
    try:
        live = {
            external_id: _canonical(graph)
            for external_id, graph in recovered.live_items()
        }
        assert live in prefix_states, (
            f"recovered database matches no op-sequence prefix; ids={sorted(live)}"
        )
        if not check_answers:
            return
        query = extract_query(recovered.live_items()[0][1].skeleton, 3, rng=SEED)
        reference = rebuild_from_scratch(recovered)
        threshold = recovered.query(
            query,
            PROBABILITY_THRESHOLD,
            DISTANCE_THRESHOLD,
            config=SEARCH_CONFIG,
            rng=SEED,
        )
        expected = reference.execute(
            query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, SEARCH_CONFIG, rng=SEED
        )
        assert_result_parity(threshold, expected, f"shards={num_shards}")
        top_k = recovered.query_top_k(
            query, 3, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=SEED
        )
        expected_top = reference.execute_top_k(
            query, 3, DISTANCE_THRESHOLD, SEARCH_CONFIG, rng=SEED
        )
        if num_shards == 1:
            assert_result_parity(top_k, expected_top, f"shards={num_shards}")
        else:
            # sharded top-k: answers byte-equal, work counters legitimately
            # differ (per-shard floors) — the repo-wide sharding convention
            assert answer_tuples(top_k) == answer_tuples(expected_top)
    finally:
        recovered.close()


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_kill_at_every_fsync_boundary(tmp_path, num_shards):
    """Sweep the kill point across every durability boundary of the workload.

    ``K=1`` checks answer parity at sampled crash points in addition to the
    prefix-state invariant at all of them; the sharded runs sample fewer
    (the invariant machinery is shard-count independent, the sweep is not).
    """
    graphs, pool = _dataset()
    prefix_states = _prefix_states(graphs, pool)
    stride = 1 if num_shards == 1 else 2
    parity_every = 13  # full query-parity check at every 13th crash point
    crash_at = 1
    swept = 0
    while True:
        directory = tmp_path / f"crash_{crash_at:03d}"
        outcome = _run_child(directory, num_shards, crash_at)
        if outcome == "completed":
            break
        _assert_recovers(
            directory,
            prefix_states,
            num_shards,
            check_answers=(swept % parity_every == 0),
        )
        swept += 1
        crash_at += stride
    assert swept >= 10, f"boundary sweep looks broken: only {swept} crash points"


def test_crash_free_child_completes(tmp_path):
    """The harness itself: crash_at beyond the last boundary runs clean."""
    outcome = _run_child(tmp_path / "clean", 1, 10_000)
    assert outcome == "completed"
    recovered = GraphCatalog.open(tmp_path / "clean")
    graphs, pool = _dataset()
    assert {
        eid: _canonical(g) for eid, g in recovered.live_items()
    } == _prefix_states(graphs, pool)[-1]
    recovered.close()


def test_double_recovery_is_stable(tmp_path):
    """Opening a crashed directory twice lands on the same state (the first
    open repairs the torn tail in place)."""
    graphs, pool = _dataset()
    # crash mid-way through the op sequence, well after the first commit
    directory = tmp_path / "crash"
    outcome = _run_child(directory, 1, 40)
    assert outcome == "crashed"
    if not (directory / CURRENT_FILENAME).exists():
        pytest.skip("boundary 40 fell before the first commit on this layout")
    first = GraphCatalog.open(directory)
    state_one = {eid: _canonical(g) for eid, g in first.live_items()}
    first.close()
    second = GraphCatalog.open(directory)
    state_two = {eid: _canonical(g) for eid, g in second.live_items()}
    second.close()
    assert state_one == state_two
