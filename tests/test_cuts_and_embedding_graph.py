"""Tests for embedding cuts, the parallel graph cG, and the embedding graph fG."""

from __future__ import annotations

import math

import pytest

from repro.graphs import LabeledGraph
from repro.isomorphism import find_embeddings
from repro.isomorphism.embeddings import Embedding
from repro.pmi.cuts import (
    best_disjoint_cuts,
    build_cut_graph,
    build_parallel_graph,
    cuts_are_disjoint,
    enumerate_embedding_cuts,
    upper_bound_from_probabilities,
)
from repro.pmi.embedding_graph import (
    best_disjoint_embeddings,
    build_embedding_graph,
    disjointness_weight,
    lower_bound_from_probabilities,
)


def embedding(*edges):
    vertices = {v for edge in edges for v in edge}
    return Embedding(edges=frozenset(edges), vertices=frozenset(vertices))


class TestEmbeddingCuts:
    def test_single_embedding_cuts_are_its_edges(self):
        cuts = enumerate_embedding_cuts([embedding((1, 2), (2, 3))])
        assert frozenset({(1, 2)}) in cuts
        assert frozenset({(2, 3)}) in cuts
        assert all(len(c) == 1 for c in cuts)

    def test_cut_must_hit_every_embedding(self):
        cuts = enumerate_embedding_cuts([embedding((1, 2)), embedding((3, 4))])
        assert cuts == [frozenset({(1, 2), (3, 4)})]

    def test_shared_edge_gives_singleton_cut(self):
        cuts = enumerate_embedding_cuts(
            [embedding((1, 2), (2, 3)), embedding((2, 3), (3, 4))]
        )
        assert frozenset({(2, 3)}) in cuts

    def test_cuts_are_minimal(self):
        cuts = enumerate_embedding_cuts(
            [embedding((1, 2), (2, 3)), embedding((2, 3), (3, 4))]
        )
        for i, cut in enumerate(cuts):
            for j, other in enumerate(cuts):
                if i != j:
                    assert not cut < other  # no cut strictly contains another

    def test_no_embeddings_no_cuts(self):
        assert enumerate_embedding_cuts([]) == []

    def test_max_cuts_cap(self):
        embeddings = [embedding((i, i + 1), (i + 1, i + 2)) for i in range(0, 12, 3)]
        cuts = enumerate_embedding_cuts(embeddings, max_cuts=3)
        assert len(cuts) <= 3

    def test_paper_example7_cuts(self):
        """Figure 8: embeddings {e1,e2}, {e2,e3}, {e3,e4} admit the cuts
        {e2,e4}, {e2,e3} and {e1,e3} (plus any other minimal transversals)."""
        e1, e2, e3, e4 = (1, 2), (2, 3), (3, 4), (4, 5)
        embeddings = [embedding(e1, e2), embedding(e2, e3), embedding(e3, e4)]
        cuts = enumerate_embedding_cuts(embeddings)
        assert frozenset({e2, e4}) in cuts
        assert frozenset({e2, e3}) in cuts
        assert frozenset({e1, e3}) in cuts

    def test_disjointness_predicate(self):
        assert cuts_are_disjoint(frozenset({(1, 2)}), frozenset({(3, 4)}))
        assert not cuts_are_disjoint(frozenset({(1, 2)}), frozenset({(1, 2), (3, 4)}))


class TestParallelGraph:
    def test_structure_of_cg(self):
        embeddings = [embedding((1, 2), (2, 3)), embedding((3, 4))]
        cg = build_parallel_graph(embeddings)
        assert cg.has_vertex("s") and cg.has_vertex("t")
        # line for embedding 0 has 3 nodes and 2 labeled edges; embedding 1 has 2 nodes/1 edge
        labeled_edges = [e for e in cg.edges() if e.label is not None]
        assert len(labeled_edges) == 3
        connector_edges = [e for e in cg.edges() if e.label is None]
        assert len(connector_edges) == 4  # one s-connector and one t-connector per embedding

    def test_labels_carry_original_edge_keys(self):
        embeddings = [embedding((1, 2), (2, 3))]
        cg = build_parallel_graph(embeddings)
        labels = {e.label for e in cg.edges() if e.label is not None}
        assert labels == {(1, 2), (2, 3)}


class TestEmbeddingGraph:
    def test_weights_are_negative_log_survival(self):
        assert disjointness_weight(0.0) == pytest.approx(0.0)
        assert disjointness_weight(0.5) == pytest.approx(math.log(2.0))
        assert disjointness_weight(1.0) > 20  # clamped, large but finite

    def test_adjacency_links_disjoint_embeddings(self):
        e_a = embedding((1, 2))
        e_b = embedding((3, 4))
        e_c = embedding((1, 2), (3, 4))
        adjacency, weights = build_embedding_graph([e_a, e_b, e_c], [0.5, 0.5, 0.5])
        assert 1 in adjacency[0]          # disjoint
        assert 2 not in adjacency[0]      # overlaps
        assert len(weights) == 3

    def test_best_disjoint_embeddings_lower_bound(self):
        e_a = embedding((1, 2))
        e_b = embedding((3, 4))
        chosen, lower = best_disjoint_embeddings([e_a, e_b], [0.4, 0.5])
        assert set(chosen) == {0, 1}
        assert lower == pytest.approx(1 - 0.6 * 0.5)

    def test_lower_bound_from_probabilities(self):
        assert lower_bound_from_probabilities([0.4, 0.5]) == pytest.approx(0.7)
        assert lower_bound_from_probabilities([]) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            build_embedding_graph([embedding((1, 2))], [0.1, 0.2])


class TestCutGraph:
    def test_best_disjoint_cuts_upper_bound(self):
        cut_a = frozenset({(1, 2)})
        cut_b = frozenset({(3, 4)})
        chosen, upper = best_disjoint_cuts([cut_a, cut_b], [0.3, 0.4])
        assert set(chosen) == {0, 1}
        assert upper == pytest.approx(0.7 * 0.6)

    def test_upper_bound_from_probabilities(self):
        assert upper_bound_from_probabilities([0.3, 0.4]) == pytest.approx(0.42)
        assert upper_bound_from_probabilities([]) == 1.0

    def test_no_cuts_means_no_pruning_power(self):
        chosen, upper = best_disjoint_cuts([], [])
        assert chosen == []
        assert upper == 1.0

    def test_cut_graph_shape(self):
        cut_a = frozenset({(1, 2)})
        cut_b = frozenset({(1, 2), (3, 4)})
        adjacency, weights = build_cut_graph([cut_a, cut_b], [0.5, 0.5])
        assert 1 not in adjacency[0]
        assert len(weights) == 2

    def test_tighter_bound_with_more_disjoint_cuts(self):
        one_cut = best_disjoint_cuts([frozenset({(1, 2)})], [0.5])[1]
        two_cuts = best_disjoint_cuts(
            [frozenset({(1, 2)}), frozenset({(3, 4)})], [0.5, 0.5]
        )[1]
        assert two_cuts < one_cut


class TestCutsFromRealEmbeddings:
    def test_cuts_destroy_every_embedding(self):
        target = LabeledGraph.from_edges(
            {0: "a", 1: "a", 2: "a", 3: "a"},
            [(0, 1, "x"), (1, 2, "x"), (2, 3, "x"), (0, 3, "x")],
        )
        pattern = LabeledGraph.from_edges({0: "a", 1: "a"}, [(0, 1, "x")])
        embeddings = find_embeddings(pattern, target)
        cuts = enumerate_embedding_cuts(embeddings, max_cut_size=4)
        for cut in cuts:
            remaining = [key for key in target.edge_keys() if key not in cut]
            survivor = target.subgraph_by_edges(remaining)
            assert find_embeddings(pattern, survivor) == []
