"""Tests for the synthetic dataset and query workload generators."""

from __future__ import annotations

import pytest

from repro.datasets import (
    PPIDatasetConfig,
    extract_query,
    generate_ppi_database,
    generate_query_workload,
    generate_road_network,
    generate_social_network,
)
from repro.exceptions import QueryError
from repro.isomorphism import is_subgraph_isomorphic


class TestPPIDatabase:
    def test_size_and_ground_truth(self, small_ppi_database):
        assert len(small_ppi_database) == small_ppi_database.config.num_graphs
        assert len(small_ppi_database.organisms) == len(small_ppi_database.graphs)
        families = set(small_ppi_database.organisms)
        assert families == set(range(small_ppi_database.config.num_families))

    def test_graph_shapes_respect_config(self, small_ppi_database):
        cfg = small_ppi_database.config
        for graph in small_ppi_database.graphs:
            assert graph.num_vertices == cfg.vertices_per_graph
            assert graph.num_edges >= cfg.vertices_per_graph - 1
            assert graph.skeleton.is_connected()

    def test_edge_probabilities_centred_on_mean(self, small_ppi_database):
        cfg = small_ppi_database.config
        average = sum(g.average_edge_probability() for g in small_ppi_database.graphs) / len(
            small_ppi_database
        )
        assert average == pytest.approx(cfg.mean_edge_probability, abs=0.12)

    def test_family_motif_contained_in_members(self, small_ppi_database):
        for graph_id, graph in enumerate(small_ppi_database.graphs[:4]):
            family = small_ppi_database.organism_of(graph_id)
            motif = small_ppi_database.family_motifs[family]
            assert is_subgraph_isomorphic(motif, graph.skeleton)

    def test_graphs_of_organism(self, small_ppi_database):
        for family in range(small_ppi_database.config.num_families):
            members = small_ppi_database.graphs_of_organism(family)
            assert members
            assert all(small_ppi_database.organism_of(m) == family for m in members)

    def test_reproducible_with_seed(self):
        cfg = PPIDatasetConfig(num_graphs=3, vertices_per_graph=8, edges_per_graph=10)
        first = generate_ppi_database(cfg, rng=5)
        second = generate_ppi_database(cfg, rng=5)
        for g1, g2 in zip(first.graphs, second.graphs):
            assert g1.skeleton == g2.skeleton

    def test_independent_correlation_option(self):
        cfg = PPIDatasetConfig(
            num_graphs=2, vertices_per_graph=8, edges_per_graph=10, correlation="independent"
        )
        data = generate_ppi_database(cfg, rng=5)
        assert all(graph.is_edge_partition() for graph in data.graphs)


class TestQueryWorkloads:
    def test_extracted_query_is_connected_subgraph(self, small_ppi_database):
        skeleton = small_ppi_database.graphs[0].skeleton
        query = extract_query(skeleton, 5, rng=3)
        assert query.num_edges == 5
        assert query.is_connected()
        assert is_subgraph_isomorphic(query, skeleton)

    def test_query_size_larger_than_graph_rejected(self, small_ppi_database):
        skeleton = small_ppi_database.graphs[0].skeleton
        with pytest.raises(QueryError):
            extract_query(skeleton, skeleton.num_edges + 1)
        with pytest.raises(QueryError):
            extract_query(skeleton, 0)

    def test_workload_provenance(self, small_ppi_database):
        workload = generate_query_workload(
            small_ppi_database.graphs,
            query_size=4,
            num_queries=6,
            organisms=small_ppi_database.organisms,
            rng=11,
        )
        assert len(workload) == 6
        assert workload.size == 4
        for record in workload:
            assert record.query.num_edges == 4
            assert 0 <= record.source_graph_id < len(small_ppi_database.graphs)
            assert record.organism == small_ppi_database.organism_of(record.source_graph_id)

    def test_workload_requires_large_enough_graphs(self, small_ppi_database):
        with pytest.raises(QueryError):
            generate_query_workload(small_ppi_database.graphs, query_size=10_000, num_queries=1)

    def test_empty_database_rejected(self):
        with pytest.raises(QueryError):
            generate_query_workload([], query_size=2, num_queries=1)


class TestScenarioGenerators:
    def test_road_network_shape(self):
        network = generate_road_network(rows=4, columns=4, rng=3)
        assert network.skeleton.is_connected()
        assert network.num_vertices == 16
        assert network.num_edges >= 2 * 4 * 3  # grid edges at minimum
        assert 0.0 < network.average_edge_probability() < 1.0

    def test_road_network_congestion_lowers_probability(self):
        free = generate_road_network(congestion_level=0.0, rng=3)
        jammed = generate_road_network(congestion_level=1.0, rng=3)
        assert jammed.average_edge_probability() < free.average_edge_probability()

    def test_social_network_shape(self):
        network = generate_social_network(num_communities=3, community_size=6, rng=3)
        assert network.skeleton.is_connected()
        assert network.num_vertices == 18
        labels = {network.skeleton.vertex_label(v) for v in network.skeleton.vertices()}
        assert "influencer" in labels

    def test_social_network_trust_parameter(self):
        low = generate_social_network(mean_trust=0.2, rng=3)
        high = generate_social_network(mean_trust=0.8, rng=3)
        assert low.average_edge_probability() < high.average_edge_probability()
