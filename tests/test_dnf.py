"""Tests for exact inclusion-exclusion and the Karp-Luby union estimator."""

from __future__ import annotations

import pytest

from repro.exceptions import VerificationError
from repro.probability import (
    estimate_union_probability,
    estimate_union_probability_batch,
    exact_union_probability,
)
from repro.probability.dnf import canonical_event_key, normalize_events

from tests.conftest import make_simple_probabilistic_graph


class TestNormalizeEvents:
    def test_duplicates_removed(self):
        events = [frozenset({(0, 1)}), frozenset({(0, 1)})]
        assert len(normalize_events(events)) == 1

    def test_supersets_absorbed(self):
        small = frozenset({(0, 1)})
        large = frozenset({(0, 1), (1, 2)})
        assert normalize_events([small, large]) == [small]

    def test_empty_events_dropped(self):
        assert normalize_events([frozenset()]) == []

    def test_ordering_is_input_order_independent(self):
        events = [
            frozenset({(2, 3)}),
            frozenset({(0, 3), (1, 2)}),
            frozenset({(0, 1)}),
        ]
        assert normalize_events(events) == normalize_events(list(reversed(events)))

    def test_ordering_is_sorted_tuples_not_repr(self):
        """Regression: the old repr-based key ordered (10, 11) before (2, 10)
        because the string "(10, ..." sorts before "(2, ..." — the canonical
        key compares edge keys as tuples, so numeric order wins."""
        events = [frozenset({(10, 11)}), frozenset({(2, 10)})]
        assert normalize_events(events) == [
            frozenset({(2, 10)}),
            frozenset({(10, 11)}),
        ]

    def test_mixed_vertex_id_types_are_orderable(self):
        """int and str vertex ids in one event list must not raise."""
        events = [frozenset({("a", "b")}), frozenset({(1, 2)})]
        ordered = normalize_events(events)
        assert set(ordered) == set(events)
        assert ordered == sorted(ordered, key=canonical_event_key)

    def test_unorderable_vertex_ids_fall_back_to_repr(self):
        """Hashable-but-unorderable ids (allowed by edge_key's repr fallback)
        must sort deterministically instead of raising TypeError."""

        class Node:
            def __init__(self, n):
                self.n = n

            def __repr__(self):
                return f"Node({self.n})"

        a, b, c = Node(1), Node(2), Node(3)
        events = [frozenset({(b, c)}), frozenset({(a, b)})]
        ordered = normalize_events(events)
        assert set(ordered) == set(events)
        assert ordered == normalize_events(list(reversed(events)))

    def test_estimator_output_pinned_under_canonical_ordering(self):
        """Pins the clause order the estimators see: a seeded run on a fixed
        graph/event set must keep returning these exact values unless the
        canonical event ordering (an explicit contract) changes."""
        graph = make_simple_probabilistic_graph(edge_probability=0.6)
        edges = graph.edge_variables()  # [(0,1), (0,3), (1,2), (2,3)]
        events = [{edges[3]}, {edges[1], edges[2]}, {edges[0]}]
        assert normalize_events(events) == [
            frozenset({(0, 1)}),
            frozenset({(2, 3)}),
            frozenset({(0, 3), (1, 2)}),
        ]
        scalar = estimate_union_probability(graph, events, num_samples=250, rng=2012)
        batched = estimate_union_probability_batch(
            graph, events, num_samples=250, rng=2012
        )
        assert scalar == pytest.approx(0.92976, abs=1e-12)
        assert batched == pytest.approx(0.94848, abs=1e-12)


class TestExactUnion:
    def test_single_event(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        key = graph.edge_variables()[0]
        assert exact_union_probability(graph, [{key}]) == pytest.approx(0.5)

    def test_two_independent_events(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        e1, e2 = graph.edge_variables()[:2]
        # Pr(e1 ∨ e2) = 1 - 0.5 * 0.5
        assert exact_union_probability(graph, [{e1}, {e2}]) == pytest.approx(0.75)

    def test_union_of_everything(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        events = [{key} for key in graph.edge_variables()]
        expected = 1.0 - 0.5 ** len(events)
        assert exact_union_probability(graph, events) == pytest.approx(expected)

    def test_no_events_is_zero(self):
        graph = make_simple_probabilistic_graph()
        assert exact_union_probability(graph, []) == 0.0

    def test_correlated_graph_against_enumeration(self, triangle_graph_001):
        from repro.graphs import enumerate_possible_worlds

        edges = triangle_graph_001.edge_variables()
        events = [{edges[0], edges[1]}, {edges[2]}]
        expected = 0.0
        for world in enumerate_possible_worlds(triangle_graph_001):
            present = world.present_edges()
            if {edges[0], edges[1]} <= present or edges[2] in present:
                expected += world.probability
        assert exact_union_probability(triangle_graph_001, events) == pytest.approx(expected)

    def test_event_limit_enforced(self):
        graph = make_simple_probabilistic_graph()
        events = [{key} for key in graph.edge_variables()]
        with pytest.raises(VerificationError):
            exact_union_probability(graph, events, max_events=2)

    def test_benign_float_noise_is_clamped(self, monkeypatch):
        """Totals a hair outside [0, 1] are cancellation noise, not bugs."""
        from repro.probability import dnf

        graph = make_simple_probabilistic_graph(edge_probability=1.0)
        monkeypatch.setattr(
            dnf.VariableEliminationEngine,
            "probability_all_present",
            lambda self, edges: 1.0 + 4e-7,
        )
        key = graph.edge_variables()[0]
        assert exact_union_probability(graph, [{key}]) == 1.0

    def test_inconsistent_totals_raise_instead_of_clamping(self, monkeypatch):
        """Regression: a sign/cancellation bug used to be masked by the
        [0, 1] clamp; totals far outside the interval now raise."""
        from repro.probability import dnf

        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        monkeypatch.setattr(
            dnf.VariableEliminationEngine,
            "probability_all_present",
            lambda self, edges: 1.7,
        )
        key = graph.edge_variables()[0]
        with pytest.raises(VerificationError, match="leaves \\[0, 1\\]"):
            exact_union_probability(graph, [{key}])


class TestKarpLubyEstimator:
    def test_matches_exact_on_independent_events(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        events = [{key} for key in graph.edge_variables()[:3]]
        exact = exact_union_probability(graph, events)
        estimate = estimate_union_probability(graph, events, num_samples=3000, rng=rng)
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_matches_exact_on_correlated_graph(self, triangle_graph_001, rng):
        edges = triangle_graph_001.edge_variables()
        events = [{edges[0], edges[1]}, {edges[1], edges[2]}]
        exact = exact_union_probability(triangle_graph_001, events)
        estimate = estimate_union_probability(
            triangle_graph_001, events, num_samples=4000, rng=rng
        )
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_no_events_is_zero(self, rng):
        graph = make_simple_probabilistic_graph()
        assert estimate_union_probability(graph, [], rng=rng) == 0.0

    def test_result_clamped_to_unit_interval(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.95)
        events = [{key} for key in graph.edge_variables()]
        estimate = estimate_union_probability(graph, events, num_samples=500, rng=rng)
        assert 0.0 <= estimate <= 1.0

    def test_default_sample_count_used(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        key = graph.edge_variables()[0]
        estimate = estimate_union_probability(graph, [{key}], xi=0.2, tau=0.3, rng=rng)
        assert estimate == pytest.approx(0.5, abs=0.15)
