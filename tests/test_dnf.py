"""Tests for exact inclusion-exclusion and the Karp-Luby union estimator."""

from __future__ import annotations

import pytest

from repro.exceptions import VerificationError
from repro.probability import estimate_union_probability, exact_union_probability
from repro.probability.dnf import normalize_events

from tests.conftest import make_simple_probabilistic_graph


class TestNormalizeEvents:
    def test_duplicates_removed(self):
        events = [frozenset({(0, 1)}), frozenset({(0, 1)})]
        assert len(normalize_events(events)) == 1

    def test_supersets_absorbed(self):
        small = frozenset({(0, 1)})
        large = frozenset({(0, 1), (1, 2)})
        assert normalize_events([small, large]) == [small]

    def test_empty_events_dropped(self):
        assert normalize_events([frozenset()]) == []


class TestExactUnion:
    def test_single_event(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        key = graph.edge_variables()[0]
        assert exact_union_probability(graph, [{key}]) == pytest.approx(0.5)

    def test_two_independent_events(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        e1, e2 = graph.edge_variables()[:2]
        # Pr(e1 ∨ e2) = 1 - 0.5 * 0.5
        assert exact_union_probability(graph, [{e1}, {e2}]) == pytest.approx(0.75)

    def test_union_of_everything(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        events = [{key} for key in graph.edge_variables()]
        expected = 1.0 - 0.5 ** len(events)
        assert exact_union_probability(graph, events) == pytest.approx(expected)

    def test_no_events_is_zero(self):
        graph = make_simple_probabilistic_graph()
        assert exact_union_probability(graph, []) == 0.0

    def test_correlated_graph_against_enumeration(self, triangle_graph_001):
        from repro.graphs import enumerate_possible_worlds

        edges = triangle_graph_001.edge_variables()
        events = [{edges[0], edges[1]}, {edges[2]}]
        expected = 0.0
        for world in enumerate_possible_worlds(triangle_graph_001):
            present = world.present_edges()
            if {edges[0], edges[1]} <= present or edges[2] in present:
                expected += world.probability
        assert exact_union_probability(triangle_graph_001, events) == pytest.approx(expected)

    def test_event_limit_enforced(self):
        graph = make_simple_probabilistic_graph()
        events = [{key} for key in graph.edge_variables()]
        with pytest.raises(VerificationError):
            exact_union_probability(graph, events, max_events=2)


class TestKarpLubyEstimator:
    def test_matches_exact_on_independent_events(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        events = [{key} for key in graph.edge_variables()[:3]]
        exact = exact_union_probability(graph, events)
        estimate = estimate_union_probability(graph, events, num_samples=3000, rng=rng)
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_matches_exact_on_correlated_graph(self, triangle_graph_001, rng):
        edges = triangle_graph_001.edge_variables()
        events = [{edges[0], edges[1]}, {edges[1], edges[2]}]
        exact = exact_union_probability(triangle_graph_001, events)
        estimate = estimate_union_probability(
            triangle_graph_001, events, num_samples=4000, rng=rng
        )
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_no_events_is_zero(self, rng):
        graph = make_simple_probabilistic_graph()
        assert estimate_union_probability(graph, [], rng=rng) == 0.0

    def test_result_clamped_to_unit_interval(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.95)
        events = [{key} for key in graph.edge_variables()]
        estimate = estimate_union_probability(graph, events, num_samples=500, rng=rng)
        assert 0.0 <= estimate <= 1.0

    def test_default_sample_count_used(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        key = graph.edge_variables()[0]
        estimate = estimate_union_probability(graph, [{key}], xi=0.2, tau=0.3, rng=rng)
        assert estimate == pytest.approx(0.5, abs=0.15)
